#!/usr/bin/env python3
"""Frequent pattern detection over a tweet stream — real analytics + DRS.

Two halves, mirroring how the paper's FPD application works:

1. **Real analytics on the Storm-like facade**: a spout feeds synthetic
   tweets into a pattern-generator bolt (expands each tweet into its
   candidate itemsets — the paper's "exponential number of possible
   combinations") and an MFP-detector bolt that keeps occurrence counts
   over a sliding window and emits state-change notifications.  The
   local cluster measures actual per-tuple service times and arrival
   rates, and DRS recommends an executor allocation for a 22-executor
   budget — the paper's integration path, minus the JVMs.

2. **Loop-topology scheduling**: the FPD operator network (with its
   detector feedback loop) is solved analytically — the traffic
   equations handle the cycle — and DRS reproduces the paper's 6:13:3.

Run:  python examples/frequent_pattern_detection.py
"""

import random
from collections import Counter, deque

from repro import PerformanceModel, assign_processors
from repro.apps.fpd import FPDWorkload
from repro.apps.patterns import candidate_itemsets
from repro.apps.tweets import TweetGenerator
from repro.storm import Bolt, LocalCluster, Spout, StormTopologyBuilder


class TweetSpout(Spout):
    """Emits (sequence, tweet) pairs — the "+" spout of Fig. 5."""

    def __init__(self, count: int):
        self._generator = TweetGenerator(
            vocabulary_size=300, rng=random.Random(3)
        )
        self._remaining = count
        self._seq = 0

    def next_tuple(self):
        if self._remaining <= 0:
            return None
        self._remaining -= 1
        self._seq += 1
        return (self._seq, self._generator.next_tweet())


class PatternGeneratorBolt(Bolt):
    """Expands each tweet into candidate itemsets (variable fan-out)."""

    def execute(self, event, collector):
        seq, tweet = event
        collector.emit(("begin", seq, None))
        for itemset in candidate_itemsets(tweet, max_size=2):
            collector.emit(("cand", seq, itemset))


class DetectorBolt(Bolt):
    """Streams candidate counts over a sliding window of tweets.

    State: occurrence counts per itemset, the window of per-tweet
    candidate groups, and the current frequent set.  A threshold
    crossing in either direction emits a state-change notification —
    the tuples that flow to the reporter (and, on the real topology,
    around the feedback loop to the other detector instances).
    """

    def __init__(self, window_size: int, threshold: int):
        self._window_size = window_size
        self._threshold = threshold
        self._counts = Counter()
        self._window = deque()  # groups of itemsets, one per tweet
        self._current = []
        self._frequent = set()

    def execute(self, event, collector):
        kind, seq, itemset = event
        if kind == "begin":
            self._close_current(collector)
            return
        self._counts[itemset] += 1
        self._current.append(itemset)
        if (
            self._counts[itemset] >= self._threshold
            and itemset not in self._frequent
        ):
            self._frequent.add(itemset)
            collector.emit(("became_frequent", itemset))

    def _close_current(self, collector):
        if self._current:
            self._window.append(tuple(self._current))
            self._current = []
        while len(self._window) > self._window_size:
            for itemset in self._window.popleft():
                self._counts[itemset] -= 1
                if (
                    self._counts[itemset] < self._threshold
                    and itemset in self._frequent
                ):
                    self._frequent.discard(itemset)
                    collector.emit(("no_longer_frequent", itemset))
                if self._counts[itemset] == 0:
                    del self._counts[itemset]

    def maximal_frequent_patterns(self):
        """Frequent itemsets with no frequent (tracked) superset."""
        return {
            itemset
            for itemset in self._frequent
            if not any(other > itemset for other in self._frequent)
        }

    def occurrence_count(self, itemset):
        return self._counts.get(frozenset(itemset), 0)


class ReporterBolt(Bolt):
    """Forwards state-change notifications (would write to HDFS)."""

    def execute(self, change, collector):
        collector.emit(change)


def run_real_pipeline() -> None:
    print("-- real MFP mining on the Storm-like local cluster --")
    detector = DetectorBolt(window_size=400, threshold=30)
    builder = StormTopologyBuilder("fpd")
    builder.set_spout("tweets", TweetSpout(count=2000))
    builder.set_bolt(
        "pattern_generator", PatternGeneratorBolt(), sources=["tweets"]
    )
    builder.set_bolt("detector", detector, sources=["pattern_generator"])
    builder.set_bolt("reporter", ReporterBolt(), sources=["detector"])

    result = LocalCluster(builder, kmax=22).run(max_tuples=2000)

    print(f"  processed {result.external_tuples} tweets")
    print(f"  detector state changes reported: {len(result.outputs)}")
    mfps = sorted(
        detector.maximal_frequent_patterns(),
        key=lambda s: -detector.occurrence_count(s),
    )[:5]
    print("  top maximal frequent patterns in the window:")
    for itemset in mfps:
        terms = ", ".join(sorted(itemset))
        print(f"    {{{terms}}}  count={detector.occurrence_count(itemset)}")
    print("  measured per-bolt rates (tuples per wall-second):")
    for name in result.bolt_names:
        mu = result.service_rates.get(name)
        lam = result.arrival_rates[name]
        if mu is not None:
            print(f"    {name:>18}: lambda={lam:10.0f}/s  mu={mu:10.0f}/s")
        else:
            print(f"    {name:>18}: lambda={lam:10.0f}/s  mu=(no samples)")
    if result.recommendation is not None:
        print(
            f"  DRS recommendation for Kmax=22: {result.recommendation.spec()}"
            f"  (estimated E[T] = {result.estimated_sojourn * 1e6:.0f} us)"
        )
    print()


def solve_loop_topology() -> None:
    print("-- scheduling the full FPD topology (with feedback loop) --")
    workload = FPDWorkload()
    topology = workload.build()
    model = PerformanceModel.from_topology(topology)
    print(f"  topology has a cycle: {topology.has_cycle()}")
    rates = dict(zip(model.operator_names, model.network.arrival_rates))
    print(
        "  traffic equations (loop included):"
        + "".join(f"\n    lambda_{k} = {v:.1f}/s" for k, v in rates.items())
    )
    allocation = assign_processors(model, 22)
    value = model.expected_sojourn(list(allocation.vector))
    print(f"  DRS optimum at Kmax=22: {allocation.spec()}")
    print(f"  expected sojourn: {value * 1000:.1f} ms")
    print("  (the paper's recommended FPD allocation is 6:13:3)")


if __name__ == "__main__":
    run_real_pipeline()
    solve_loop_topology()
