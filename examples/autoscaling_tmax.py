#!/usr/bin/env python3
"""Tmax-driven auto-scaling — the paper's Fig. 10 (ExpA / ExpB).

Two runs of the VLD workload with a MIN_RESOURCE controller and a
simulated machine pool (5 executor slots per machine, 3 reserved):

- **ExpA**: tight latency target; the run starts under-provisioned on
  4 machines (Kmax=17, allocation 8:8:1), violates the target, and DRS
  boots a fifth machine, re-balancing to 22 executors.
- **ExpB**: loose target; the run starts over-provisioned on 5 machines
  (10:11:1) and DRS releases a machine, settling at 17 executors while
  still meeting the target.

Run:  python examples/autoscaling_tmax.py
"""

from repro.experiments import fig10, report


def main() -> None:
    print("running ExpA (scale-out)... ", flush=True)
    exp_a = fig10.run_exp_a(enable_at=240.0, duration=720.0, bucket=30.0)
    print("running ExpB (scale-in)... ", flush=True)
    exp_b = fig10.run_exp_b(enable_at=240.0, duration=720.0, bucket=30.0)
    print()
    print(report.render_fig10([exp_a, exp_b]))
    print()
    for run in (exp_a, exp_b):
        print(f"{run.name} timeline (mean sojourn per 30 s bucket):")
        for start, mean, count in run.buckets:
            if mean is None:
                continue
            marker = ""
            if run.scaled_at is not None and start <= run.scaled_at < start + 30:
                marker = "  <- machines changed here"
            bar = "#" * min(60, int(mean * 20))
            print(f"  t={start:5.0f}s {mean * 1000:8.0f} ms {bar}{marker}")
        print()


if __name__ == "__main__":
    main()
