#!/usr/bin/env python3
"""Quickstart: model a streaming application and let DRS size it.

This walks the paper's two optimisation problems on the Video Logo
Detection pipeline (Fig. 4):

1. Program 4 — "I have Kmax processors; where should they go?"
2. Program 6 — "I need E[T] <= Tmax; how few processors suffice?"

Then it validates the recommendation by simulating the topology and
comparing the model's prediction with the measured sojourn time.

Run:  python examples/quickstart.py
"""

from repro import (
    Allocation,
    PerformanceModel,
    RuntimeOptions,
    Simulator,
    TopologyBuilder,
    TopologyRuntime,
    assign_processors,
    min_processors_for_target,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Describe the application: spouts, operators, streams.
    #    Rates come from profiling (or the DRS measurer at runtime).
    # ------------------------------------------------------------------
    topology = (
        TopologyBuilder("vld")
        .add_spout("frames", rate=13.0)  # 13 frames/s
        .add_operator("sift", mu=1.75)  # one executor extracts 1.75 fps
        .add_operator("matcher", mu=17.5)  # matches 17.5 features/s
        .add_operator("aggregator", mu=150.0)
        .connect("frames", "sift")
        .connect("sift", "matcher", gain=10.0)  # ~10 features per frame
        .connect("matcher", "aggregator", gain=0.3)  # ~30% match
        .build()
    )
    print(topology.describe())
    print()

    # ------------------------------------------------------------------
    # 2. Build the performance model (Erlang M/M/k + Jackson network).
    # ------------------------------------------------------------------
    model = PerformanceModel.from_topology(topology)
    print(f"per-operator arrival rates: {model.network.arrival_rates}")
    print(f"stability floor (min executors): {model.min_allocation()}")
    print()

    # ------------------------------------------------------------------
    # 3. Program 4: place Kmax = 22 executors optimally (Algorithm 1).
    # ------------------------------------------------------------------
    kmax = 22
    best = assign_processors(model, kmax)
    estimate = model.estimate(list(best.vector))
    print(f"Program 4 (Kmax={kmax}): {best.spec()}")
    print(f"  expected sojourn E[T] = {estimate.expected_sojourn * 1000:.0f} ms")
    print(f"  bottleneck operator   = {estimate.bottleneck}")
    print()

    # ------------------------------------------------------------------
    # 4. Program 6: fewest executors for a 2-second target.
    # ------------------------------------------------------------------
    tmax = 2.0
    minimal = min_processors_for_target(model, tmax)
    print(f"Program 6 (Tmax={tmax:.1f}s): {minimal.spec()}")
    print(f"  total executors = {minimal.total}")
    print(
        f"  E[T] = {model.expected_sojourn(list(minimal.vector)) * 1000:.0f} ms"
    )
    print()

    # ------------------------------------------------------------------
    # 5. Validate by simulation: run the recommended allocation for ten
    #    simulated minutes on the Storm-like CSP simulator.
    # ------------------------------------------------------------------
    simulator = Simulator()
    runtime = TopologyRuntime(
        simulator, topology, best, RuntimeOptions(seed=42)
    )
    runtime.start()
    simulator.run_until(600.0)
    stats = runtime.stats(warmup=60.0)
    print(f"simulated 600 s: {stats.completed_trees} frames fully processed")
    print(f"  measured mean sojourn = {stats.mean_sojourn * 1000:.0f} ms")
    print(
        f"  model estimate        = {estimate.expected_sojourn * 1000:.0f} ms"
    )
    worse = Allocation(list(best.names), [8, 12, 2])
    _, worse_runtime = _rerun(topology, worse)
    worse_stats = worse_runtime.stats(warmup=60.0)
    print(
        f"  a nearby allocation {worse.spec()} measures"
        f" {worse_stats.mean_sojourn * 1000:.0f} ms — DRS's placement wins"
    )


def _rerun(topology, allocation):
    simulator = Simulator()
    runtime = TopologyRuntime(
        simulator, topology, allocation, RuntimeOptions(seed=42)
    )
    runtime.start()
    simulator.run_until(600.0)
    return simulator, runtime


if __name__ == "__main__":
    main()
