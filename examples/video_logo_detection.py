#!/usr/bin/env python3
"""Video logo detection with live DRS control (paper Fig. 9 protocol).

Starts the calibrated VLD workload on a deliberately bad allocation
(8:12:2), runs with re-balancing disabled for four simulated minutes —
DRS monitors and recommends passively — then enables re-balancing and
watches DRS migrate to the optimal 10:11:1 with a small transient spike.

Also demonstrates the *real* computation the pipeline stands for: a
synthetic SIFT extract -> match -> aggregate pass over one generated
frame, so the service-time model is grounded in actual work.

Run:  python examples/video_logo_detection.py
"""

import numpy as np

from repro import RuntimeOptions, Simulator, TopologyRuntime
from repro.apps.sift import (
    aggregate_matches,
    extract_features,
    generate_frame,
    make_logo_library,
    match_features,
)
from repro.apps.vld import VLDWorkload
from repro.config import MeasurementConfig
from repro.experiments.harness import DRSBinding, make_kmax_controller


def demo_real_pipeline() -> None:
    """One frame through the actual SIFT-like pipeline."""
    print("-- real computation: one frame through the VLD pipeline --")
    rng = np.random.default_rng(7)
    library = make_logo_library(n_logos=16, features_per_logo=30, seed=1)
    frame = generate_frame(rng)
    features = extract_features(frame, max_features=40, seed=2)
    matches = match_features(
        features, library, features_per_logo=30, distance_threshold=1.25
    )
    detections = aggregate_matches(0, matches, min_matches=3)
    print(f"  extracted {features.shape[0]} descriptors from the frame")
    print(f"  {len(matches)} feature matches against 16 logos")
    if detections:
        for d in detections:
            print(
                f"  -> logo {d.logo_id} detected"
                f" ({d.matched_features} matching features)"
            )
    else:
        print("  -> no logo above the aggregation threshold in this frame")
    print()


def run_with_drs() -> None:
    print("-- simulated cluster under DRS control --")
    workload = VLDWorkload()
    topology = workload.build()
    initial = workload.allocation("8:12:2")  # suboptimal on purpose

    simulator = Simulator()
    runtime = TopologyRuntime(
        simulator,
        topology,
        initial,
        RuntimeOptions(
            seed=11,
            hop_latency=0.002,
            timeline_bucket=30.0,
            measurement=MeasurementConfig(alpha=0.85),
        ),
    )
    controller = make_kmax_controller(
        topology, kmax=22, rebalance_threshold=0.12
    )
    enable_at = 240.0
    binding = DRSBinding(
        runtime, controller, enable_at=enable_at, min_action_gap=60.0
    )
    runtime.start()
    simulator.run_until(600.0)

    print(f"  initial allocation : {initial.spec()}")
    print(f"  re-balancing enabled at t = {enable_at:.0f} s")
    for event in binding.applied_events:
        print(
            f"  t={event.time:6.0f}s  {event.decision.action.value}"
            f" -> {event.decision.target_allocation.spec()}"
        )
    print(f"  final allocation   : {runtime.allocation.spec()}")
    print()
    print("  minute-by-minute mean sojourn (ms):")
    for start, mean, count in runtime.timeline():
        if mean is None:
            continue
        marker = "  <- rebalance window" if start <= enable_at < start + 30 else ""
        print(f"    t={start:6.0f}s  {mean * 1000:8.0f} ms  (n={count}){marker}")


if __name__ == "__main__":
    demo_real_pipeline()
    run_with_drs()
