#!/usr/bin/env python3
"""Service smoke: drive a campaign through the HTTP job server.

Boots an in-process :class:`repro.service.CampaignService` on an
ephemeral port (or talks to an already-running server via ``--url``),
submits a campaign spec over HTTP, tails the NDJSON aggregate stream
while replications land, and polls the job to completion.

Because jobs execute against a content-addressed result store, running
this script twice with the same ``--store`` proves the resume
contract: the second submission re-enqueues the same job id and
finishes with ``computed=0`` — every replication served from the
store, nothing recomputed.  CI's ``service-smoke`` job does exactly
that and asserts on this script's output.

Run::

    python examples/service_smoke.py --store service-store
    python examples/service_smoke.py --store service-store  # computed=0
    python examples/service_smoke.py --url http://127.0.0.1:8151 \
        --campaign examples/campaigns/smoke.json
"""

import argparse
import json
from pathlib import Path

from repro.service import CampaignService, ServiceClient, ServiceConfig

DEFAULT_CAMPAIGN = Path(__file__).parent / "campaigns" / "smoke.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--campaign",
        default=str(DEFAULT_CAMPAIGN),
        help="CampaignSpec JSON file to submit (default: the smoke grid)",
    )
    parser.add_argument(
        "--store",
        default="service-store",
        help="result-store directory (in-process server mode)",
    )
    parser.add_argument(
        "--url",
        default=None,
        help="talk to an already-running server instead of booting one",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="per-job replication workers (in-process server mode)",
    )
    parser.add_argument(
        "--stream-out",
        default="service-stream.ndjson",
        help="write the streamed aggregate snapshots here (NDJSON)",
    )
    args = parser.parse_args()

    campaign = json.loads(Path(args.campaign).read_text())

    service = None
    if args.url is None:
        service = CampaignService(
            ServiceConfig(
                store=Path(args.store),
                port=0,  # ephemeral: no clash with a real deployment
                job_workers=1,
                campaign_workers=args.workers,
                poll_interval=0.1,
            )
        )
        service.start()
        url = service.url
        print(f"booted in-process service at {url} (store: {args.store})")
    else:
        url = args.url
        print(f"using running service at {url}")

    try:
        client = ServiceClient(url)
        job = client.submit(campaign=campaign)
        print(f"submitted job {job['id']} ({job['name']}): {job['state']}")

        # Tail the stream: one line per aggregate change until terminal.
        snapshots = []
        for snapshot in client.stream(job["id"]):
            snapshots.append(snapshot)
            progress = snapshot["progress"]
            print(
                f"  stream seq={snapshot['seq']} state={snapshot['state']}"
                f" stored={progress['stored']}/{progress['total']}"
            )
        Path(args.stream_out).write_text(
            "".join(json.dumps(s, sort_keys=True) + "\n" for s in snapshots)
        )
        print(f"wrote {len(snapshots)} snapshots to {args.stream_out}")

        final = client.wait(job["id"], timeout=600)
        if final["state"] != "done":
            print(f"job ended {final['state']}: {final['error']}")
            return 1
        result = final["result"]
        print(
            f"service run: campaign={result['campaign']}"
            f" computed={result['computed']} reused={result['reused']}"
            f" analytic={result['analytic']}"
        )
        for cell in result["cells"]:
            print(
                f"  {cell['label']:<24} path={cell['path']:<9}"
                f" mean_sojourn={cell['mean_sojourn']:.4f}"
            )
        return 0
    finally:
        if service is not None:
            service.shutdown()
            print("service stopped")


if __name__ == "__main__":
    raise SystemExit(main())
