#!/usr/bin/env python3
"""Advanced scheduling: config-driven topologies, tail targets,
heterogeneous processors, and the refined G/G/k model.

Everything here goes beyond the paper's figures while staying on its
machinery — the features a production deployment of DRS would reach for
first.

Run:  python examples/advanced_scheduling.py
"""

import json

from repro import PerformanceModel, RefinedPerformanceModel, assign_processors
from repro.scheduler import (
    ProcessorClass,
    assign_heterogeneous,
    expected_sojourn_heterogeneous,
    min_processors_for_quantile,
    min_processors_for_target,
    sojourn_quantile_bound,
)
from repro.topology import topology_from_dict


# A JSON-ready description of the VLD pipeline — what you would keep in
# a config file next to the topology deployment descriptor.
TOPOLOGY_SPEC = json.loads(
    """
    {
      "name": "vld",
      "spouts": [{"name": "frames", "uniform_rate": {"low": 1, "high": 25}}],
      "operators": [
        {"name": "sift",
         "service_time": {"type": "lognormal", "mean": 0.5714, "scv": 1.5}},
        {"name": "matcher",
         "service_time": {"type": "lognormal", "mean": 0.05714, "scv": 1.5}},
        {"name": "aggregator", "mu": 150.0}
      ],
      "edges": [
        {"source": "frames", "target": "sift"},
        {"source": "sift", "target": "matcher", "gain": 10.0},
        {"source": "matcher", "target": "aggregator", "gain": 0.3,
         "grouping": {"type": "fields", "fields": ["root"]}}
      ]
    }
    """
)


def main() -> None:
    topology = topology_from_dict(TOPOLOGY_SPEC)
    print(f"loaded topology {topology.name!r} from a JSON spec")
    print()

    # ------------------------------------------------------------------
    # Plain vs refined model: the refined one reads the declared (or
    # measured) service-time SCVs and corrects the waiting terms.
    # ------------------------------------------------------------------
    plain = PerformanceModel.from_topology(topology)
    refined = RefinedPerformanceModel.from_topology(topology)
    allocation = assign_processors(plain, 22)
    print(f"Kmax=22 optimum: {allocation.spec()}")
    print(
        f"  plain M/M/k estimate : "
        f"{plain.expected_sojourn(list(allocation.vector)) * 1000:.0f} ms"
    )
    print(
        f"  refined G/G/k (SCV {refined.service_scvs}) : "
        f"{refined.expected_sojourn(list(allocation.vector)) * 1000:.0f} ms"
    )
    refined_allocation = assign_processors(refined, 22)
    print(f"  refined model's own optimum: {refined_allocation.spec()}")
    print()

    # ------------------------------------------------------------------
    # Mean vs tail targets: a p95 SLO needs more headroom than a mean
    # target at the same number.
    # ------------------------------------------------------------------
    tmax = 2.5
    by_mean = min_processors_for_target(plain, tmax)
    by_p95 = min_processors_for_quantile(plain, tmax, q=0.95)
    print(f"target {tmax:.1f}s on the MEAN : {by_mean.spec()} "
          f"({by_mean.total} executors)")
    print(
        f"target {tmax:.1f}s on the P95  : {by_p95.spec()} "
        f"({by_p95.total} executors; bound "
        f"{sojourn_quantile_bound(plain, list(by_p95.vector), q=0.95) * 1000:.0f} ms)"
    )
    print()

    # ------------------------------------------------------------------
    # Heterogeneous pools: 4 fast cores + a rack of standard ones.
    # ------------------------------------------------------------------
    classes = [
        ProcessorClass("fast", speed=2.0, count=4),
        ProcessorClass("standard", speed=1.0, count=14),
    ]
    assignment = assign_heterogeneous(plain, classes)
    print("heterogeneous pool (4x speed-2.0 + 14x speed-1.0):")
    for name in plain.operator_names:
        counts = assignment.counts(name)
        detail = ", ".join(f"{c}x {cls}" for cls, c in sorted(counts.items()))
        print(f"  {name:>11}: {detail or 'none'}")
    value = expected_sojourn_heterogeneous(plain, assignment)
    print(f"  expected sojourn: {value * 1000:.0f} ms")


if __name__ == "__main__":
    main()
