"""Tests for the topology runtime — simulator vs theory, rebalancing,
conservation laws, queue limits, disciplines."""

import pytest

from repro.exceptions import SchedulingError, SimulationError
from repro.queueing import expected_sojourn_time
from repro.randomness.distributions import Deterministic
from repro.scheduler import Allocation
from repro.sim import (
    RebalanceCostModel,
    RebalanceStyle,
    RuntimeOptions,
    Simulator,
    TopologyRuntime,
)
from repro.topology import TopologyBuilder


def single_operator_topology(lam=8.0, mu=1.0):
    return (
        TopologyBuilder("mmk")
        .add_spout("src", rate=lam)
        .add_operator("op", mu=mu)
        .connect("src", "op")
        .build()
    )


def run_topology(topology, allocation, duration, **options):
    sim = Simulator()
    runtime = TopologyRuntime(
        sim, topology, allocation, RuntimeOptions(**options)
    )
    runtime.start()
    sim.run_until(duration)
    return runtime


class TestTheoryValidation:
    def test_shared_queue_matches_mmk_theory(self):
        """The simulator's M/M/k sojourn matches Erlang's formula."""
        topology = single_operator_topology(lam=8.0, mu=1.0)
        runtime = run_topology(
            topology,
            Allocation(["op"], [10]),
            3000.0,
            queue_discipline="shared",
            seed=3,
        )
        measured = runtime.stats(warmup=200.0).mean_sojourn
        theory = expected_sojourn_time(8.0, 1.0, 10)
        assert measured == pytest.approx(theory, rel=0.08)

    def test_jsq_close_to_mmk_theory(self):
        topology = single_operator_topology(lam=8.0, mu=1.0)
        runtime = run_topology(
            topology,
            Allocation(["op"], [10]),
            3000.0,
            queue_discipline="jsq",
            seed=3,
        )
        measured = runtime.stats(warmup=200.0).mean_sojourn
        theory = expected_sojourn_time(8.0, 1.0, 10)
        assert measured == pytest.approx(theory, rel=0.15)

    def test_hashed_worse_than_shared(self):
        """Random per-executor queues must have strictly higher delay —
        the deviation the paper attributes to hashing."""
        topology = single_operator_topology(lam=8.0, mu=1.0)
        shared = run_topology(
            topology,
            Allocation(["op"], [10]),
            1500.0,
            queue_discipline="shared",
            seed=3,
        ).stats(warmup=100.0)
        hashed = run_topology(
            topology,
            Allocation(["op"], [10]),
            1500.0,
            queue_discipline="hashed",
            seed=3,
        ).stats(warmup=100.0)
        assert hashed.mean_sojourn > 1.5 * shared.mean_sojourn

    def test_chain_gains_produce_expected_rates(self, chain_topology):
        runtime = run_topology(
            chain_topology, Allocation(["a", "b", "c"], [5, 6, 3]), 400.0, seed=5
        )
        processed = runtime.stats().per_operator_processed
        # a sees ~10/s, b ~20/s, c ~10/s over 400 s.
        assert processed["a"] == pytest.approx(4000, rel=0.1)
        assert processed["b"] == pytest.approx(8000, rel=0.1)
        assert processed["c"] == pytest.approx(4000, rel=0.1)


class TestConservation:
    def test_conservation_holds(self, chain_topology):
        runtime = run_topology(
            chain_topology, Allocation(["a", "b", "c"], [5, 6, 3]), 200.0, seed=7
        )
        runtime.check_conservation()

    def test_conservation_with_loop(self, loop_topology):
        allocation = Allocation(["a", "b", "c", "e"], [3, 2, 2, 2])
        runtime = run_topology(loop_topology, allocation, 200.0, seed=7)
        runtime.check_conservation()
        stats = runtime.stats()
        assert stats.completed_trees > 0

    def test_completion_ratio_high_when_stable(self, chain_topology):
        runtime = run_topology(
            chain_topology, Allocation(["a", "b", "c"], [5, 6, 3]), 400.0, seed=7
        )
        assert runtime.stats().completion_ratio > 0.95


class TestQueueLimit:
    def test_overload_drops_tuples(self):
        topology = single_operator_topology(lam=20.0, mu=1.0)
        runtime = run_topology(
            topology,
            Allocation(["op"], [2]),  # hopelessly under-provisioned
            100.0,
            queue_limit=50,
            seed=9,
        )
        stats = runtime.stats()
        assert stats.dropped_tuples > 0
        assert stats.dropped_trees > 0
        runtime.check_conservation()

    def test_no_drops_when_stable(self, chain_topology):
        runtime = run_topology(
            chain_topology,
            Allocation(["a", "b", "c"], [5, 6, 3]),
            200.0,
            queue_limit=100_000,
            seed=9,
        )
        assert runtime.stats().dropped_tuples == 0


class TestRebalance:
    def test_rebalance_changes_allocation(self, chain_topology):
        sim = Simulator()
        runtime = TopologyRuntime(
            sim,
            chain_topology,
            Allocation(["a", "b", "c"], [5, 6, 3]),
            RuntimeOptions(seed=11),
        )
        runtime.start()
        sim.run_until(50.0)
        pause = runtime.apply_allocation(Allocation(["a", "b", "c"], [6, 5, 3]))
        assert runtime.paused
        sim.run_until(50.0 + pause + 1.0)
        assert not runtime.paused
        assert runtime.allocation.spec() == "6:5:3"
        sim.run_until(150.0)
        runtime.check_conservation()
        assert runtime.stats().rebalances == 1

    def test_rebalance_causes_latency_spike(self, chain_topology):
        """Sojourn during/after the pause is visibly above steady state."""
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        sim = Simulator()
        runtime = TopologyRuntime(
            sim,
            chain_topology,
            allocation,
            RuntimeOptions(
                seed=11,
                timeline_bucket=10.0,
                rebalance_cost=RebalanceCostModel(
                    style=RebalanceStyle.STORM_DEFAULT, default_pause=20.0
                ),
            ),
        )
        runtime.start()
        sim.run_until(200.0)
        runtime.apply_allocation(Allocation(["a", "b", "c"], [6, 6, 2]))
        sim.run_until(400.0)
        buckets = dict(
            (start, mean) for start, mean, _ in runtime.timeline()
        )
        steady = buckets[150.0]
        spike = max(v for k, v in buckets.items() if 200.0 <= k <= 240.0 and v)
        assert spike > 3.0 * steady

    def test_double_rebalance_rejected_while_paused(self, chain_topology):
        sim = Simulator()
        runtime = TopologyRuntime(
            sim,
            chain_topology,
            Allocation(["a", "b", "c"], [5, 6, 3]),
            RuntimeOptions(seed=11),
        )
        runtime.start()
        sim.run_until(10.0)
        runtime.apply_allocation(Allocation(["a", "b", "c"], [6, 6, 3]))
        with pytest.raises(SimulationError, match="in progress"):
            runtime.apply_allocation(Allocation(["a", "b", "c"], [5, 6, 3]))

    def test_instant_rebalance_has_no_pause(self, chain_topology):
        sim = Simulator()
        runtime = TopologyRuntime(
            sim,
            chain_topology,
            Allocation(["a", "b", "c"], [5, 6, 3]),
            RuntimeOptions(
                seed=11,
                rebalance_cost=RebalanceCostModel(style=RebalanceStyle.INSTANT),
            ),
        )
        runtime.start()
        sim.run_until(10.0)
        pause = runtime.apply_allocation(Allocation(["a", "b", "c"], [6, 6, 3]))
        assert pause == 0.0


class TestValidationAndMisc:
    def test_allocation_topology_mismatch(self, chain_topology):
        with pytest.raises(SchedulingError):
            TopologyRuntime(
                Simulator(), chain_topology, Allocation(["x"], [1])
            )

    def test_double_start_rejected(self, chain_topology):
        sim = Simulator()
        runtime = TopologyRuntime(
            sim, chain_topology, Allocation(["a", "b", "c"], [5, 6, 3])
        )
        runtime.start()
        with pytest.raises(SimulationError):
            runtime.start()

    def test_bad_options_rejected(self):
        with pytest.raises(SimulationError):
            RuntimeOptions(queue_discipline="fifo")
        with pytest.raises(SimulationError):
            RuntimeOptions(hop_latency=-0.1)
        with pytest.raises(SimulationError):
            RuntimeOptions(queue_limit=0)
        with pytest.raises(SimulationError):
            RuntimeOptions(timeline_bucket=0.0)

    def test_hop_latency_adds_to_sojourn(self, chain_topology):
        allocation = Allocation(["a", "b", "c"], [6, 8, 4])
        base = run_topology(chain_topology, allocation, 300.0, seed=13)
        delayed = run_topology(
            chain_topology, allocation, 300.0, seed=13, hop_latency=0.1
        )
        base_mean = base.stats(warmup=50).mean_sojourn
        delayed_mean = delayed.stats(warmup=50).mean_sojourn
        # Three hops on the critical path -> roughly +0.3 s.
        assert delayed_mean > base_mean + 0.2

    def test_measurement_reports_produced(self, chain_topology):
        runtime = run_topology(
            chain_topology, Allocation(["a", "b", "c"], [5, 6, 3]), 95.0, seed=13
        )
        # Default Tm = 10 s -> 9 reports in 95 s.
        assert len(runtime.reports) == 9
        last = runtime.reports[-1]
        assert last.is_complete()

    def test_deterministic_under_seed(self, chain_topology):
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        a = run_topology(chain_topology, allocation, 100.0, seed=42).stats()
        b = run_topology(chain_topology, allocation, 100.0, seed=42).stats()
        assert a.mean_sojourn == b.mean_sojourn
        assert a.external_tuples == b.external_tuples

    def test_different_seeds_differ(self, chain_topology):
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        a = run_topology(chain_topology, allocation, 100.0, seed=1).stats()
        b = run_topology(chain_topology, allocation, 100.0, seed=2).stats()
        assert a.mean_sojourn != b.mean_sojourn

    def test_deterministic_service_chain(self):
        """Zero-variance service + low load: sojourn == total service."""
        topology = (
            TopologyBuilder("det")
            .add_spout("s", rate=1.0)
            .add_operator("a", service_time=Deterministic(0.01))
            .add_operator("b", service_time=Deterministic(0.02))
            .connect("s", "a")
            .connect("a", "b")
            .build()
        )
        runtime = run_topology(
            topology, Allocation(["a", "b"], [2, 2]), 500.0, seed=17
        )
        measured = runtime.stats(warmup=10).mean_sojourn
        assert measured == pytest.approx(0.03, rel=0.05)

    def test_broadcast_loop_replicates(self):
        """A broadcast self-loop delivers one copy per executor."""
        from repro.topology.grouping import BroadcastGrouping

        topology = (
            TopologyBuilder("bc")
            .add_spout("s", rate=2.0)
            .add_operator("a", mu=50.0)
            .add_operator("b", mu=200.0)
            .connect("s", "a")
            # 10% of tuples notify ALL b-executors.
            .connect("a", "b", gain=0.1, grouping=BroadcastGrouping())
            .build()
        )
        runtime = run_topology(
            topology, Allocation(["a", "b"], [1, 4]), 400.0, seed=19
        )
        stats = runtime.stats()
        runtime.check_conservation()
        # b processes ~4x the edge gain counts (one per executor).
        expected_b = stats.per_operator_processed["a"] * 0.1 * 4
        assert stats.per_operator_processed["b"] == pytest.approx(
            expected_b, rel=0.2
        )
