"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.app == "vld"
        assert args.duration == 480.0

    def test_fig9_options(self):
        args = build_parser().parse_args(
            ["fig9", "--app", "fpd", "--enable-at", "100", "--duration", "200"]
        )
        assert args.app == "fpd"
        assert args.enable_at == 100.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_table2_runs(self, capsys):
        code = main(["table2", "--repetitions", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Scheduling" in out

    def test_fig8_runs(self, capsys):
        code = main(["fig8", "--duration", "60", "--warmup", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "underestimation" in out

    def test_fig6_vld_short(self, capsys):
        code = main(["fig6", "--duration", "120", "--warmup", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10:11:1" in out

    def test_baselines_short(self, capsys):
        code = main(
            ["baselines", "--app", "vld", "--duration", "90", "--warmup", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drs" in out

    def test_list_policies(self, capsys):
        code = main(["list-policies"])
        assert code == 0
        out = capsys.readouterr().out
        assert "drs.min_sojourn" in out
        assert "threshold" in out

    def test_run_scenario(self, capsys, tmp_path):
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-smoke",
            workload="synthetic",
            workload_params={
                "total_cpu": 0.03,
                "arrival_rate": 20.0,
                "hop_latency": 0.004,
            },
            policy="none",
            initial_allocation="10:10:10",
            duration=60.0,
            warmup=10.0,
            replications=2,
            seed=17,
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        code = main(["run-scenario", str(path), "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out
        assert "rep 0" in out and "rep 1" in out

    def test_run_scenario_json_output(self, capsys, tmp_path):
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-json",
            workload="synthetic",
            workload_params={"total_cpu": 0.03, "arrival_rate": 20.0},
            policy="none",
            initial_allocation="10:10:10",
            duration=30.0,
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        code = main(["run-scenario", str(path), "--json", "--workers", "1"])
        assert code == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["name"] == "cli-json"
        assert len(summary["replications"]) == 1

    def test_run_scenario_bad_spec_errors(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "workload": "nope", "policy": "none"}')
        code = main(["run-scenario", str(path)])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_run_scenario_missing_file(self):
        with pytest.raises(SystemExit):
            main(["run-scenario", "/does/not/exist.json"])
