"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.app == "vld"
        assert args.duration == 480.0

    def test_fig9_options(self):
        args = build_parser().parse_args(
            ["fig9", "--app", "fpd", "--enable-at", "100", "--duration", "200"]
        )
        assert args.app == "fpd"
        assert args.enable_at == 100.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--store", "runs/"])
        assert args.store == "runs/"
        assert args.host == "127.0.0.1"
        assert args.port == 8151
        assert args.job_workers == 2

    def test_serve_requires_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_every_verb_has_an_epilog(self):
        """Help epilogs are part of the UX contract: each verb shows a
        worked example (or equivalent guidance) under its options."""
        parser = build_parser()
        actions = [
            a
            for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        ]
        subparsers = actions[0].choices
        missing = [name for name, sp in subparsers.items() if not sp.epilog]
        assert not missing, f"verbs without an epilog: {missing}"

    def test_serve_missing_manifest_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="tolerance manifest not found"):
            main(
                [
                    "serve",
                    "--store",
                    str(tmp_path),
                    "--manifest",
                    str(tmp_path / "absent.json"),
                ]
            )


class TestExecution:
    def test_table2_runs(self, capsys):
        code = main(["table2", "--repetitions", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Scheduling" in out

    def test_fig8_runs(self, capsys):
        code = main(["fig8", "--duration", "60", "--warmup", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "underestimation" in out

    def test_fig6_vld_short(self, capsys):
        code = main(["fig6", "--duration", "120", "--warmup", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10:11:1" in out

    def test_baselines_short(self, capsys):
        code = main(
            ["baselines", "--app", "vld", "--duration", "90", "--warmup", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drs" in out

    def test_list_policies(self, capsys):
        code = main(["list-policies"])
        assert code == 0
        out = capsys.readouterr().out
        assert "drs.min_sojourn" in out
        assert "threshold" in out

    def test_run_scenario(self, capsys, tmp_path):
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-smoke",
            workload="synthetic",
            workload_params={
                "total_cpu": 0.03,
                "arrival_rate": 20.0,
                "hop_latency": 0.004,
            },
            policy="none",
            initial_allocation="10:10:10",
            duration=60.0,
            warmup=10.0,
            replications=2,
            seed=17,
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        code = main(["run-scenario", str(path), "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out
        assert "rep 0" in out and "rep 1" in out

    def test_run_scenario_json_output(self, capsys, tmp_path):
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-json",
            workload="synthetic",
            workload_params={"total_cpu": 0.03, "arrival_rate": 20.0},
            policy="none",
            initial_allocation="10:10:10",
            duration=30.0,
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        code = main(["run-scenario", str(path), "--json", "--workers", "1"])
        assert code == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["name"] == "cli-json"
        assert len(summary["replications"]) == 1

    def test_run_scenario_bad_spec_errors(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "workload": "nope", "policy": "none"}')
        code = main(["run-scenario", str(path)])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_run_scenario_missing_file(self):
        with pytest.raises(SystemExit):
            main(["run-scenario", "/does/not/exist.json"])


class TestCampaignCommands:
    def campaign_file(self, tmp_path):
        import json

        spec = {
            "name": "cli-campaign",
            "base": {
                "workload": "synthetic",
                "workload_params": {
                    "total_cpu": 0.03,
                    "arrival_rate": 20.0,
                    "hop_latency": 0.004,
                },
                "policy": "none",
                "duration": 40.0,
                "warmup": 5.0,
                "replications": 2,
                "seed": 17,
            },
            "axes": [
                {
                    "name": "allocation",
                    "field": "initial_allocation",
                    "values": ["8:8:8", "10:10:10"],
                }
            ],
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        return path

    def test_run_campaign_and_resume(self, capsys, tmp_path):
        path = self.campaign_file(tmp_path)
        store = tmp_path / "store"
        code = main(
            ["run-campaign", str(path), "--store", str(store), "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "computed=4 reused=0" in out
        code = main(
            ["run-campaign", str(path), "--store", str(store), "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "computed=0 reused=4" in out

    def test_run_campaign_dry_run(self, capsys, tmp_path):
        path = self.campaign_file(tmp_path)
        store = tmp_path / "store"
        code = main(["run-campaign", str(path), "--store", str(store), "--dry-run"])
        assert code == 0
        assert "4 replications total, 0 cached" in capsys.readouterr().out

    def test_run_campaign_json_output(self, capsys, tmp_path):
        import json

        path = self.campaign_file(tmp_path)
        code = main(["run-campaign", str(path), "--json", "--workers", "1"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"] == "cli-campaign"
        assert payload["computed"] == 4
        assert len(payload["cells"]) == 2

    def test_campaign_report_from_store(self, capsys, tmp_path):
        path = self.campaign_file(tmp_path)
        store = tmp_path / "store"
        assert main(["run-campaign", str(path), "--store", str(store)]) == 0
        capsys.readouterr()
        code = main(["campaign-report", str(path), "--store", str(store)])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregated from store" in out
        assert "8:8:8" in out and "10:10:10" in out

    def test_campaign_report_requires_store(self):
        with pytest.raises(SystemExit):
            main(["campaign-report", "whatever.json"])

    def test_campaign_report_missing_store_errors(self, tmp_path):
        path = self.campaign_file(tmp_path)
        missing = tmp_path / "no-such-store"
        with pytest.raises(SystemExit, match="result store not found"):
            main(["campaign-report", str(path), "--store", str(missing)])
        assert not missing.exists()

    def test_run_campaign_missing_file(self):
        with pytest.raises(SystemExit):
            main(["run-campaign", "/does/not/exist.json"])

    def test_run_campaign_bad_spec_errors(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "base": {"workload": "nope"}}')
        code = main(["run-campaign", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
