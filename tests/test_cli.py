"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.app == "vld"
        assert args.duration == 480.0

    def test_fig9_options(self):
        args = build_parser().parse_args(
            ["fig9", "--app", "fpd", "--enable-at", "100", "--duration", "200"]
        )
        assert args.app == "fpd"
        assert args.enable_at == 100.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestExecution:
    def test_table2_runs(self, capsys):
        code = main(["table2", "--repetitions", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Scheduling" in out

    def test_fig8_runs(self, capsys):
        code = main(["fig8", "--duration", "60", "--warmup", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "underestimation" in out

    def test_fig6_vld_short(self, capsys):
        code = main(["fig6", "--duration", "120", "--warmup", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10:11:1" in out

    def test_baselines_short(self, capsys):
        code = main(
            ["baselines", "--app", "vld", "--duration", "90", "--warmup", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drs" in out
