"""Tests for the full M/M/k queue analysis."""

import math
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mmk import MMkQueue


class TestBasicProperties:
    def test_offered_load_and_utilisation(self):
        q = MMkQueue(lam=6.0, mu=2.0, k=4)
        assert q.offered_load == pytest.approx(3.0)
        assert q.utilisation == pytest.approx(0.75)
        assert q.is_stable

    def test_unstable_representable(self):
        q = MMkQueue(lam=10.0, mu=2.0, k=4)
        assert not q.is_stable
        assert math.isinf(q.mean_waiting_time)
        assert math.isinf(q.mean_sojourn_time)
        assert math.isinf(q.mean_queue_length)
        assert math.isinf(q.mean_number_in_system)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MMkQueue(lam=1.0, mu=1.0, k=0)

    def test_rejects_fractional_k(self):
        with pytest.raises(ValueError):
            MMkQueue(lam=1.0, mu=1.0, k=1.5)


class TestLittlesLaw:
    def test_queue_length_vs_waiting_time(self):
        q = MMkQueue(lam=8.0, mu=3.0, k=4)
        assert q.mean_queue_length == pytest.approx(
            q.lam * q.mean_waiting_time, rel=1e-12
        )

    def test_number_in_system(self):
        q = MMkQueue(lam=8.0, mu=3.0, k=4)
        assert q.mean_number_in_system == pytest.approx(
            q.lam * q.mean_sojourn_time, rel=1e-12
        )


class TestStateProbabilities:
    def test_sum_close_to_one_with_long_tail(self):
        q = MMkQueue(lam=2.0, mu=1.0, k=4)
        probs = q.state_probabilities(200)
        assert sum(probs) == pytest.approx(1.0, abs=1e-9)

    def test_mm1_geometric(self):
        # M/M/1: P[L = n] = (1 - rho) rho^n.
        q = MMkQueue(lam=1.0, mu=2.0, k=1)
        probs = q.state_probabilities(10)
        for n, p in enumerate(probs):
            assert p == pytest.approx(0.5 * 0.5**n, rel=1e-9)

    def test_mean_matches_distribution(self):
        q = MMkQueue(lam=5.0, mu=2.0, k=4)
        probs = q.state_probabilities(2000)
        mean_l = sum(n * p for n, p in enumerate(probs))
        assert mean_l == pytest.approx(q.mean_number_in_system, rel=1e-6)

    def test_unstable_raises(self):
        q = MMkQueue(lam=10.0, mu=1.0, k=2)
        with pytest.raises(ValueError):
            q.state_probabilities(10)


class TestWaitingTimeDistribution:
    def test_cdf_at_zero_is_no_wait_probability(self):
        q = MMkQueue(lam=5.0, mu=2.0, k=4)
        assert q.waiting_time_cdf(0.0) == pytest.approx(
            1.0 - q.wait_probability
        )

    def test_cdf_monotone(self):
        q = MMkQueue(lam=5.0, mu=2.0, k=4)
        values = [q.waiting_time_cdf(t) for t in (0.0, 0.1, 0.5, 1.0, 5.0)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_quantile_roundtrip(self):
        q = MMkQueue(lam=5.0, mu=2.0, k=4)
        for prob in (0.5, 0.9, 0.99):
            t = q.waiting_time_quantile(prob)
            assert q.waiting_time_cdf(t) == pytest.approx(max(prob, 1 - q.wait_probability), rel=1e-9)

    def test_quantile_below_no_wait_mass_is_zero(self):
        q = MMkQueue(lam=1.0, mu=2.0, k=4)  # almost never waits
        assert q.waiting_time_quantile(0.5) == 0.0

    def test_unstable_quantile_infinite(self):
        q = MMkQueue(lam=10.0, mu=1.0, k=2)
        assert math.isinf(q.waiting_time_quantile(0.9))

    def test_quantile_rejects_bad_q(self):
        q = MMkQueue(lam=1.0, mu=2.0, k=1)
        with pytest.raises(ValueError):
            q.waiting_time_quantile(1.0)


class TestSojournTail:
    def test_tail_at_zero_is_one(self):
        q = MMkQueue(lam=5.0, mu=2.0, k=4)
        assert q.sojourn_time_tail(0.0) == pytest.approx(1.0)

    def test_tail_monotone_decreasing(self):
        q = MMkQueue(lam=5.0, mu=2.0, k=4)
        values = [q.sojourn_time_tail(t) for t in (0.0, 0.2, 0.5, 1.0, 3.0)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_tail_integrates_to_mean(self):
        """integral of P(T > t) dt == E[T] — validates the closed form."""
        q = MMkQueue(lam=5.0, mu=2.0, k=4)
        dt = 0.001
        total = sum(
            q.sojourn_time_tail(i * dt) * dt for i in range(0, 30000)
        )
        assert total == pytest.approx(q.mean_sojourn_time, rel=0.01)

    def test_unstable_tail_is_one(self):
        q = MMkQueue(lam=10.0, mu=1.0, k=2)
        assert q.sojourn_time_tail(100.0) == 1.0


@settings(max_examples=100, deadline=None)
@given(
    lam=st.floats(min_value=0.1, max_value=50.0),
    mu=st.floats(min_value=0.1, max_value=20.0),
    k=st.integers(min_value=1, max_value=64),
)
def test_sojourn_decomposition(lam, mu, k):
    """E[T] == E[W] + 1/mu for every stable configuration."""
    q = MMkQueue(lam=lam, mu=mu, k=k)
    if q.is_stable:
        assert q.mean_sojourn_time == pytest.approx(
            q.mean_waiting_time + 1.0 / mu, rel=1e-9
        )
