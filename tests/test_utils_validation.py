"""Unit tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_identifier,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive("x", 1.5) == 1.5

    def test_accepts_positive_int_and_converts(self):
        value = check_positive("x", 3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", math.inf)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("x", "1.0")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.0001)

    def test_rejects_below_zero(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.0001)


class TestCheckInRange:
    def test_inclusive_bounds_accepted(self):
        assert check_in_range("x", 5, 5, 10) == 5.0
        assert check_in_range("x", 10, 5, 10) == 10.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("x", 5, 5, 10, inclusive=False)

    def test_exclusive_interior_accepted(self):
        assert check_in_range("x", 7, 5, 10, inclusive=False) == 7.0


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int("k", 1) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("k", 0)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("k", 1.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("k", True)


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int("n", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int("n", -1)


class TestCheckType:
    def test_accepts_match(self):
        assert check_type("x", "abc", str) == "abc"

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="x must be str"):
            check_type("x", 1, str)


class TestCheckIdentifier:
    def test_accepts_plain_name(self):
        assert check_identifier("name", "sift") == "sift"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_identifier("name", "")

    def test_rejects_surrounding_whitespace(self):
        with pytest.raises(ValueError):
            check_identifier("name", " sift ")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            check_identifier("name", 42)
