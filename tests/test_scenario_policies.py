"""Tests for the policy registry and the policy adapters."""

import pytest

from repro.apps.vld import VLDWorkload
from repro.baselines.static import ProportionalAllocator, UniformAllocator
from repro.baselines.threshold import ThresholdScaler
from repro.config import OptimizationGoal
from repro.exceptions import SchedulingError
from repro.model.performance import PerformanceModel
from repro.scenarios.policies import PolicyObservation
from repro.scenarios.registry import available_policies, create_policy
from repro.scheduler.allocation import Allocation
from repro.scheduler.assign import assign_processors
from repro.scheduler.controller import ControllerAction, LoadSnapshot


@pytest.fixture(scope="module")
def topology():
    return VLDWorkload().build()


@pytest.fixture(scope="module")
def model(topology):
    return PerformanceModel.from_topology(topology)


class TestRegistry:
    def test_builtins_registered(self):
        names = set(available_policies())
        assert {
            "none",
            "drs.min_sojourn",
            "drs.min_resource",
            "static.uniform",
            "static.proportional",
            "static.random",
            "threshold",
        } <= names

    def test_unknown_policy_lists_available(self, topology):
        with pytest.raises(SchedulingError) as excinfo:
            create_policy("definitely.not.a.policy", topology)
        message = str(excinfo.value)
        assert "definitely.not.a.policy" in message
        assert "available policies" in message
        assert "drs.min_sojourn" in message

    def test_missing_required_param(self, topology):
        with pytest.raises(SchedulingError, match="requires parameter 'kmax'"):
            create_policy("drs.min_sojourn", topology)

    def test_unknown_param_rejected(self, topology):
        with pytest.raises(SchedulingError, match="unknown parameters"):
            create_policy(
                "drs.min_sojourn", topology, {"kmax": 22, "kmaxx": 23}
            )

    def test_descriptions_are_nonempty(self):
        for name, description in available_policies().items():
            assert description, f"{name} has no description"


class TestInitialAllocations:
    def test_drs_matches_algorithm1(self, topology, model):
        policy = create_policy("drs.min_sojourn", topology, {"kmax": 22})
        assert (
            policy.initial_allocation(model).spec()
            == assign_processors(model, 22).spec()
        )

    def test_min_resource_needs_explicit_start(self, topology, model):
        policy = create_policy("drs.min_resource", topology, {"tmax": 2.0})
        assert policy.initial_allocation(model) is None

    def test_uniform_matches_allocator(self, topology, model):
        policy = create_policy("static.uniform", topology, {"kmax": 22})
        assert (
            policy.initial_allocation(model).spec()
            == UniformAllocator().allocate(model, 22).spec()
        )

    def test_proportional_matches_allocator(self, topology, model):
        policy = create_policy("static.proportional", topology, {"kmax": 22})
        assert (
            policy.initial_allocation(model).spec()
            == ProportionalAllocator().allocate(model, 22).spec()
        )

    def test_random_is_seed_deterministic(self, topology, model):
        one = create_policy("static.random", topology, {"kmax": 22, "seed": 5})
        two = create_policy("static.random", topology, {"kmax": 22, "seed": 5})
        assert (
            one.initial_allocation(model).spec()
            == two.initial_allocation(model).spec()
        )

    def test_threshold_convergence_matches_manual_iteration(
        self, topology, model
    ):
        policy = create_policy(
            "threshold", topology, {"kmax": 22, "converge_on_model": True}
        )
        scaler = ThresholdScaler()
        allocation = UniformAllocator().allocate(model, 22)
        lams = model.network.arrival_rates
        mus = model.network.service_rates
        for _ in range(50):
            updated = scaler.update(allocation, lams, mus, kmax=22)
            if updated == allocation:
                break
            allocation = updated
        assert policy.initial_allocation(model).spec() == allocation.spec()


def observation(model, allocation):
    return PolicyObservation(
        time=100.0,
        snapshot=LoadSnapshot(
            arrival_rates=list(model.network.arrival_rates),
            service_rates=list(model.network.service_rates),
            external_rate=model.external_rate,
        ),
        current_allocation=allocation,
    )


class TestObserve:
    def test_passive_never_acts(self, topology, model):
        policy = create_policy("none", topology)
        allocation = Allocation.parse(list(topology.operator_names), "8:12:2")
        decision = policy.observe(observation(model, allocation))
        assert decision.action is ControllerAction.NONE

    def test_drs_recommends_rebalance_from_bad_start(self, topology, model):
        policy = create_policy("drs.min_sojourn", topology, {"kmax": 22})
        allocation = Allocation.parse(list(topology.operator_names), "8:12:2")
        decision = policy.observe(observation(model, allocation))
        assert decision.action is ControllerAction.REBALANCE
        assert decision.target_allocation.spec() == assign_processors(
            model, 22
        ).spec()

    def test_drs_policy_exposes_goal(self, topology):
        policy = create_policy("drs.min_sojourn", topology, {"kmax": 22})
        assert policy.controller.config.goal is OptimizationGoal.MIN_SOJOURN

    def test_threshold_moves_one_step_per_interval(self, topology, model):
        policy = create_policy("threshold", topology, {"kmax": 22})
        # Uniform over VLD misplaces the budget (idle aggregator), so the
        # scaler reacts — one single-processor move per control cycle.
        allocation = UniformAllocator().allocate(model, 20)
        decision = policy.observe(observation(model, allocation))
        assert decision.action is ControllerAction.REBALANCE
        assert abs(decision.target_allocation.total - allocation.total) == 1
