"""Tests for the operator-state migration cost extension (future work
[42] of the paper: rebalances that move stateful executors pay more)."""

import pytest

from repro.scheduler import Allocation
from repro.sim import (
    RebalanceCostModel,
    RuntimeOptions,
    Simulator,
    TopologyRuntime,
)
from repro.topology import TopologyBuilder


def stateful_topology():
    return (
        TopologyBuilder("t")
        .add_spout("s", rate=5.0)
        .add_operator("stateless", mu=10.0)
        .add_operator("stateful", mu=10.0, stateful=True)
        .connect("s", "stateless")
        .connect("stateless", "stateful")
        .build()
    )


class TestCostModel:
    def test_stateful_moves_add_pause(self):
        model = RebalanceCostModel(state_migration_per_executor=0.5)
        base = model.pause_duration()
        with_state = model.pause_duration(stateful_executors_moved=4)
        assert with_state == pytest.approx(base + 2.0)

    def test_instant_style_ignores_state(self):
        from repro.sim import RebalanceStyle

        model = RebalanceCostModel(style=RebalanceStyle.INSTANT)
        assert model.pause_duration(stateful_executors_moved=10) == 0.0

    def test_rejects_negative(self):
        import pytest as _pytest

        from repro.exceptions import SimulationError

        with _pytest.raises(SimulationError):
            RebalanceCostModel().pause_duration(stateful_executors_moved=-1)


class TestRuntimeIntegration:
    def _run_rebalance(self, old_counts, new_counts):
        topology = stateful_topology()
        names = ["stateless", "stateful"]
        simulator = Simulator()
        runtime = TopologyRuntime(
            simulator,
            topology,
            Allocation(names, old_counts),
            RuntimeOptions(
                seed=3,
                rebalance_cost=RebalanceCostModel(
                    improved_pause=1.0, state_migration_per_executor=0.5
                ),
            ),
        )
        runtime.start()
        simulator.run_until(10.0)
        return runtime.apply_allocation(Allocation(names, new_counts))

    def test_stateless_move_costs_base_only(self):
        pause = self._run_rebalance([3, 2], [4, 2])
        assert pause == pytest.approx(1.0)

    def test_stateful_move_costs_extra(self):
        pause = self._run_rebalance([3, 2], [2, 3])
        # stateful delta |3-2| = 1 -> +0.5 on top of the base pause.
        assert pause == pytest.approx(1.5)

    def test_larger_stateful_delta_costs_more(self):
        small = self._run_rebalance([4, 2], [3, 3])
        large = self._run_rebalance([5, 2], [2, 5])
        assert large > small
