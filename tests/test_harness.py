"""Tests for the experiment harness (passive runs, DRS binding)."""

import pytest

from repro.config import MeasurementConfig
from repro.experiments.harness import (
    DRSBinding,
    make_kmax_controller,
    make_tmax_controller,
    model_from_report,
    passive_recommendation,
    run_passive,
)
from repro.measurement.measurer import MeasurementReport
from repro.scheduler import Allocation
from repro.sim import RuntimeOptions, Simulator, TopologyRuntime


class TestRunPassive:
    def test_returns_stats_and_runtime(self, chain_topology):
        stats, runtime = run_passive(
            chain_topology,
            Allocation(["a", "b", "c"], [5, 6, 3]),
            120.0,
            options=RuntimeOptions(seed=3),
            warmup=20.0,
        )
        assert stats.mean_sojourn is not None
        assert runtime.simulator.now == 120.0
        assert stats.rebalances == 0


class TestModelFromReport:
    def _report(self, arrivals, services, external, sojourn=0.5):
        return MeasurementReport(
            timestamp=10.0,
            operator_names=["a", "b", "c"],
            arrival_rates=arrivals,
            service_rates=services,
            service_scvs=[None, None, None],
            external_rate=external,
            measured_sojourn=sojourn,
            sojourn_std=0.1,
            completed_trees=100,
            processing_time=0.0001,
        )

    def test_complete_report(self):
        report = self._report([10.0, 20.0, 10.0], [4.0, 6.0, 20.0], 10.0)
        model = model_from_report(report)
        assert model is not None
        assert model.network.arrival_rates == pytest.approx([10.0, 20.0, 10.0])

    def test_incomplete_without_fallback(self):
        report = self._report([10.0, None, 10.0], [4.0, 6.0, 20.0], 10.0)
        assert model_from_report(report) is None

    def test_incomplete_with_fallback(self, chain_model):
        report = self._report([12.0, None, None], [None, None, None], None)
        model = model_from_report(report, chain_model)
        assert model is not None
        # Measured value used where present, nominal elsewhere.
        assert model.network.arrival_rates[0] == pytest.approx(12.0)
        assert model.network.arrival_rates[1] == pytest.approx(20.0)
        assert model.external_rate == pytest.approx(10.0)


class TestPassiveRecommendation:
    def test_recommendation_after_run(self, chain_topology):
        _, runtime = run_passive(
            chain_topology,
            Allocation(["a", "b", "c"], [5, 6, 3]),
            200.0,
            options=RuntimeOptions(seed=3),
        )
        recommendation = passive_recommendation(runtime, kmax=14)
        assert recommendation is not None
        assert recommendation.total == 14

    def test_none_without_reports(self, chain_topology):
        simulator = Simulator()
        runtime = TopologyRuntime(
            simulator, chain_topology, Allocation(["a", "b", "c"], [5, 6, 3])
        )
        assert passive_recommendation(runtime, kmax=14) is None


class TestDRSBinding:
    def test_passive_before_enable(self, vld_like_topology):
        simulator = Simulator()
        runtime = TopologyRuntime(
            simulator,
            vld_like_topology,
            Allocation(["sift", "matcher", "aggregator"], [8, 12, 2]),
            RuntimeOptions(seed=7, measurement=MeasurementConfig(alpha=0.8)),
        )
        controller = make_kmax_controller(vld_like_topology, kmax=22)
        binding = DRSBinding(runtime, controller, enable_at=1e9)
        runtime.start()
        simulator.run_until(300.0)
        # Decisions recorded, none applied.
        assert binding.events
        assert not binding.applied_events
        assert runtime.allocation.spec() == "8:12:2"

    def test_applies_after_enable(self, vld_like_topology):
        simulator = Simulator()
        runtime = TopologyRuntime(
            simulator,
            vld_like_topology,
            Allocation(["sift", "matcher", "aggregator"], [8, 12, 2]),
            RuntimeOptions(seed=7, measurement=MeasurementConfig(alpha=0.8)),
        )
        controller = make_kmax_controller(
            vld_like_topology, kmax=22, rebalance_threshold=0.1
        )
        binding = DRSBinding(
            runtime, controller, enable_at=100.0, min_action_gap=60.0
        )
        runtime.start()
        simulator.run_until(400.0)
        applied = binding.applied_events
        assert applied
        assert applied[0].time >= 100.0
        assert runtime.stats().rebalances >= 1

    def test_min_action_gap_enforced(self, vld_like_topology):
        simulator = Simulator()
        runtime = TopologyRuntime(
            simulator,
            vld_like_topology,
            Allocation(["sift", "matcher", "aggregator"], [8, 12, 2]),
            RuntimeOptions(seed=7),
        )
        controller = make_kmax_controller(vld_like_topology, kmax=22)
        binding = DRSBinding(
            runtime, controller, enable_at=0.0, min_action_gap=120.0
        )
        runtime.start()
        simulator.run_until(400.0)
        times = [e.time for e in binding.applied_events]
        assert all(b - a >= 120.0 for a, b in zip(times, times[1:]))


class TestControllerFactories:
    def test_kmax_controller(self, vld_like_topology):
        controller = make_kmax_controller(vld_like_topology, kmax=22)
        assert controller.config.kmax == 22

    def test_tmax_controller(self, vld_like_topology):
        from repro.config import ClusterSpec

        controller = make_tmax_controller(
            vld_like_topology, tmax=2.0, cluster=ClusterSpec()
        )
        assert controller.config.tmax == 2.0
