"""Property-based tests for the analytic edge cases the fidelity audit
pinned down: fp-degenerate critical loads, zero/extreme SCVs, and the
percentile bound's clamped domain."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import erlang, mgk
from repro.scheduler.percentile import (
    _z_for,
    operator_sojourn_moments,
    sojourn_quantile_bound,
)

rates = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
servers = st.integers(min_value=1, max_value=256)
scvs = st.floats(
    min_value=0.0, max_value=64.0, allow_nan=False, allow_infinity=False
)


class TestErlangDegenerate:
    def test_regression_exact_fp_critical_load(self):
        """lam chosen so a = lam/mu < k in fp while k*mu - lam == 0.0:
        previously a ZeroDivisionError, now the saturated branch."""
        mu = 1.0 / 7.0
        k = 29
        lam = k * mu  # 4.142857142857142; lam/mu rounds to 28.999...96
        assert lam / mu < k  # the fp disagreement this regression pins
        assert k * mu - lam == 0.0
        assert math.isinf(erlang.expected_waiting_time(lam, mu, k))
        assert math.isinf(erlang.expected_sojourn_time(lam, mu, k))
        assert math.isinf(erlang.expected_queue_length(lam, mu, k))
        mean, variance = operator_sojourn_moments(lam, mu, k)
        assert math.isinf(mean) and math.isinf(variance)
        evaluator = erlang.ErlangMarginalEvaluator(lam, mu, k)
        assert math.isinf(evaluator.sojourn)
        assert math.isinf(evaluator.delta())
        # One more server clears criticality; advance() must survive the
        # degenerate start and produce the finite k+1 value.
        assert math.isfinite(evaluator.advance())

    def test_min_servers_consistent_with_sojourn(self):
        mu = 1.0 / 7.0
        lam = 29 * mu
        k = erlang.min_servers(lam, mu)
        assert math.isfinite(erlang.expected_sojourn_time(lam, mu, k))

    @given(mu=rates, k=servers)
    @settings(max_examples=200, deadline=None)
    def test_critical_products_never_raise(self, mu, k):
        """For lam = k*mu computed in fp, every Erlang quantity is a
        well-defined float or inf — never an exception, never nan."""
        lam = k * mu
        for fn in (
            erlang.expected_waiting_time,
            erlang.expected_sojourn_time,
            erlang.marginal_benefit,
        ):
            value = fn(lam, mu, k)
            assert not math.isnan(value)
        k_min = erlang.min_servers(lam, mu)
        assert math.isfinite(erlang.expected_sojourn_time(lam, mu, k_min))

    @given(lam=rates, mu=rates, k=servers)
    @settings(max_examples=200, deadline=None)
    def test_evaluator_matches_module_functions(self, lam, mu, k):
        evaluator = erlang.ErlangMarginalEvaluator(lam, mu, k)
        assert evaluator.sojourn == erlang.expected_sojourn_time(lam, mu, k)
        assert evaluator.delta() == erlang.marginal_benefit(lam, mu, k)
        assert evaluator.advance() == erlang.marginal_benefit(lam, mu, k + 1)


class TestAllenCunneenEdges:
    @given(lam=rates, mu=rates, k=servers, ca2=scvs, cs2=scvs)
    @settings(max_examples=300, deadline=None)
    def test_never_nan(self, lam, mu, k, ca2, cs2):
        """No (lam, mu, k, SCV) combination may produce nan — the
        inf * 0 corner included."""
        wait = mgk.expected_waiting_time_gg(lam, mu, k, ca2=ca2, cs2=cs2)
        assert not math.isnan(wait)
        sojourn = mgk.expected_sojourn_time_gg(lam, mu, k, ca2=ca2, cs2=cs2)
        assert not math.isnan(sojourn)
        delta = mgk.marginal_benefit_gg(lam, mu, k, ca2=ca2, cs2=cs2)
        assert not math.isnan(delta)

    @given(mu=rates, k=servers)
    @settings(max_examples=100, deadline=None)
    def test_stable_ddk_waits_exactly_zero(self, mu, k):
        lam = 0.5 * k * mu  # rho = 0.5 < 1
        assert (
            mgk.expected_waiting_time_gg(lam, mu, k, ca2=0.0, cs2=0.0) == 0.0
        )
        assert mgk.expected_sojourn_time_gg(
            lam, mu, k, ca2=0.0, cs2=0.0
        ) == pytest.approx(1.0 / mu)

    @given(mu=rates, k=servers)
    @settings(max_examples=100, deadline=None)
    def test_unstable_base_propagates_inf_at_zero_scv(self, mu, k):
        lam = 2.0 * k * mu  # rho = 2 > 1
        assert math.isinf(
            mgk.expected_waiting_time_gg(lam, mu, k, ca2=0.0, cs2=0.0)
        )
        assert math.isinf(
            mgk.marginal_benefit_gg(lam, mu, k, ca2=0.0, cs2=0.0)
        )

    def test_scv_one_recovers_mmk_exactly(self):
        assert mgk.expected_waiting_time_gg(
            8.0, 1.0, 10, ca2=1.0, cs2=1.0
        ) == erlang.expected_waiting_time(8.0, 1.0, 10)


class TestPercentileEdges:
    @given(q=st.floats(min_value=0.5, max_value=0.9999))
    @settings(max_examples=200, deadline=None)
    def test_z_finite_and_nonnegative_on_domain(self, q):
        z = _z_for(q)
        assert math.isfinite(z)
        assert z >= 0.0

    def test_z_monotone_in_q(self):
        grid = [0.5 + 0.499 * i / 400 for i in range(401)]
        values = [_z_for(q) for q in grid]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize(
        "q,expected",
        [(0.5, 0.0), (0.9, 1.2816), (0.95, 1.6449), (0.99, 2.3263)],
    )
    def test_canonical_levels_bit_stable(self, q, expected):
        assert _z_for(q) == expected

    def test_approximation_accuracy(self):
        # Known normal quantiles to 4 decimals.
        for q, exact in [(0.75, 0.6745), (0.975, 1.9600), (0.999, 3.0902)]:
            assert _z_for(q) == pytest.approx(exact, abs=5e-4)

    @given(q=st.floats(min_value=1e-6, max_value=0.4999))
    @settings(max_examples=50, deadline=None)
    def test_below_median_rejected(self, q):
        with pytest.raises(ValueError):
            _z_for(q)

    @given(lam=rates, mu=rates, k=servers)
    @settings(max_examples=300, deadline=None)
    def test_moments_never_raise_never_negative_variance(self, lam, mu, k):
        mean, variance = operator_sojourn_moments(lam, mu, k)
        assert not math.isnan(mean) and not math.isnan(variance)
        assert variance >= 0.0

    def test_bound_inf_at_q_one(self, chain_model):
        assert math.isinf(
            sojourn_quantile_bound(chain_model, [5, 7, 3], q=1.0)
        )

    def test_bound_at_least_mean_on_domain(self, chain_model):
        allocation = [5, 7, 3]
        mean = chain_model.expected_sojourn(allocation)
        for i in range(50):
            q = 0.5 + 0.499 * i / 49
            bound = sojourn_quantile_bound(chain_model, allocation, q=q)
            assert bound >= mean - 1e-12
