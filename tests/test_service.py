"""Tests for :mod:`repro.service` — HTTP job server over the engine.

Three layers, three contracts:

- :class:`JobQueue` — content-addressed ids, disk-mirrored state, and
  crash recovery (``running`` jobs found on boot demote to ``queued``).
- :class:`JobExecutor` — jobs run through :func:`repro.api.run_campaign`
  against the shared store; cancel is cooperative; shutdown re-queues
  (not cancels) interrupted jobs so a restarted server resumes with
  zero recomputation.
- The HTTP surface — submissions aggregate bit-identically to driving
  :class:`CampaignRunner` directly, progress/stream/cancel behave, and
  validation errors come back as 400s, unknown jobs as 404s.
"""

import json
import threading
import time

import pytest

from repro import api
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.exceptions import CampaignCancelled, ConfigurationError, DRSError
from repro.service import (
    CampaignService,
    JobExecutor,
    JobQueue,
    JobRecord,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    campaign_from_submission,
    job_id_for,
    job_progress,
)

BASE = {
    "workload": "synthetic",
    "workload_params": {"total_cpu": 0.03, "arrival_rate": 20.0},
    "policy": "none",
    "initial_allocation": "10:10:10",
    "duration": 40.0,
    "warmup": 5.0,
    "replications": 2,
    "seed": 17,
}


def campaign_dict(name="svc-cmp", *, duration=40.0, replications=2):
    return {
        "name": name,
        "base": dict(BASE, duration=duration, replications=replications),
        "axes": [
            {
                "name": "rate",
                "field": "workload_params.arrival_rate",
                "values": [20.0, 30.0],
            }
        ],
    }


def spec(name="svc-cmp", **kwargs):
    return CampaignSpec.from_dict(campaign_dict(name, **kwargs))


@pytest.fixture
def service(tmp_path):
    """A running service on an ephemeral port, shut down afterwards."""
    svc = CampaignService(
        ServiceConfig(
            store=tmp_path / "store",
            port=0,
            job_workers=1,
            campaign_workers=1,
            poll_interval=0.02,
        )
    )
    svc.start()
    try:
        yield svc
    finally:
        svc.shutdown()


class TestJobIds:
    def test_content_addressed(self):
        assert job_id_for(spec()) == job_id_for(spec())
        assert job_id_for(spec()) != job_id_for(spec("other-name"))

    def test_key_order_is_canonicalised(self):
        raw = campaign_dict()
        reordered = json.loads(json.dumps(raw, sort_keys=True))
        assert job_id_for(CampaignSpec.from_dict(raw)) == job_id_for(
            CampaignSpec.from_dict(reordered)
        )


class TestSubmissionShapes:
    def test_bare_campaign(self):
        campaign, workers = campaign_from_submission(campaign_dict())
        assert isinstance(campaign, CampaignSpec) and workers is None

    def test_envelope_with_workers(self):
        campaign, workers = campaign_from_submission(
            {"campaign": campaign_dict(), "workers": 3}
        )
        assert len(campaign.expand()) == 2 and workers == 3

    def test_scenario_becomes_single_cell_campaign(self):
        campaign, _ = campaign_from_submission(
            {"scenario": dict(BASE, name="solo")}
        )
        cells = campaign.expand()
        assert campaign.name == "solo" and len(cells) == 1

    def test_unrecognised_shape_rejected(self):
        with pytest.raises(DRSError, match="submission must be"):
            campaign_from_submission({"what": "ever"})

    def test_bad_workers_rejected(self):
        with pytest.raises(Exception, match="workers must be >= 1"):
            campaign_from_submission(
                {"campaign": campaign_dict(), "workers": 0}
            )


class TestJobQueue:
    def test_submit_persists_and_reloads(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, enqueued = queue.submit(spec())
        assert enqueued and job.state == "queued"
        reloaded = JobQueue(tmp_path)
        assert reloaded.get(job.id).campaign == job.campaign

    def test_live_job_not_duplicated(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, _ = queue.submit(spec())
        again, enqueued = queue.submit(spec())
        assert again is first and not enqueued

    def test_terminal_job_reenqueued_same_id(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec())
        queue.claim_next()
        queue.finish(job.id, "done", result={"computed": 4})
        again, enqueued = queue.submit(spec())
        assert enqueued and again.id == job.id and again.runs == 2
        assert again.state == "queued" and again.result is None

    def test_running_demoted_to_queued_on_boot(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec())
        assert queue.claim_next() is job and job.state == "running"
        # Simulate a hard kill: a fresh queue over the same directory.
        rebooted = JobQueue(tmp_path)
        assert rebooted.get(job.id).state == "queued"

    def test_cancel_queued_is_immediate(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec())
        cancelled = queue.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert cancelled.error == "cancelled before starting"

    def test_cancel_unknown_returns_none(self, tmp_path):
        assert JobQueue(tmp_path).cancel("nope") is None

    def test_finish_requires_terminal_state(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(spec())
        with pytest.raises(ConfigurationError, match="not a terminal"):
            queue.finish(job.id, "running")

    def test_torn_record_skipped(self, tmp_path):
        (tmp_path / "deadbeef.json").write_text("{not json")
        queue = JobQueue(tmp_path)
        assert queue.list() == []


class TestExecutor:
    def run_executor(self, tmp_path, campaign, **kwargs):
        queue = JobQueue(tmp_path / "jobs")
        executor = JobExecutor(
            queue, tmp_path / "store", campaign_workers=1, **kwargs
        )
        executor.start()
        try:
            job, _ = queue.submit(campaign)
            executor.notify()
            deadline = time.monotonic() + 60
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
            return queue, job
        finally:
            executor.shutdown()

    def test_job_runs_to_done(self, tmp_path):
        queue, job = self.run_executor(tmp_path, spec())
        assert job.state == "done"
        assert job.result["computed"] == 4 and job.result["reused"] == 0
        assert {c["path"] for c in job.result["cells"]} == {"simulated"}

    def test_resubmit_computes_nothing(self, tmp_path):
        self.run_executor(tmp_path, spec())
        _, job = self.run_executor(tmp_path, spec())
        assert job.state == "done"
        assert job.result["computed"] == 0 and job.result["reused"] == 4

    def test_invalid_job_fails_with_error(self, tmp_path):
        bad = spec()
        # An unloadable campaign dict (validated at run time).
        queue = JobQueue(tmp_path / "jobs")
        job, _ = queue.submit(bad)
        job.campaign = dict(job.campaign, base=dict(BASE, workload="nope"))
        executor = JobExecutor(queue, tmp_path / "store", campaign_workers=1)
        executor.start()
        try:
            executor.notify()
            deadline = time.monotonic() + 30
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            executor.shutdown()
        assert job.state == "failed" and "workload" in job.error

    def test_job_workers_validated(self, tmp_path):
        with pytest.raises(ConfigurationError, match="job_workers"):
            JobExecutor(JobQueue(tmp_path), tmp_path, job_workers=0)


class TestCancellation:
    def test_user_cancel_mid_run(self, tmp_path):
        """Cancelling a running job stops it cooperatively; completed
        replications stay persisted for the next run."""
        queue = JobQueue(tmp_path / "jobs")
        executor = JobExecutor(
            queue, tmp_path / "store", campaign_workers=1
        )
        executor.start()
        slow = spec(duration=1200.0, replications=3)
        try:
            job, _ = queue.submit(slow)
            executor.notify()
            deadline = time.monotonic() + 30
            while job.state != "running" and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.4)  # let at least one replication land
            queue.cancel(job.id)
            deadline = time.monotonic() + 30
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            executor.shutdown()
        assert job.state == "cancelled"
        assert job.error == "cancelled by request"

    def test_shutdown_requeues_for_resume(self, tmp_path):
        """Kill the server mid-run: the job re-queues, and the next
        server finishes it computing only the leftover replications."""
        slow = spec(duration=1200.0, replications=2)
        queue = JobQueue(tmp_path / "jobs")
        executor = JobExecutor(
            queue, tmp_path / "store", campaign_workers=1
        )
        executor.start()
        job, _ = queue.submit(slow)
        executor.notify()
        deadline = time.monotonic() + 30
        while job.state != "running" and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.7)  # partial progress: some replications stored
        executor.shutdown()  # graceful interrupt, not a user cancel
        assert job.state == "queued", "interrupted job must re-queue"
        stored_before = job_progress(
            slow, api.open_store(tmp_path / "store")
        )["stored"]

        # "Restart" the server over the same directories.
        queue2 = JobQueue(tmp_path / "jobs")
        resumed = queue2.get(job.id)
        assert resumed.state == "queued"
        executor2 = JobExecutor(
            queue2, tmp_path / "store", campaign_workers=1
        )
        executor2.start()
        try:
            executor2.notify()
            deadline = time.monotonic() + 120
            while not resumed.terminal and time.monotonic() < deadline:
                time.sleep(0.05)
        finally:
            executor2.shutdown()
        assert resumed.state == "done"
        total = 2 * 2  # cells * replications
        assert resumed.result["computed"] == total - stored_before
        assert resumed.result["reused"] == stored_before

    def test_runner_raises_campaign_cancelled(self, tmp_path):
        """The engine-level hook: a pre-set event aborts before any
        replication is computed."""
        event = threading.Event()
        event.set()
        with pytest.raises(CampaignCancelled, match="cancelled"):
            api.run_campaign(
                campaign_dict(), store=tmp_path, workers=1, cancel=event
            )
        progress = job_progress(spec(), api.open_store(tmp_path))
        assert progress["stored"] == 0


class TestHTTPSurface:
    def test_health_and_empty_listing(self, service):
        client = ServiceClient(service.url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"]["queued"] == 0
        assert client.jobs() == []

    def test_submit_poll_aggregate_roundtrip(self, service, tmp_path):
        client = ServiceClient(service.url)
        raw = campaign_dict()
        job = client.submit(campaign=raw)
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "done"
        assert final["result"]["computed"] == 4

        status = client.job(job["id"])
        progress = status["progress"]
        assert progress["total"] == progress["stored"] == 4
        assert all(c["missing"] == 0 for c in progress["cells"])

        # Bit-identical to driving CampaignRunner directly on a
        # fresh store with the same spec — the acceptance criterion.
        direct_store = ResultStore(tmp_path / "direct")
        CampaignRunner(direct_store, max_workers=1).run(
            CampaignSpec.from_dict(raw)
        )
        from repro.campaigns.aggregate import aggregate_from_store

        direct = aggregate_from_store(
            CampaignSpec.from_dict(raw), direct_store
        )
        via_http = client.aggregates(job["id"])
        assert json.dumps(via_http, sort_keys=True) == json.dumps(
            direct.to_dict(), sort_keys=True
        )

    def test_stream_yields_snapshots_until_done(self, service):
        client = ServiceClient(service.url)
        job = client.submit(campaign=campaign_dict("stream-cmp"))
        lines = list(client.stream(job["id"]))
        assert lines, "stream must yield at least one snapshot"
        assert lines[-1]["state"] == "done"
        assert [line["seq"] for line in lines] == list(range(len(lines)))
        final = lines[-1]["aggregate"]
        assert len(final["cells"]) == 2

    def test_resubmission_reuses_everything(self, service):
        client = ServiceClient(service.url)
        raw = campaign_dict("warm-cmp")
        first = client.wait(client.submit(campaign=raw)["id"], timeout=120)
        second = client.wait(client.submit(campaign=raw)["id"], timeout=120)
        assert second["id"] == first["id"] and second["runs"] == 2
        assert second["result"]["computed"] == 0
        assert second["result"]["reused"] == 4

    def test_invalid_submission_is_400(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="unknown axis keys") as info:
            client.submit(
                campaign={
                    **campaign_dict(),
                    "axes": [{"parameter": "x", "values": [1]}],
                }
            )
        assert info.value.status == 400

    def test_unknown_job_is_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="unknown job") as info:
            client.job("feedfacecafebeef")
        assert info.value.status == 404
        with pytest.raises(ServiceError) as info:
            client.cancel("feedfacecafebeef")
        assert info.value.status == 404

    def test_cancel_running_job_over_http(self, service):
        client = ServiceClient(service.url)
        job = client.submit(
            campaign=campaign_dict(
                "slow-cmp", duration=1200.0, replications=4
            )
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.job(job["id"])["state"] == "running":
                break
            time.sleep(0.02)
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"

    def test_client_submit_argument_validation(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="exactly one"):
            client.submit()
        with pytest.raises(ServiceError, match="exactly one"):
            client.submit(campaign={}, scenario={})
