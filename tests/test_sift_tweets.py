"""Tests for the synthetic SIFT kernel and the tweet generator."""

import random

import numpy as np
import pytest

from repro.apps.sift import (
    DESCRIPTOR_DIM,
    aggregate_matches,
    extract_features,
    generate_frame,
    make_logo_library,
    match_features,
)
from repro.apps.tweets import TweetGenerator, ZipfSampler


class TestFrameGeneration:
    def test_shape(self):
        rng = np.random.default_rng(0)
        frame = generate_frame(rng, height=64, width=96)
        assert frame.shape == (64, 96)

    def test_reproducible(self):
        a = generate_frame(np.random.default_rng(7))
        b = generate_frame(np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestFeatureExtraction:
    def test_descriptor_shape_and_norm(self):
        frame = generate_frame(np.random.default_rng(1))
        features = extract_features(frame, max_features=20, seed=3)
        assert features.shape[1] == DESCRIPTOR_DIM
        assert 1 <= features.shape[0] <= 20
        norms = np.linalg.norm(features, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_feature_count_scales_with_frame_size(self):
        rng = np.random.default_rng(2)
        small = extract_features(
            generate_frame(rng, 40, 40), max_features=100, seed=1
        )
        big = extract_features(
            generate_frame(rng, 200, 200), max_features=100, seed=1
        )
        assert big.shape[0] > small.shape[0]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            extract_features(np.zeros(10))


class TestMatching:
    def test_identical_descriptors_match(self):
        library = make_logo_library(n_logos=4, features_per_logo=5, seed=0)
        # Query with rows taken straight from logo 2.
        query = library[10:13].copy()
        matches = match_features(
            query, library, features_per_logo=5, distance_threshold=0.01
        )
        assert matches == [(0, 2), (1, 2), (2, 2)]

    def test_no_match_above_threshold(self):
        library = make_logo_library(n_logos=2, features_per_logo=3, seed=0)
        rng = np.random.default_rng(5)
        query = rng.normal(size=(4, DESCRIPTOR_DIM))
        query /= np.linalg.norm(query, axis=1, keepdims=True)
        matches = match_features(
            query, library, features_per_logo=3, distance_threshold=1e-6
        )
        assert matches == []

    def test_empty_query(self):
        library = make_logo_library(2, 3)
        assert match_features(np.empty((0, DESCRIPTOR_DIM)), library, 3) == []


class TestAggregation:
    def test_threshold_rule(self):
        matches = [(0, 1), (1, 1), (2, 1), (3, 2)]
        detections = aggregate_matches(7, matches, min_matches=3)
        assert len(detections) == 1
        assert detections[0].logo_id == 1
        assert detections[0].frame_id == 7
        assert detections[0].matched_features == 3

    def test_empty_matches(self):
        assert aggregate_matches(1, [], min_matches=1) == []


class TestZipfSampler:
    def test_head_dominates(self):
        sampler = ZipfSampler(n_items=100, exponent=1.2)
        rng = random.Random(3)
        samples = [sampler.sample(rng) for _ in range(5000)]
        head = sum(1 for s in samples if s < 10)
        tail = sum(1 for s in samples if s >= 50)
        assert head > 3 * tail

    def test_range(self):
        sampler = ZipfSampler(n_items=10)
        rng = random.Random(4)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(200))


class TestTweetGenerator:
    def test_term_counts_in_bounds(self):
        generator = TweetGenerator(min_terms=2, max_terms=5, rng=random.Random(0))
        for tweet in generator.stream(100):
            assert 1 <= len(tweet) <= 5  # collisions may shrink below min

    def test_stream_count(self):
        generator = TweetGenerator(rng=random.Random(1))
        assert len(list(generator.stream(17))) == 17

    def test_reproducible(self):
        a = list(TweetGenerator(rng=random.Random(5)).stream(10))
        b = list(TweetGenerator(rng=random.Random(5)).stream(10))
        assert a == b

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            TweetGenerator(min_terms=5, max_terms=2)

    def test_rejects_negative_count(self):
        generator = TweetGenerator()
        with pytest.raises(ValueError):
            list(generator.stream(-1))
