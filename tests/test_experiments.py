"""Scaled-down runs of every experiment driver (the shape checks).

These are miniature versions of the benchmark runs: shorter durations,
scaled rates.  They assert the *qualitative* results the paper reports —
who wins, which directions curves move — not absolute numbers.
"""

import pytest

from repro.experiments import fig6, fig7, fig8, fig9, fig10, table2
from repro.experiments import baselines as baseline_experiment
from repro.experiments import report


pytestmark = pytest.mark.filterwarnings("ignore")


class TestFig6:
    @pytest.fixture(scope="class")
    def vld_result(self):
        return fig6.run_vld(duration=420.0, warmup=60.0)

    def test_recommendation_matches_paper(self, vld_result):
        """At this scaled-down duration, measurement noise can swap the
        two model-equivalent optima (E[T] within 1% of each other); the
        full-length benchmark reproduces the paper's exact 10:11:1."""
        assert vld_result.drs_recommendation in ("10:11:1", "11:10:1")

    def test_recommended_among_top_two_measured(self, vld_result):
        ordered = sorted(vld_result.rows, key=lambda r: r.mean_sojourn)
        top_two = {ordered[0].spec, ordered[1].spec}
        assert "10:11:1" in top_two

    def test_all_rows_have_samples(self, vld_result):
        assert all(r.completed_trees > 100 for r in vld_result.rows)

    def test_render(self, vld_result):
        text = report.render_fig6(vld_result)
        assert "10:11:1" in text and "*" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def fpd_result(self):
        return fig7.run_fpd(duration=360.0, warmup=90.0, scale=0.5)

    def test_strong_rank_correlation(self, fpd_result):
        assert fpd_result.rank_correlation > 0.85

    def test_fpd_underestimates(self, fpd_result):
        """Data-intensive FPD: measured > estimated (paper Fig. 7 right)."""
        assert all(p.ratio > 1.0 for p in fpd_result.points)

    def test_calibration_fits_well(self, fpd_result):
        assert fpd_result.calibration_r_squared > 0.7

    def test_render(self, fpd_result):
        assert "spearman" in report.render_fig7(fpd_result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(
            workloads=[0.000567, 0.008, 0.100, 0.3091],
            duration=150.0,
            warmup=20.0,
        )

    def test_ratio_decreasing(self, result):
        assert result.is_decreasing()

    def test_extremes(self, result):
        ratios = result.ratios()
        assert ratios[0] > 5.0  # tiny CPU: gross underestimation
        assert ratios[-1] < 1.2  # heavy CPU: accurate

    def test_render(self, result):
        assert "ratio" in report.render_fig8(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run_vld(enable_at=240.0, duration=480.0, bucket=30.0)

    def test_all_converge_to_optimum(self, result):
        assert result.all_converged()
        assert result.optimal_spec == "10:11:1"

    def test_non_optimal_curves_rebalanced(self, result):
        by_start = {c.initial_spec: c for c in result.curves}
        assert by_start["8:12:2"].was_rebalanced
        assert by_start["11:9:2"].was_rebalanced

    def test_optimal_curve_untouched(self, result):
        by_start = {c.initial_spec: c for c in result.curves}
        assert not by_start["10:11:1"].was_rebalanced

    def test_rebalance_waits_for_enable(self, result):
        for curve in result.curves:
            if curve.was_rebalanced:
                assert curve.rebalanced_at >= 240.0

    def test_latency_improves_after_rebalance(self, result):
        """The 8:12:2 curve's post-rebalance buckets beat its initial ones."""
        curve = next(c for c in result.curves if c.initial_spec == "8:12:2")
        before = [
            m for t, m, n in curve.buckets if t < 240 and m is not None and t >= 60
        ]
        after = [
            m for t, m, n in curve.buckets if t >= 330 and m is not None
        ]
        assert sum(after) / len(after) < sum(before) / len(before)

    def test_render(self, result):
        assert "re-balancing timelines" in report.render_fig9(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def exp_a(self):
        return fig10.run_exp_a(enable_at=240.0, duration=720.0, bucket=30.0)

    @pytest.fixture(scope="class")
    def exp_b(self):
        return fig10.run_exp_b(enable_at=240.0, duration=720.0, bucket=30.0)

    def test_exp_a_scales_out(self, exp_a):
        assert exp_a.initial_machines == 4
        assert exp_a.final_machines == 5
        assert exp_a.final_spec.count(":") == 2
        assert sum(int(x) for x in exp_a.final_spec.split(":")) == 22

    def test_exp_a_meets_tmax_after(self, exp_a):
        assert exp_a.meets_target_after_scaling()

    def test_exp_b_scales_in(self, exp_b):
        assert exp_b.initial_machines == 5
        assert exp_b.final_machines == 4
        assert sum(int(x) for x in exp_b.final_spec.split(":")) == 17

    def test_exp_b_still_meets_tmax(self, exp_b):
        assert exp_b.meets_target_after_scaling()

    def test_scaling_happens_after_enable(self, exp_a, exp_b):
        assert exp_a.scaled_at >= 240.0
        assert exp_b.scaled_at >= 240.0

    def test_render(self, exp_a, exp_b):
        text = report.render_fig10([exp_a, exp_b])
        assert "ExpA" in text and "ExpB" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(repetitions=200)

    def test_scheduling_cost_increases_with_kmax(self, result):
        assert result.scheduling_is_increasing()

    def test_measurement_cost_flat(self, result):
        assert result.measurement_is_flat()

    def test_all_costs_sub_5ms(self, result):
        """'the computation done by DRS is almost negligible'."""
        for row in result.rows:
            assert row.scheduling_ms < 5.0
            assert row.measurement_ms < 5.0

    def test_render(self, result):
        assert "Kmax" in report.render_table2(result)


class TestBaselines:
    @pytest.fixture(scope="class")
    def result(self):
        return baseline_experiment.compare(
            "vld", duration=240.0, warmup=60.0
        )

    def test_drs_wins_by_model(self, result):
        assert result.drs_wins_model()

    def test_drs_is_paper_allocation(self, result):
        assert result.row("drs").spec == "10:11:1"

    def test_drs_beats_uniform_measured(self, result):
        drs = result.row("drs").measured_sojourn
        uniform = result.row("uniform").measured_sojourn
        assert drs < uniform

    def test_render(self, result):
        assert "drs" in report.render_baselines(result)
