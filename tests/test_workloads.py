"""Tests for the repro.workloads subsystem: arrival models, the trace
layer, and their end-to-end integration with scenarios, campaigns and
the fidelity audit."""

import json
import random
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.randomness.arrival import PoissonProcess, SinusoidalRateProcess
from repro.randomness.distributions import Pareto, heavy_tailed
from repro.scenarios.runner import run_replication, summarize_replications
from repro.scenarios.spec import ScenarioSpec
from repro.workloads import (
    MMPP2Model,
    Trace,
    TraceModel,
    available_arrival_models,
    create_arrival_model,
    parse_csv,
    parse_ndjson,
    register_arrival_model,
)

GOLDEN = Path(__file__).parent / "golden" / "workloads_scenarios.json"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        models = available_arrival_models()
        for kind in ("poisson", "phased", "mmpp2", "diurnal", "trace"):
            assert kind in models
            assert models[kind]  # non-empty description

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown arrival model"):
            create_arrival_model({"kind": "fractal"})

    def test_missing_kind(self):
        with pytest.raises(ConfigurationError, match="'kind'"):
            create_arrival_model({"burst_ratio": 2.0})

    def test_leftover_params_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown parameters"):
            create_arrival_model({"kind": "poisson", "burstiness": 3})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_arrival_model("poisson", "dup")(lambda params: None)

    def test_round_trip_canonicalises(self):
        spec = {"kind": "mmpp2", "burst_ratio": 4, "mean_burst": 5,
                "mean_gap": 15}
        model = create_arrival_model(spec)
        again = create_arrival_model(model.to_dict())
        assert again.to_dict() == model.to_dict()
        assert model.to_dict()["rate_multiplier"] == 1.0


# ----------------------------------------------------------------------
# built-in models
# ----------------------------------------------------------------------
class TestModels:
    def test_poisson_multiplier(self):
        model = create_arrival_model({"kind": "poisson", "rate_multiplier": 2.5})
        process = model.build(PoissonProcess(4.0))
        assert process.mean_rate == pytest.approx(10.0)

    def test_mmpp2_preserves_mean_rate(self):
        model = MMPP2Model(burst_ratio=8.0, mean_burst=5.0, mean_gap=20.0)
        low, high = model.rates_for(10.0)
        p = model.burst_fraction
        assert high == pytest.approx(8.0 * low)
        assert p * high + (1 - p) * low == pytest.approx(10.0)
        assert model.build(PoissonProcess(10.0)).mean_rate == pytest.approx(10.0)

    def test_mmpp2_ratio_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="burst_ratio"):
            MMPP2Model(burst_ratio=1.0, mean_burst=5.0, mean_gap=20.0)

    def test_mmpp2_requires_all_parameters(self):
        with pytest.raises(ConfigurationError, match="mean_gap"):
            create_arrival_model(
                {"kind": "mmpp2", "burst_ratio": 4.0, "mean_burst": 5.0}
            )

    def test_diurnal_amplitude_bounds(self):
        with pytest.raises(ConfigurationError, match="amplitude"):
            create_arrival_model(
                {"kind": "diurnal", "amplitude": 1.0, "period": 60.0}
            )

    def test_diurnal_empirical_rate_matches_nominal(self):
        model = create_arrival_model(
            {"kind": "diurnal", "amplitude": 0.8, "period": 10.0}
        )
        process = model.build(PoissonProcess(50.0))
        rng = random.Random(7)
        now, count = 0.0, 0
        while now < 200.0:  # 20 full periods: the sinusoid averages out
            now += process.next_gap(now, rng)
            count += 1
        assert count / 200.0 == pytest.approx(50.0, rel=0.05)

    def test_sinusoidal_rate_validation(self):
        with pytest.raises(ValueError):
            SinusoidalRateProcess(base_rate=1.0, amplitude=1.2, period=10.0)

    def test_phased_model_matches_rate_phases_schedule(self):
        model = create_arrival_model(
            {"kind": "phased",
             "phases": [{"start": 10.0, "rate_multiplier": 3.0}]}
        )
        process = model.build(PoissonProcess(5.0))
        assert process.mean_rate == pytest.approx(5.0)  # multiplier at t=0

    def test_phased_rejects_bad_schedule(self):
        with pytest.raises(ConfigurationError):
            create_arrival_model(
                {"kind": "phased",
                 "phases": [{"start": 10.0, "rate_multiplier": 1.0},
                            {"start": 5.0, "rate_multiplier": 2.0}]}
            )

    def test_trace_model_exclusive_source(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            TraceModel(path="x.csv", timestamps=(0.0, 1.0))
        with pytest.raises(ConfigurationError, match="exactly one"):
            TraceModel()

    def test_trace_model_bad_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            TraceModel(timestamps=(0.0, 1.0), mode="reverse")

    def test_trace_model_inline_validated_eagerly(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            create_arrival_model({"kind": "trace", "timestamps": [1.0]})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), "fast", None])
    def test_non_finite_and_non_numeric_parameters_fail_at_load(self, bad):
        """JSON accepts NaN and strings; both must die as spec-level
        ConfigurationErrors, never as a bare ValueError traceback or —
        worse — a NaN that passes comparison guards and hangs the
        thinning loop mid-replication in a worker."""
        specs = [
            {"kind": "mmpp2", "burst_ratio": bad, "mean_burst": 5.0,
             "mean_gap": 20.0},
            {"kind": "mmpp2", "burst_ratio": 4.0, "mean_burst": bad,
             "mean_gap": 20.0},
            {"kind": "diurnal", "amplitude": 0.5, "period": 60.0,
             "phase": bad},
            {"kind": "diurnal", "amplitude": bad, "period": 60.0},
            {"kind": "phased", "phases": [{"start": bad,
                                           "rate_multiplier": 2.0}]},
            {"kind": "phased", "phases": [{"start": 0.0,
                                           "rate_multiplier": bad}]},
            {"kind": "poisson", "rate_multiplier": bad},
            {"kind": "trace", "timestamps": [0.0, bad, 2.0]},
        ]
        for spec in specs:
            with pytest.raises(ConfigurationError):
                create_arrival_model(spec)

    def test_trace_model_parses_file_once(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp\n0.0\n1.0\n2.5\n")
        model = create_arrival_model({"kind": "trace", "path": str(path)})
        first = model.load_trace()
        path.unlink()  # a re-read would now fail loudly
        assert model.load_trace() is first
        rng = random.Random(0)
        process = model.build(PoissonProcess(1.0))
        assert process.next_gap(0.0, rng) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# trace parsing edge cases
# ----------------------------------------------------------------------
class TestTraceParsing:
    def test_empty_csv(self):
        with pytest.raises(ConfigurationError, match="no events"):
            parse_csv("")

    def test_header_only_csv(self):
        with pytest.raises(ConfigurationError, match="no events"):
            parse_csv("timestamp\n")

    def test_single_event_rejected(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            parse_csv("0.5\n")

    def test_all_duplicate_timestamps_rejected(self):
        with pytest.raises(ConfigurationError, match="spans no time"):
            parse_csv("1.0\n1.0\n1.0\n")

    def test_unsorted_timestamps_are_sorted(self):
        trace = parse_csv("3.0\n1.0\n2.0\n")
        assert trace.timestamps == (1.0, 2.0, 3.0)

    def test_duplicate_timestamps_kept(self):
        trace = parse_csv("0.0\n1.0\n1.0\n2.0\n")
        assert trace.gaps() == [1.0, 0.0, 1.0]
        # Replay nudges the zero gap so the event loop always advances.
        process = trace.build_process("replay")
        rng = random.Random(0)
        gaps = [process.next_gap(0.0, rng) for _ in range(3)]
        assert all(g > 0 for g in gaps)

    def test_malformed_line_reports_number(self):
        with pytest.raises(ConfigurationError, match="line 3"):
            parse_csv("0.0\n1.0\nbanana\n")

    def test_named_column(self):
        trace = parse_csv("size,timestamp\n9,0.5\n3,1.5\n")
        assert trace.timestamps == (0.5, 1.5)

    def test_missing_column_reports_line(self):
        with pytest.raises(ConfigurationError, match="line 3"):
            parse_csv("size,timestamp\n9,0.5\n3\n")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ConfigurationError, match="finite and >= 0"):
            parse_csv("-1.0\n2.0\n")

    def test_ndjson_objects_and_numbers(self):
        trace = parse_ndjson('{"time": 1.0}\n2.5\n{"t": 0.25}\n')
        assert trace.timestamps == (0.25, 1.0, 2.5)

    def test_ndjson_malformed_json(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            parse_ndjson('{"t": 1.0}\n{oops\n')

    def test_ndjson_missing_time_key(self):
        with pytest.raises(ConfigurationError, match="no timestamp field"):
            parse_ndjson('{"t": 1.0}\n{"user": 3}\n')

    def test_ndjson_non_numeric_time(self):
        with pytest.raises(ConfigurationError, match="non-numeric"):
            parse_ndjson('{"t": 1.0}\n{"t": "noon"}\n')

    def test_load_dispatches_on_extension(self, tmp_path):
        csv_file = tmp_path / "a.csv"
        csv_file.write_text("timestamp\n0.0\n1.0\n")
        assert Trace.load(csv_file).timestamps == (0.0, 1.0)
        nd = tmp_path / "a.jsonl"
        nd.write_text('{"t": 0.0}\n{"t": 4.0}\n')
        assert Trace.load(nd).empirical_rate == pytest.approx(0.25)
        with pytest.raises(ConfigurationError, match="unknown trace format"):
            Trace.load(tmp_path / "a.parquet")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            Trace.load(tmp_path / "nope.csv")

    def test_time_scaling(self):
        trace = parse_csv("0.0\n1.0\n2.0\n").scaled(2.0)
        assert trace.empirical_rate == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            trace.scaled(0.0)

    def test_loop_mode_cycles(self):
        trace = parse_csv("0.0\n1.0\n3.0\n")
        process = trace.build_process("loop")
        rng = random.Random(0)
        gaps = [process.next_gap(0.0, rng) for _ in range(5)]
        assert gaps == [1.0, 2.0, 1.0, 2.0, 1.0]
        assert process.mean_rate == pytest.approx(trace.empirical_rate)

    def test_bootstrap_mode_resamples_from_gap_distribution(self):
        trace = parse_csv("0.0\n1.0\n3.0\n")
        process = trace.build_process("bootstrap")
        rng = random.Random(1)
        draws = {process.next_gap(0.0, rng) for _ in range(50)}
        assert draws <= {1.0, 2.0}
        assert len(draws) == 2


# ----------------------------------------------------------------------
# heavy-tailed service distributions
# ----------------------------------------------------------------------
class TestHeavyTails:
    def test_pareto_from_mean_scv_fit(self):
        for mean, scv in ((0.5, 1.5), (2.0, 4.0), (1.0, 0.5)):
            fitted = Pareto.from_mean_scv(mean, scv)
            assert fitted.mean == pytest.approx(mean)
            assert fitted.scv == pytest.approx(scv)

    def test_family_dispatch(self):
        assert heavy_tailed(1.0, 2.0, "pareto").scv == pytest.approx(2.0)
        assert heavy_tailed(1.0, 2.0, "lognormal").mean == pytest.approx(1.0)
        with pytest.raises(ValueError, match="unknown heavy-tailed family"):
            heavy_tailed(1.0, 2.0, "cauchy")

    def test_vld_pareto_family_builds(self):
        from repro.apps.vld import VLDWorkload

        topology = VLDWorkload(service_family="pareto").build()
        sift = topology.operator("sift").service_time
        assert isinstance(sift, Pareto)
        base = VLDWorkload().build().operator("sift").service_time
        assert sift.mean == pytest.approx(base.mean)
        with pytest.raises(ValueError, match="service family"):
            VLDWorkload(service_family="weibull")

    def test_fidelity_workload_family(self):
        from repro.apps.fidelity import FidelityWorkload, service_distribution

        dist = service_distribution(2.0, 4.0, "pareto")
        assert isinstance(dist, Pareto)
        assert dist.mean == pytest.approx(0.5)
        workload = FidelityWorkload(scv=4.0, service_family="pareto")
        operator = workload.build().operator("op")
        assert isinstance(operator.service_time, Pareto)
        with pytest.raises(ValueError, match="service family"):
            FidelityWorkload(service_family="weibull")


# ----------------------------------------------------------------------
# scenario integration
# ----------------------------------------------------------------------
def _mmpp_spec(**overrides):
    raw = {
        "name": "wl-mmpp",
        "workload": "synthetic",
        "workload_params": {
            "total_cpu": 1.05, "arrival_rate": 20.0, "hop_latency": 0.004,
        },
        "policy": "none",
        "initial_allocation": "10:10:10",
        "arrival_model": {
            "kind": "mmpp2", "burst_ratio": 6.0,
            "mean_burst": 3.0, "mean_gap": 9.0,
        },
        "duration": 40.0,
        "warmup": 5.0,
        "replications": 2,
        "seed": 23,
    }
    raw.update(overrides)
    return ScenarioSpec.from_dict(raw)


def _trace_spec():
    return _mmpp_spec(
        name="wl-trace",
        arrival_model={
            "kind": "trace",
            "timestamps": [0.0, 0.2, 0.21, 0.4, 1.0, 1.05, 1.3,
                           2.0, 2.4, 2.45, 3.1, 3.9],
            "mode": "bootstrap",
            "time_scale": 0.2,
        },
    )


class TestScenarioIntegration:
    def test_spec_round_trips_through_json(self):
        spec = _mmpp_spec()
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.arrival_model["kind"] == "mmpp2"

    def test_to_dict_omits_unset_model(self):
        spec = ScenarioSpec(
            name="plain", workload="synthetic", policy="none", duration=10.0
        )
        assert "arrival_model" not in spec.to_dict()

    def test_bad_model_fails_at_spec_load(self):
        with pytest.raises(ConfigurationError, match="unknown arrival model"):
            _mmpp_spec(arrival_model={"kind": "fractal"})
        with pytest.raises(ConfigurationError, match="burst_ratio"):
            _mmpp_spec(arrival_model={"kind": "mmpp2", "burst_ratio": 0.5,
                                      "mean_burst": 1.0, "mean_gap": 1.0})

    def test_mmpp_deterministic_per_seed(self):
        """Same spec, same index => bit-identical; other index differs."""
        first = run_replication(_mmpp_spec(), 0)
        second = run_replication(_mmpp_spec(), 0)
        assert first == second
        other = run_replication(_mmpp_spec(), 1)
        assert other.seed != first.seed
        assert other.external_tuples != first.external_tuples

    def test_trace_bootstrap_varies_by_replication_deterministically(self):
        spec = _trace_spec()
        reps = [run_replication(spec, index) for index in range(2)]
        again = [run_replication(spec, index) for index in range(2)]
        assert reps == again
        assert reps[0].external_tuples != reps[1].external_tuples

    def test_model_composes_with_rate_phases(self):
        spec = _mmpp_spec(
            rate_phases=[{"start": 20.0, "rate_multiplier": 0.25}]
        )
        calm = run_replication(spec, 0)
        plain = run_replication(_mmpp_spec(), 0)
        assert calm.external_tuples < plain.external_tuples

    def test_golden_pinned_summaries(self):
        """The acceptance gate: mmpp2 and trace scenarios reproduce the
        committed per-replication results bit-for-bit."""
        golden = json.loads(GOLDEN.read_text())
        for name, spec in (("mmpp2", _mmpp_spec()), ("trace", _trace_spec())):
            summary = summarize_replications(
                spec, [run_replication(spec, i) for i in range(spec.replications)]
            )
            observed = {
                "mean_sojourn": summary.mean_sojourn,
                "replications": [
                    {
                        "seed": r.seed,
                        "external_tuples": r.external_tuples,
                        "completed_trees": r.completed_trees,
                        "mean_sojourn": r.mean_sojourn,
                        "p95_sojourn": r.p95_sojourn,
                    }
                    for r in summary.replications
                ],
            }
            assert observed == golden[name], f"{name} drifted from golden"


# ----------------------------------------------------------------------
# campaign + fidelity integration
# ----------------------------------------------------------------------
class TestCampaignIntegration:
    def test_arrival_model_as_campaign_axis(self, tmp_path):
        from repro.campaigns.runner import CampaignRunner
        from repro.campaigns.spec import CampaignSpec
        from repro.campaigns.store import ResultStore

        base = _mmpp_spec(replications=1, duration=20.0).to_dict()
        base.pop("name")
        campaign = CampaignSpec(
            name="burst",
            base=base,
            axes=(
                {"name": "burst", "field": "arrival_model.burst_ratio",
                 "values": [2.0, 6.0]},
            ),
        )
        cells = campaign.expand()
        assert [c.spec.arrival_model["burst_ratio"] for c in cells] == [2.0, 6.0]
        assert cells[0].spec_hash != cells[1].spec_hash

        store = ResultStore(tmp_path / "store")
        first = CampaignRunner(store, max_workers=1).run(campaign)
        assert (first.computed, first.reused) == (2, 0)
        second = CampaignRunner(store, max_workers=1).run(campaign)
        assert (second.computed, second.reused) == (0, 2)
        assert [c.summary.mean_sojourn for c in second.cells] == [
            c.summary.mean_sojourn for c in first.cells
        ]

    def test_burst_grid_expands_and_labels(self):
        from repro.fidelity.cases import fidelity_campaign, grid_cases

        cases = grid_cases("burst")
        assert any(c.arrival_model is None for c in cases)
        mmpp = [c for c in cases if c.arrival_model is not None]
        assert mmpp and all(c.arrival_model["kind"] == "mmpp2" for c in mmpp)
        assert any("mmpp" in c.label for c in mmpp)
        campaign = fidelity_campaign("burst")
        specs = [cell.spec for cell in campaign.expand()]
        assert any(s.arrival_model is not None for s in specs)

    def test_manifest_arrival_override(self):
        from repro.fidelity.manifest import ToleranceManifest

        manifest = ToleranceManifest(
            metrics={"mean_sojourn": {"default": 0.05,
                                      "arrival": {"mmpp2": 20.0}}}
        )
        poisson = manifest.tolerance_for(
            "mean_sojourn", topology="single", discipline="shared",
            scv=1.0, rho=0.7,
        )
        bursty = manifest.tolerance_for(
            "mean_sojourn", topology="single", discipline="shared",
            scv=1.0, rho=0.7, arrival="mmpp2",
        )
        assert poisson == pytest.approx(0.05)
        assert bursty == pytest.approx(20.0)

    def test_generate_manifest_routes_burst_drift_to_arrival(self):
        from repro.fidelity.audit import FidelityRow, MetricComparison
        from repro.fidelity.analytic import AnalyticPrediction
        from repro.fidelity.manifest import generate_manifest

        def row(arrival, error, rho=0.7):
            return FidelityRow(
                label=f"cell-{arrival}", topology="single", rho=rho,
                servers=4, scv=1.0, discipline="shared", replications=4,
                prediction=AnalyticPrediction(
                    mean_sojourn=1.0, waiting_time=0.5, p95_sojourn=2.0,
                    mean_sojourn_mmk=1.0, service_time=0.5, utilisation=0.7,
                ),
                metrics={"mean_sojourn": MetricComparison(
                    model=1.0, simulated=1.0 + error, ci_half_width=0.01,
                    rel_error=error, ci_rel=0.01, within_noise=False,
                )},
                arrival=arrival,
            )

        manifest = generate_manifest(
            [row("poisson", 0.03), row("mmpp2", 5.0, rho=0.9)]
        )
        entry = manifest.metrics["mean_sojourn"]
        # The huge MMPP drift must land in the arrival override, never
        # in the Poisson cells' default or topology envelope.
        assert entry["default"] < 0.1
        assert entry["arrival"]["mmpp2"] >= 5.0
        assert "topology" not in entry or "single" not in entry.get(
            "topology", {}
        )

    def test_fidelity_audit_tags_arrival(self, tmp_path):
        from repro.fidelity.audit import run_audit
        from repro.fidelity.cases import build_case, fidelity_campaign

        cases = [
            build_case("single", 0.5, 1, 1.0, "shared",
                       {"kind": "mmpp2", "burst_ratio": 4.0,
                        "mean_burst": 1.0, "mean_gap": 3.0},
                       replications=2, target_tuples=200),
        ]
        campaign = fidelity_campaign("burst", cases=cases)
        audit = run_audit("burst", campaign=campaign, max_workers=1)
        assert audit.rows[0].arrival == "mmpp2"
        assert audit.rows[0].to_dict()["arrival"] == "mmpp2"
