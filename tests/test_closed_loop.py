"""Closed-loop clients, backpressure and the slo_feedback policy.

Four contracts, mirroring the platform-layer suite's structure:

- **Invariants hold under fuzzing** — hypothesis drives client
  populations, think times and caps through the runtime and checks the
  conservation identities the paper's open-loop model never needed:
  no client exceeds its outstanding cap, every issued request is
  admitted or rejected, and blocked time only accrues when a bounded
  queue actually fills.
- **Determinism is pinned** — the golden fixture freezes the full
  completion stream and every new counter for one backpressure run and
  one drop-path run, on the heap AND the calendar scheduler.
  Regenerate (only on an intended semantic change)::

      PYTHONPATH=src python tests/test_closed_loop.py --regen

- **The default path did not move** — with ``backpressure`` left off,
  a bounded-queue run drops exactly as before (the drop-path golden),
  and open-loop specs keep their content addresses (no new keys).
- **The bake-off is executable** — closed-loop cells flow through
  campaigns (resume included), both fast paths decline them with a
  reason, and the ``slo_feedback`` policy holds its p95 target where
  the passive baseline diverges.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns.hybrid import AnalyticCellEvaluator
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.exceptions import ConfigurationError, SimulationError
from repro.scenarios.registry import available_policies, create_policy
from repro.scenarios.runner import run_replication
from repro.scenarios.spec import ScenarioSpec
from repro.scheduler.allocation import Allocation
from repro.sim.array_runtime import array_capable
from repro.sim.engine import Simulator
from repro.sim.runtime import RuntimeOptions, TopologyRuntime
from repro.topology.builder import TopologyBuilder
from repro.workloads import (
    available_closed_loop_sources,
    create_closed_loop_source,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _chain_topology():
    return (
        TopologyBuilder("cl_chain")
        .add_spout("src", rate=12.0)
        .add_operator("a", mu=30.0)
        .add_operator("b", mu=24.0)
        .connect("src", "a")
        .connect("a", "b", gain=1.5)
        .build()
    )


def _completions_digest(runtime: TopologyRuntime) -> str:
    digest = hashlib.sha256()
    for t, s in runtime.completions:
        digest.update(f"{t!r}:{s!r};".encode())
    return digest.hexdigest()


def _run(options: RuntimeOptions, *, duration=60.0, scheduler="auto"):
    topology = _chain_topology()
    allocation = Allocation(["a", "b"], [2, 2])
    sim = Simulator(scheduler=scheduler)
    runtime = TopologyRuntime(sim, topology, allocation, options)
    runtime.start()
    sim.run_until(duration)
    runtime.check_conservation()
    return runtime


# ----------------------------------------------------------------------
# source registry
# ----------------------------------------------------------------------
class TestSourceRegistry:
    def test_registry_lists_closed_loop(self):
        assert "closed_loop" in available_closed_loop_sources()

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown parameters"):
            create_closed_loop_source(
                {"kind": "closed_loop", "clients": 5, "think_time": 1.0,
                 "burst_ratio": 3.0}
            )

    def test_to_dict_omits_unset_admission(self):
        source = create_closed_loop_source(
            {"kind": "closed_loop", "clients": 5, "think_time": 1.0}
        )
        assert "admission_latency" not in source.to_dict()
        gated = create_closed_loop_source(
            {"kind": "closed_loop", "clients": 5, "think_time": 1.0,
             "admission_latency": 2.0}
        )
        assert gated.to_dict()["admission_latency"] == 2.0


# ----------------------------------------------------------------------
# hypothesis: the closed-loop invariants
# ----------------------------------------------------------------------
class TestInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        clients=st.integers(min_value=1, max_value=12),
        cap=st.integers(min_value=1, max_value=3),
        think=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_outstanding_never_exceeds_cap(self, clients, cap, think, seed):
        source = create_closed_loop_source(
            {"kind": "closed_loop", "clients": clients, "think_time": think,
             "max_outstanding": cap}
        )
        options = RuntimeOptions(seed=seed, closed_loop=source)
        topology = _chain_topology()
        sim = Simulator()
        runtime = TopologyRuntime(
            sim, topology, Allocation(["a", "b"], [1, 1]), options
        )
        runtime.start()
        for stop in range(5, 41, 5):
            sim.run_until(float(stop))
            assert all(c <= cap for c in runtime.client_outstanding)
        runtime.check_conservation()

    @settings(max_examples=15, deadline=None)
    @given(
        clients=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31),
        admission=st.one_of(st.none(), st.floats(min_value=0.01, max_value=0.3)),
    )
    def test_issued_equals_completed_in_flight_rejected_dropped(
        self, clients, seed, admission
    ):
        params = {"kind": "closed_loop", "clients": clients,
                  "think_time": 0.2, "max_outstanding": 2}
        if admission is not None:
            params["admission_latency"] = admission
        options = RuntimeOptions(
            seed=seed,
            queue_limit=4,
            closed_loop=create_closed_loop_source(params),
        )
        runtime = _run(options, duration=40.0)
        tracker = runtime.tracker
        admitted = runtime.issued_requests - runtime.admission_rejected
        assert admitted == (
            tracker.completed + tracker.in_flight + tracker.dropped
        )

    @settings(max_examples=10, deadline=None)
    @given(
        clients=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_blocked_time_nonnegative_and_zero_without_full_queues(
        self, clients, seed
    ):
        source = create_closed_loop_source(
            {"kind": "closed_loop", "clients": clients, "think_time": 0.5}
        )
        # Unbounded queues: nothing can ever fill, so nothing blocks.
        open_run = _run(
            RuntimeOptions(seed=seed, closed_loop=source), duration=30.0
        )
        assert open_run.blocked_time == 0.0
        # Tight bound + backpressure: blocking may occur, never negative.
        bounded = _run(
            RuntimeOptions(
                seed=seed, queue_limit=1, backpressure=True,
                closed_loop=source,
            ),
            duration=30.0,
        )
        assert bounded.blocked_time >= 0.0


# ----------------------------------------------------------------------
# option validation
# ----------------------------------------------------------------------
class TestOptionValidation:
    def test_backpressure_requires_queue_limit(self):
        with pytest.raises(SimulationError, match="queue_limit"):
            RuntimeOptions(seed=1, backpressure=True)

    def test_closed_loop_excludes_arrival_model(self):
        from repro.workloads import create_arrival_model

        source = create_closed_loop_source(
            {"kind": "closed_loop", "clients": 2, "think_time": 1.0}
        )
        with pytest.raises(SimulationError, match="mutually exclusive"):
            RuntimeOptions(
                seed=1,
                closed_loop=source,
                arrival_model=create_arrival_model({"kind": "poisson"}),
            )

    def test_spec_level_exclusion(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            ScenarioSpec.from_dict(
                {
                    "name": "bad",
                    "workload": "synthetic",
                    "workload_params": {},
                    "policy": "none",
                    "initial_allocation": "10:10:10",
                    "duration": 10.0,
                    "seed": 1,
                    "arrival_model": {"kind": "poisson"},
                    "closed_loop": {"kind": "closed_loop", "clients": 2,
                                    "think_time": 1.0},
                }
            )

    def test_recent_p95_rejects_bad_window(self):
        runtime = _run(
            RuntimeOptions(seed=3), duration=5.0
        )
        with pytest.raises(SimulationError, match="window"):
            runtime.recent_p95(0.0)


# ----------------------------------------------------------------------
# golden determinism: heap == calendar == fixture
# ----------------------------------------------------------------------
def _golden_case(variant: str, scheduler: str) -> dict:
    source = create_closed_loop_source(
        {
            "kind": "closed_loop",
            "clients": 25,
            "think_time": 0.4,
            "max_outstanding": 2,
            "admission_latency": 2.0,
            "admission_alpha": 0.3,
        }
    )
    options = RuntimeOptions(
        seed=29,
        queue_limit=8,
        backpressure=(variant == "backpressure"),
        closed_loop=source,
    )
    topology = _chain_topology()
    sim = Simulator(scheduler=scheduler)
    runtime = TopologyRuntime(
        sim, topology, Allocation(["a", "b"], [2, 2]), options
    )
    runtime.start()
    sim.run_until(150.0)
    runtime.check_conservation()
    stats = runtime.stats(warmup=20.0)
    return {
        "completions_sha256": _completions_digest(runtime),
        "num_completions": len(runtime.completions),
        "issued_requests": runtime.issued_requests,
        "admission_rejected": runtime.admission_rejected,
        "blocked_time": repr(runtime.blocked_time),
        "dropped_trees": runtime.tracker.dropped,
        "mean_sojourn": repr(stats.mean_sojourn),
        "p95_sojourn": repr(stats.p95_sojourn),
        "processed_events": runtime.simulator.processed_events,
    }


class TestGoldenDeterminism:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    @pytest.mark.parametrize("variant", ["backpressure", "drop"])
    def test_matches_fixture(self, variant, scheduler):
        path = GOLDEN_DIR / "closed_loop.json"
        if not path.exists():
            pytest.fail(
                f"golden fixture {path} missing; run"
                " `PYTHONPATH=src python tests/test_closed_loop.py --regen`"
            )
        fixture = json.loads(path.read_text())
        assert _golden_case(variant, scheduler) == fixture[variant]

    def test_backpressure_never_drops(self):
        path = GOLDEN_DIR / "closed_loop.json"
        fixture = json.loads(path.read_text())
        assert fixture["backpressure"]["dropped_trees"] == 0
        assert float(fixture["backpressure"]["blocked_time"]) > 0.0
        # The drop path sheds load instead of blocking.
        assert fixture["drop"]["dropped_trees"] > 0
        assert float(fixture["drop"]["blocked_time"]) == 0.0


# ----------------------------------------------------------------------
# the default path did not move
# ----------------------------------------------------------------------
class TestDefaultPathUnchanged:
    def test_open_loop_spec_has_no_new_keys(self):
        spec = ScenarioSpec(
            name="plain",
            workload="synthetic",
            workload_params={},
            policy="none",
            initial_allocation="10:10:10",
            duration=30.0,
            seed=5,
        )
        payload = spec.to_dict()
        for key in ("queue_limit", "backpressure", "closed_loop"):
            assert key not in payload

    def test_drop_digest_independent_of_backpressure_field(self):
        """``backpressure=False`` is the PR2 drop path, bit for bit."""
        digests = []
        for options in (
            RuntimeOptions(seed=13, queue_limit=3),
            RuntimeOptions(seed=13, queue_limit=3, backpressure=False),
        ):
            runtime = _run(options, duration=80.0)
            digests.append(_completions_digest(runtime))
        assert digests[0] == digests[1]


# ----------------------------------------------------------------------
# fast paths decline closed-loop cells
# ----------------------------------------------------------------------
class TestFastPathGating:
    def test_array_runtime_declines(self):
        source = create_closed_loop_source(
            {"kind": "closed_loop", "clients": 4, "think_time": 1.0}
        )
        reason = array_capable(
            _chain_topology(),
            RuntimeOptions(
                seed=1, queue_discipline="shared", closed_loop=source
            ),
        )
        assert reason is not None and "closed-loop" in reason

    def _manifest(self):
        from repro.campaigns.hybrid import GATED_METRICS
        from repro.fidelity.manifest import ToleranceManifest

        return ToleranceManifest(
            metrics={metric: {"default": 0.04} for metric in GATED_METRICS}
        )

    def _fidelity_cell(self):
        from repro.fidelity.cases import build_case, fidelity_campaign

        case = build_case(
            "single", 0.7, 4, 1.0, "shared", None,
            replications=2, target_tuples=300,
        )
        return fidelity_campaign("gate-test", cases=[case]).expand()[0].spec

    def test_hybrid_evaluator_declines(self):
        import dataclasses

        evaluator = AnalyticCellEvaluator(self._manifest())
        baseline = self._fidelity_cell()
        assert evaluator.decide(baseline).analytic_capable

        closed = dataclasses.replace(
            baseline,
            closed_loop={"kind": "closed_loop", "clients": 4,
                         "think_time": 1.0},
        )
        decision = evaluator.decide(closed)
        assert not decision.analytic_capable
        assert "closed-loop" in decision.reason

        bounded = dataclasses.replace(
            baseline, queue_limit=6, backpressure=True
        )
        decision = evaluator.decide(bounded)
        assert not decision.analytic_capable
        assert "backpressure" in decision.reason


# ----------------------------------------------------------------------
# campaigns: closed-loop cells store, resume and re-aggregate
# ----------------------------------------------------------------------
def _closed_loop_campaign(name="cl-camp") -> dict:
    return {
        "name": name,
        "base": {
            "workload": "synthetic",
            "workload_params": {
                "total_cpu": 0.06,
                "arrival_rate": 20.0,
                "executors_per_bolt": 2,
                "hop_latency": 0.0,
            },
            "policy": "none",
            "initial_allocation": "2:2:2",
            "duration": 30.0,
            "warmup": 5.0,
            "replications": 2,
            "seed": 7,
            "queue_limit": 16,
            "backpressure": True,
            "closed_loop": {
                "kind": "closed_loop",
                "clients": 20,
                "think_time": 0.5,
                "max_outstanding": 2,
            },
        },
        "axes": [
            {
                "name": "clients",
                "field": "closed_loop.clients",
                "values": [10, 20],
            }
        ],
    }


class TestCampaignResume:
    def test_second_run_computes_nothing(self, tmp_path):
        spec = CampaignSpec.from_dict(_closed_loop_campaign())
        store = ResultStore(tmp_path / "store")
        runner = CampaignRunner(store, max_workers=1)
        first = runner.run(spec)
        assert first.computed == 4 and first.reused == 0
        second = runner.run(spec)
        assert second.computed == 0 and second.reused == 4
        assert len(second.cells) == 2

    def test_sharded_runner_over_closed_loop_cells(self, tmp_path):
        from repro.campaigns.segstore import SegmentedResultStore
        from repro.campaigns.shard import ShardedCampaignRunner

        spec = CampaignSpec.from_dict(_closed_loop_campaign("cl-shard"))
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        runner = ShardedCampaignRunner(store, shards=2)
        first = runner.run(spec)
        assert first.computed == 4 and first.reused == 0
        second = runner.run(spec)
        assert second.computed == 0 and second.reused == 4

    def test_http_service_runs_closed_loop_campaign(self, tmp_path):
        from repro.service import CampaignService, ServiceClient, ServiceConfig

        service = CampaignService(
            ServiceConfig(
                store=tmp_path / "store",
                port=0,
                job_workers=1,
                campaign_workers=1,
                poll_interval=0.02,
            )
        )
        service.start()
        try:
            client = ServiceClient(service.url)
            job = client.submit(campaign=_closed_loop_campaign("cl-http"))
            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "done"
            assert final["result"]["computed"] == 4
            aggregates = client.aggregates(job["id"])
            assert len(aggregates["cells"]) == 2
        finally:
            service.shutdown()

    def test_replication_reports_closed_loop_counters(self):
        base = _closed_loop_campaign()["base"]
        result = run_replication(
            ScenarioSpec.from_dict(dict(base, name="cl-rep")), 0
        )
        assert result.issued_requests is not None
        assert result.issued_requests >= result.external_tuples
        assert result.admission_rejected == 0
        assert result.blocked_time is not None and result.blocked_time >= 0.0
        # Round-trips through the store's JSON shape.
        from repro.scenarios.runner import ReplicationResult

        clone = ReplicationResult.from_dict(result.to_dict())
        assert clone.issued_requests == result.issued_requests
        assert clone.blocked_time == result.blocked_time


# ----------------------------------------------------------------------
# slo_feedback: holds the target where the passive baseline diverges
# ----------------------------------------------------------------------
class TestSloFeedback:
    def test_registered(self):
        assert "slo_feedback" in available_policies()

    def test_requires_target_and_kmax(self):
        topology = _chain_topology()
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError, match="p95_target"):
            create_policy("slo_feedback", topology, {"kmax": 10})
        with pytest.raises(SchedulingError, match="kmax"):
            create_policy("slo_feedback", topology, {"p95_target": 0.5})

    def test_holds_p95_under_overload(self):
        base = {
            "workload": "synthetic",
            "workload_params": {
                "total_cpu": 0.3,
                "arrival_rate": 22.0,
                "executors_per_bolt": 4,
                "hop_latency": 0.0,
            },
            "initial_allocation": "2:2:2",
            "duration": 240.0,
            "warmup": 120.0,
            "min_action_gap": 20.0,
            "seed": 11,
        }
        feedback = run_replication(
            ScenarioSpec.from_dict(
                dict(
                    base,
                    name="slo-active",
                    policy="slo_feedback",
                    # step=3 converges in three rebalances (2:2:2 ->
                    # 5:5:5); the scale-in guard then pins the loop
                    # there instead of oscillating.
                    policy_params={"p95_target": 0.8, "kmax": 24,
                                   "step": 3},
                )
            ),
            0,
        )
        passive = run_replication(
            ScenarioSpec.from_dict(dict(base, name="slo-passive",
                                        policy="none")),
            0,
        )
        # Both start at 2:2:2, under water at this load.  The passive
        # run's queues only ever grow; the feedback loop scales the
        # bottleneck out and pulls the post-warmup tail back inside
        # (a small multiple of) the SLO target.
        assert feedback.rebalances > 0
        assert passive.p95_sojourn > 2.0 * feedback.p95_sojourn
        assert feedback.p95_sojourn < 2.0 * 0.8


# ----------------------------------------------------------------------
# fixture regeneration
# ----------------------------------------------------------------------
def _regen() -> None:
    path = GOLDEN_DIR / "closed_loop.json"
    payload = {
        variant: _golden_case(variant, "heap")
        for variant in ("backpressure", "drop")
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit(pytest.main([__file__, "-v"]))
