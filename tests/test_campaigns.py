"""Tests for the campaign layer: grid expansion, store, aggregation,
resumable execution."""

import json
import statistics

import pytest

from repro.campaigns.aggregate import CellAggregate, aggregate_from_store
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import (
    CampaignAxis,
    CampaignSpec,
    apply_patch,
    scenario_hash,
)
from repro.campaigns.store import ResultStore
from repro.exceptions import ConfigurationError
from repro.scenarios.runner import (
    AppliedAction,
    ReplicationResult,
    ScenarioRunner,
    replication_seed,
)
from repro.scenarios.spec import ScenarioSpec


BASE = {
    "workload": "synthetic",
    "workload_params": {
        "total_cpu": 0.03,
        "arrival_rate": 20.0,
        "hop_latency": 0.004,
    },
    "policy": "none",
    "initial_allocation": "10:10:10",
    "duration": 40.0,
    "warmup": 5.0,
    "replications": 1,
    "seed": 17,
}


def small_campaign(**overrides) -> CampaignSpec:
    raw = {
        "name": "camp",
        "base": dict(BASE),
        "axes": [
            {
                "name": "alloc",
                "field": "initial_allocation",
                "values": ["8:8:8", "10:10:10"],
            },
            {
                "name": "rate",
                "field": "workload_params.arrival_rate",
                "values": [15.0, 20.0],
            },
        ],
    }
    raw.update(overrides)
    return CampaignSpec.from_dict(raw)


def make_result(index=0, seed=17, mean=1.0) -> ReplicationResult:
    return ReplicationResult(
        index=index,
        seed=seed,
        duration=10.0,
        external_tuples=100,
        completed_trees=99,
        dropped_tuples=1,
        dropped_trees=0,
        rebalances=2,
        mean_sojourn=mean,
        std_sojourn=0.1,
        p95_sojourn=2.0 * mean,
        final_allocation="1:1",
        final_machines=3,
        actions=(AppliedAction(5.0, "rebalance", "1:1", None),),
        timeline=((0.0, 0.5, 3), (10.0, None, 0)),
        recommendation="1:1",
    )


class TestExpansion:
    def test_nested_loop_order(self):
        cells = small_campaign().expand()
        assert [c.label for c in cells] == [
            "8:8:8-15.0",
            "8:8:8-20.0",
            "10:10:10-15.0",
            "10:10:10-20.0",
        ]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_expansion_is_deterministic(self):
        campaign = small_campaign()
        first = [c.spec.to_dict() for c in campaign.expand()]
        second = [c.spec.to_dict() for c in campaign.expand()]
        assert first == second
        rebuilt = CampaignSpec.from_json(campaign.to_json())
        assert [c.spec.to_dict() for c in rebuilt.expand()] == first

    def test_cell_names_and_coords(self):
        cell = small_campaign().expand()[1]
        assert cell.spec.name == "camp-8:8:8-20.0"
        assert cell.coordinates == {"alloc": "8:8:8", "rate": "20.0"}

    def test_dotted_patch_reaches_nested_field(self):
        cells = small_campaign().expand()
        assert cells[0].spec.workload_params["arrival_rate"] == 15.0
        # the untouched nested keys survive the patch
        assert cells[0].spec.workload_params["total_cpu"] == 0.03

    def test_patches_do_not_leak_across_cells(self):
        cells = small_campaign().expand()
        assert cells[0].spec.workload_params["arrival_rate"] == 15.0
        assert cells[1].spec.workload_params["arrival_rate"] == 20.0

    def test_axis_free_campaign_is_one_cell(self):
        campaign = CampaignSpec.from_dict({"name": "solo", "base": dict(BASE)})
        cells = campaign.expand()
        assert len(cells) == 1
        assert cells[0].spec.name == "solo"
        assert cells[0].label == "solo"

    def test_multi_field_points(self):
        campaign = CampaignSpec.from_dict(
            {
                "name": "pairs",
                "base": dict(BASE),
                "axes": [
                    {
                        "name": "config",
                        "values": [
                            {
                                "label": "a",
                                "set": {
                                    "initial_allocation": "8:8:8",
                                    "seed": 5,
                                },
                            },
                            {
                                "label": "b",
                                "set": {
                                    "initial_allocation": "9:9:9",
                                    "seed": 6,
                                },
                            },
                        ],
                    }
                ],
            }
        )
        cells = campaign.expand()
        assert [(c.spec.initial_allocation, c.spec.seed) for c in cells] == [
            ("8:8:8", 5),
            ("9:9:9", 6),
        ]

    def test_range_axis(self):
        campaign = small_campaign(
            axes=[{"name": "seed", "field": "seed", "range": [7, 13, 2]}]
        )
        assert [c.spec.seed for c in campaign.expand()] == [7, 9, 11]

    def test_total_replications(self):
        campaign = small_campaign()
        assert campaign.total_replications() == 4
        base = dict(BASE, replications=3)
        assert small_campaign(base=base).total_replications() == 12


class TestSpecValidation:
    def test_unknown_campaign_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict(
                {"name": "x", "base": dict(BASE), "bogus": 1}
            )

    def test_base_may_not_set_name(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict(
                {"name": "x", "base": dict(BASE, name="fixed")}
            )

    def test_scalar_values_need_axis_field(self):
        with pytest.raises(ConfigurationError):
            CampaignAxis.from_dict({"name": "a", "values": [1, 2]})

    def test_duplicate_axis_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignAxis.from_dict(
                {"name": "a", "field": "seed", "values": [1, 1]}
            )

    def test_bad_cell_reports_campaign_and_label(self):
        campaign = small_campaign(
            axes=[{"name": "duration", "field": "duration", "values": [-5.0]}]
        )
        with pytest.raises(ConfigurationError, match="camp.*-5.0"):
            campaign.expand()

    def test_range_and_values_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            CampaignAxis.from_dict(
                {"name": "a", "field": "seed", "values": [1], "range": [1, 3]}
            )

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignAxis.from_dict(
                {"name": "a", "field": "seed", "range": [3, 3]}
            )

    def test_apply_patch_copies_nested_mappings(self):
        shared = {"workload_params": {"x": 1}}
        raw = dict(shared)
        apply_patch(raw, "workload_params.x", 2)
        assert shared["workload_params"]["x"] == 1
        assert raw["workload_params"]["x"] == 2


class TestScenarioHash:
    def test_name_and_replications_excluded(self):
        a = ScenarioSpec(**BASE, name="one")
        b_fields = dict(BASE, replications=5)
        b = ScenarioSpec(**b_fields, name="two")
        assert scenario_hash(a) == scenario_hash(b)

    def test_simulation_inputs_change_the_hash(self):
        a = ScenarioSpec(**BASE, name="x")
        for field, value in [
            ("seed", 18),
            ("duration", 41.0),
            ("initial_allocation", "9:9:9"),
            ("queue_discipline", "shared"),
        ]:
            other = ScenarioSpec(**{**BASE, field: value}, name="x")
            assert scenario_hash(a) != scenario_hash(other), field

    def test_int_and_float_spellings_hash_identically(self):
        """"duration": 60 and "duration": 60.0 are the same simulation —
        a rewritten spec must keep addressing its stored results."""
        as_float = ScenarioSpec(**{**BASE, "duration": 40.0}, name="x")
        as_int = ScenarioSpec(**{**BASE, "duration": 40}, name="x")
        assert scenario_hash(as_float) == scenario_hash(as_int)
        rate_float = ScenarioSpec(
            **{
                **BASE,
                "workload_params": {**BASE["workload_params"], "arrival_rate": 20.0},
            },
            name="x",
        )
        rate_int = ScenarioSpec(
            **{
                **BASE,
                "workload_params": {**BASE["workload_params"], "arrival_rate": 20},
            },
            name="x",
        )
        assert scenario_hash(rate_float) == scenario_hash(rate_int)


class TestResultStore:
    def spec(self):
        return ScenarioSpec(**BASE, name="store-spec")

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        digest = scenario_hash(spec)
        original = make_result()
        store.put(spec, digest, 17, original, campaign="c", cell="l")
        loaded = store.load(digest, 17)
        assert loaded == original
        assert store.has(digest, 17)

    def test_missing_record(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("ab" * 32, 17) is None
        assert not store.has("ab" * 32, 17)

    def test_torn_record_treated_as_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        digest = scenario_hash(spec)
        store.put(spec, digest, 17, make_result())
        path = store.record_path(digest, 17)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load(digest, 17) is None

    def test_shape_corrupt_record_treated_as_missing(self, tmp_path):
        """Valid JSON with a gutted result payload must read as absent,
        not crash a resumed campaign."""
        store = ResultStore(tmp_path)
        spec = self.spec()
        digest = scenario_hash(spec)
        store.put(spec, digest, 17, make_result())
        path = store.record_path(digest, 17)
        record = json.loads(path.read_text())
        record["result"] = {}
        path.write_text(json.dumps(record))
        assert store.load(digest, 17) is None

    def test_version_mismatch_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        digest = scenario_hash(spec)
        store.put(spec, digest, 17, make_result())
        path = store.record_path(digest, 17)
        record = json.loads(path.read_text())
        record["version"] = 999
        path.write_text(json.dumps(record))
        assert store.load(digest, 17) is None

    def test_iter_records_sorted_by_seed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        digest = scenario_hash(spec)
        for seed in (30, 10, 20):
            store.put(spec, digest, seed, make_result(seed=seed))
        assert [seed for seed, _ in store.iter_records(digest)] == [10, 20, 30]
        assert store.count(digest) == 3

    def test_provenance_written_once(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = self.spec()
        digest = scenario_hash(spec)
        store.put(spec, digest, 1, make_result(seed=1))
        provenance = store.record_path(digest, 1).parent / "spec.json"
        assert json.loads(provenance.read_text()) == spec.to_dict()

    def test_malformed_hash_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.record_path("../escape", 1)


class TestCampaignRunner:
    def test_no_store_matches_scenario_runner(self):
        campaign = small_campaign()
        cells = campaign.expand()
        via_campaign = CampaignRunner(max_workers=1).run(campaign)
        via_scenarios = ScenarioRunner(max_workers=1).run_many(
            [c.spec for c in cells]
        )
        assert [s.to_json() for s in via_campaign.summaries] == [
            s.to_json() for s in via_scenarios
        ]

    def test_worker_count_does_not_change_results(self):
        campaign = small_campaign()
        serial = CampaignRunner(max_workers=1).run(campaign)
        pooled = CampaignRunner(max_workers=4).run(campaign)
        assert [s.to_json() for s in serial.summaries] == [
            s.to_json() for s in pooled.summaries
        ]

    def test_second_run_reuses_everything(self, tmp_path):
        campaign = small_campaign()
        runner = CampaignRunner(ResultStore(tmp_path), max_workers=2)
        first = runner.run(campaign)
        assert (first.computed, first.reused) == (4, 0)
        second = runner.run(campaign)
        assert (second.computed, second.reused) == (0, 4)
        assert [s.to_json() for s in first.summaries] == [
            s.to_json() for s in second.summaries
        ]

    def test_resume_after_interrupt_recomputes_only_the_hole(self, tmp_path):
        campaign = small_campaign()
        store = ResultStore(tmp_path)
        runner = CampaignRunner(store, max_workers=2)
        first = runner.run(campaign)
        # Simulate a kill: one replication's record vanishes (an
        # in-flight result never reached the store).
        victim = campaign.expand()[2]
        store.record_path(
            victim.spec_hash, replication_seed(victim.spec.seed, 0)
        ).unlink()
        resumed = runner.run(campaign)
        assert (resumed.computed, resumed.reused) == (1, 3)
        assert [s.to_json() for s in resumed.summaries] == [
            s.to_json() for s in first.summaries
        ]

    def test_growing_replications_only_adds(self, tmp_path):
        store = ResultStore(tmp_path)
        campaign = small_campaign()
        CampaignRunner(store, max_workers=2).run(campaign)
        grown = small_campaign(base=dict(BASE, replications=3))
        result = CampaignRunner(store, max_workers=2).run(grown)
        # 4 cells x 3 replications; the original 4 are reused.
        assert (result.computed, result.reused) == (8, 4)

    def test_identical_cells_share_one_computation(self, tmp_path):
        campaign = CampaignSpec.from_dict(
            {
                "name": "dup",
                "base": dict(BASE),
                "axes": [
                    {
                        "name": "who",
                        "values": [
                            {"label": "a", "set": {"seed": 17}},
                            {"label": "b", "set": {"seed": 17}},
                        ],
                    }
                ],
            }
        )
        store = ResultStore(tmp_path)
        result = CampaignRunner(store, max_workers=1).run(campaign)
        cells = campaign.expand()
        assert cells[0].spec_hash == cells[1].spec_hash
        # one record on disk, one job at campaign level; both cells
        # still report their replication as computed-this-run
        assert store.count(cells[0].spec_hash) == 1
        assert (result.computed, result.reused) == (1, 0)
        assert [(c.computed, c.reused) for c in result.cells] == [(1, 0), (1, 0)]
        first, second = result.summaries
        assert (
            first.replications[0].mean_sojourn
            == second.replications[0].mean_sojourn
        )

    def test_plan_accounting(self, tmp_path):
        campaign = small_campaign()
        store = ResultStore(tmp_path)
        runner = CampaignRunner(store, max_workers=2)
        plan = runner.plan(campaign)
        assert (plan.total, plan.cached, plan.to_compute) == (4, 0, 4)
        runner.run(campaign)
        plan = runner.plan(campaign)
        assert (plan.total, plan.cached, plan.to_compute) == (4, 4, 0)

    def test_plan_matches_run_for_deduplicated_cells(self, tmp_path):
        """--dry-run must predict run()'s computed count, identical
        cells included."""
        campaign = CampaignSpec.from_dict(
            {
                "name": "dup-plan",
                "base": dict(BASE),
                "axes": [
                    {
                        "name": "who",
                        "values": [
                            {"label": "a", "set": {"seed": 17}},
                            {"label": "b", "set": {"seed": 17}},
                        ],
                    }
                ],
            }
        )
        runner = CampaignRunner(ResultStore(tmp_path), max_workers=1)
        plan = runner.plan(campaign)
        result = runner.run(campaign)
        assert plan.to_compute == result.computed == 1

    def test_overhead_cells_counted_and_never_cached(self, tmp_path):
        from repro.experiments import table2

        campaign = table2.campaign(kmax_values=[12], repetitions=5)
        store = ResultStore(tmp_path)
        runner = CampaignRunner(store, max_workers=1)
        plan = runner.plan(campaign)
        assert (plan.total, plan.cached, plan.to_compute) == (1, 0, 1)
        result = runner.run(campaign)
        assert (result.computed, result.reused) == (1, 0)
        # wall-clock timings are re-taken every run, never stored
        assert runner.plan(campaign).to_compute == 1
        aggregator = aggregate_from_store(campaign, store)
        assert aggregator.cells == {}
        assert aggregator.missing == {}
        assert result.cells[0].summary.extra["overhead_rows"]

    def test_result_to_dict_shape(self):
        result = CampaignRunner(max_workers=1).run(small_campaign())
        payload = result.to_dict()
        assert payload["campaign"] == "camp"
        assert len(payload["cells"]) == 4
        assert {"label", "coordinates", "spec_hash", "computed", "reused",
                "summary"} <= set(payload["cells"][0])


class TestAggregator:
    def test_fold_matches_batch_statistics(self):
        means = [0.4, 1.1, 0.9, 2.3, 1.7, 0.6, 1.2]
        aggregate = CellAggregate("cell")
        for i, mean in enumerate(means):
            aggregate.fold(make_result(index=i, seed=i, mean=mean).to_dict())
        assert aggregate.replications == len(means)
        assert aggregate.mean_sojourn == pytest.approx(
            statistics.fmean(means), rel=1e-12
        )
        assert aggregate.std_between == pytest.approx(
            statistics.stdev(means), rel=1e-12
        )
        batch_p95 = statistics.quantiles(means, n=100, method="inclusive")[94]
        assert aggregate.p95_of_means == pytest.approx(batch_p95, rel=1e-12)
        assert aggregate.mean_p95_sojourn == pytest.approx(
            statistics.fmean(2.0 * m for m in means), rel=1e-12
        )
        assert aggregate.total_completed == 99 * len(means)
        assert aggregate.total_rebalances == 2 * len(means)

    def test_ci_half_width(self):
        means = [1.0, 2.0, 3.0, 4.0]
        aggregate = CellAggregate("cell")
        for i, mean in enumerate(means):
            aggregate.fold(make_result(index=i, mean=mean).to_dict())
        expected = 1.959963984540054 * statistics.stdev(means) / 2.0
        assert aggregate.ci95_half_width == pytest.approx(expected, rel=1e-12)

    def test_empty_cell(self):
        aggregate = CellAggregate("cell")
        assert aggregate.mean_sojourn is None
        assert aggregate.std_between is None
        assert aggregate.ci95_half_width is None
        assert aggregate.p95_of_means is None

    def test_aggregate_from_store_matches_run_summaries(self, tmp_path):
        campaign = small_campaign(base=dict(BASE, replications=3))
        store = ResultStore(tmp_path)
        result = CampaignRunner(store, max_workers=2).run(campaign)
        aggregator = aggregate_from_store(campaign, store)
        for cell_result in result.cells:
            aggregate = aggregator.cells[cell_result.cell.label]
            assert aggregate.replications == 3
            assert aggregate.mean_sojourn == pytest.approx(
                cell_result.summary.mean_sojourn, rel=1e-12
            )
            assert aggregate.std_between == pytest.approx(
                cell_result.summary.std_between, rel=1e-12
            )
            assert aggregator.missing[cell_result.cell.label] == 0

    def test_aggregate_reports_missing_replications(self, tmp_path):
        campaign = small_campaign()
        store = ResultStore(tmp_path)
        CampaignRunner(store, max_workers=2).run(campaign)
        victim = campaign.expand()[0]
        store.record_path(
            victim.spec_hash, replication_seed(victim.spec.seed, 0)
        ).unlink()
        aggregator = aggregate_from_store(campaign, store)
        assert aggregator.missing[victim.label] == 1
        row = next(
            r for r in aggregator.rows() if r["label"] == victim.label
        )
        assert row["missing"] == 1
        assert row["replications"] == 0


class TestReplicationResultRoundTrip:
    def test_to_from_dict_round_trip(self):
        original = make_result()
        assert ReplicationResult.from_dict(original.to_dict()) == original

    def test_json_round_trip(self):
        original = make_result()
        rehydrated = ReplicationResult.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert rehydrated == original
