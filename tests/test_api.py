"""Tests for :mod:`repro.api` — the stable facade every front end uses.

The facade's contract has three parts worth pinning: the flexible
loaders (path / mapping / inline JSON / spec instance, with typed
not-found errors whose messages the CLI surfaces verbatim), the
layout-sniffing store opener, and the execution wrappers whose results
must match driving the engine directly.
"""

import json

import pytest

from repro import api
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.segstore import SegmentedResultStore
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.exceptions import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

BASE = {
    "workload": "synthetic",
    "workload_params": {"total_cpu": 0.03, "arrival_rate": 20.0},
    "policy": "none",
    "initial_allocation": "10:10:10",
    "duration": 40.0,
    "warmup": 5.0,
    "replications": 2,
    "seed": 17,
}


def scenario_dict(name="api-scn", **overrides):
    return {"name": name, **BASE, **overrides}


def campaign_dict(name="api-cmp"):
    return {
        "name": name,
        "base": dict(BASE),
        "axes": [
            {
                "name": "rate",
                "field": "workload_params.arrival_rate",
                "values": [20.0, 30.0],
            }
        ],
    }


class TestLoaders:
    def test_scenario_from_mapping(self):
        spec = api.load_scenario(scenario_dict())
        assert isinstance(spec, ScenarioSpec)
        assert spec.name == "api-scn"

    def test_scenario_passthrough(self):
        spec = ScenarioSpec.from_dict(scenario_dict())
        assert api.load_scenario(spec) is spec

    def test_scenario_from_path(self, tmp_path):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(scenario_dict()))
        assert api.load_scenario(path).name == "api-scn"
        assert api.load_scenario(str(path)).name == "api-scn"

    def test_scenario_from_inline_json(self):
        spec = api.load_scenario(json.dumps(scenario_dict()))
        assert spec.name == "api-scn"

    def test_scenario_not_found_message(self):
        with pytest.raises(
            api.SpecNotFoundError, match="scenario spec not found: /no/such"
        ):
            api.load_scenario("/no/such/file.json")

    def test_campaign_not_found_message(self):
        with pytest.raises(
            api.SpecNotFoundError, match="campaign spec not found"
        ):
            api.load_campaign("/no/such/campaign.json")

    def test_campaign_from_mapping(self):
        campaign = api.load_campaign(campaign_dict())
        assert isinstance(campaign, CampaignSpec)
        assert len(campaign.expand()) == 2

    def test_invalid_content_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            api.load_scenario({"name": "x", "workload": "nope"})


class TestOpenStore:
    def test_classic_layout(self, tmp_path):
        store = api.open_store(tmp_path)
        assert type(store) is ResultStore

    def test_segmented_layout_sniffed(self, tmp_path):
        (tmp_path / "segments").mkdir()
        store = api.open_store(tmp_path, segment="writer-a")
        assert isinstance(store, SegmentedResultStore)

    def test_require_missing_raises(self, tmp_path):
        missing = tmp_path / "absent"
        with pytest.raises(
            api.StoreNotFoundError, match="result store not found"
        ):
            api.open_store(missing, require=True)
        assert not missing.exists()


class TestEvaluators:
    def test_simulate_mode_builds_nothing(self):
        assert api.campaign_evaluator("simulate") is None

    def test_named_manifest_must_exist(self, tmp_path):
        with pytest.raises(
            api.ManifestNotFoundError, match="tolerance manifest not found"
        ):
            api.campaign_evaluator(
                "hybrid", manifest=tmp_path / "absent.json"
            )

    def test_registry_shapes_match(self):
        modes = api.available_evaluation_modes()
        assert set(modes) == {"simulate", "hybrid", "analytic"}
        for listing in (
            modes,
            api.available_policies(),
            api.available_arrival_models(),
        ):
            assert all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in listing.items()
            )


class TestExecution:
    def test_run_scenario_replication_override(self):
        summary = api.run_scenario(
            scenario_dict(), workers=1, replications=1
        )
        assert len(summary.replications) == 1

    def test_plan_predicts_run(self, tmp_path):
        campaign = campaign_dict()
        plan = api.plan(campaign, store=tmp_path)
        result = api.run_campaign(campaign, store=tmp_path, workers=1)
        assert plan.to_compute == result.computed == 4
        # Now everything is cached; plan and run agree again.
        assert api.plan(campaign, store=tmp_path).to_compute == 0
        rerun = api.run_campaign(campaign, store=tmp_path, workers=1)
        assert rerun.computed == 0 and rerun.reused == 4

    def test_facade_matches_direct_runner(self, tmp_path):
        """api.run_campaign == CampaignRunner on a fresh store, bit for bit."""
        campaign = api.load_campaign(campaign_dict())
        via_api = api.run_campaign(
            campaign, store=tmp_path / "a", workers=1
        )
        direct = CampaignRunner(
            ResultStore(tmp_path / "b"), max_workers=1
        ).run(campaign)
        assert json.dumps(via_api.to_dict(), sort_keys=True) == json.dumps(
            direct.to_dict(), sort_keys=True
        )

    def test_run_campaign_from_path(self, tmp_path):
        path = tmp_path / "cmp.json"
        path.write_text(json.dumps(campaign_dict()))
        result = api.run_campaign(str(path), store=tmp_path / "s", workers=1)
        assert result.computed == 4

    def test_shards_require_store(self):
        with pytest.raises(ConfigurationError, match="requires a store"):
            api.run_campaign(campaign_dict(), shards=2)

    def test_shards_validated(self, tmp_path):
        with pytest.raises(ConfigurationError, match="shards must be >= 1"):
            api.run_campaign(campaign_dict(), store=tmp_path, shards=0)

    def test_aggregate_requires_existing_store(self, tmp_path):
        with pytest.raises(
            api.StoreNotFoundError, match="result store not found"
        ):
            api.aggregate(campaign_dict(), tmp_path / "absent")

    def test_aggregate_reads_stored_results(self, tmp_path):
        campaign = campaign_dict()
        api.run_campaign(campaign, store=tmp_path, workers=1)
        aggregator = api.aggregate(campaign, tmp_path)
        rows = aggregator.rows()
        assert len(rows) == 2
        assert all(row["replications"] == 2 for row in rows)
