"""Tests for the G/G/k refined model (Allen-Cunneen extension)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.model import PerformanceModel
from repro.model.refined import RefinedPerformanceModel
from repro.queueing import erlang, mgk
from repro.scheduler import Allocation, assign_processors
from repro.scheduler.min_resources import min_processors_for_target
from repro.sim import RuntimeOptions, Simulator, TopologyRuntime
from repro.topology import TopologyBuilder
from repro.randomness.distributions import Deterministic, LogNormal


class TestAllenCunneen:
    def test_exponential_recovers_mmk(self):
        base = erlang.expected_sojourn_time(8.0, 1.0, 10)
        refined = mgk.expected_sojourn_time_gg(8.0, 1.0, 10, ca2=1.0, cs2=1.0)
        assert refined == pytest.approx(base, rel=1e-12)

    def test_deterministic_service_halves_wait(self):
        """M/D/k waiting ~ half of M/M/k (cs2 = 0)."""
        wait_mm = erlang.expected_waiting_time(8.0, 1.0, 10)
        wait_md = mgk.expected_waiting_time_gg(8.0, 1.0, 10, ca2=1.0, cs2=0.0)
        assert wait_md == pytest.approx(wait_mm / 2.0, rel=1e-12)

    def test_mg1_matches_pollaczek_khinchine(self):
        """For k=1 the approximation is the exact P-K mean."""
        lam, mu, cs2 = 3.0, 4.0, 2.5
        rho = lam / mu
        pk_wait = rho / (mu - lam) * (1.0 + cs2) / 2.0
        ac_wait = mgk.expected_waiting_time_gg(lam, mu, 1, ca2=1.0, cs2=cs2)
        assert ac_wait == pytest.approx(pk_wait, rel=1e-12)

    def test_saturation_still_infinite(self):
        assert math.isinf(
            mgk.expected_sojourn_time_gg(10.0, 1.0, 10, ca2=0.5, cs2=0.5)
        )

    def test_rejects_negative_scv(self):
        with pytest.raises(ValueError):
            mgk.expected_waiting_time_gg(1.0, 2.0, 2, cs2=-0.1)


class TestRefinedModel:
    def _topology(self, scv):
        return (
            TopologyBuilder("t")
            .add_spout("s", rate=8.0)
            .add_operator(
                "op", service_time=LogNormal(mean=1.0, scv=scv)
            )
            .connect("s", "op")
            .build()
        )

    def test_from_topology_reads_scvs(self):
        model = RefinedPerformanceModel.from_topology(self._topology(2.0))
        assert model.service_scvs == pytest.approx([2.0])

    def test_unit_scv_matches_plain_model(self, chain_topology):
        plain = PerformanceModel.from_topology(chain_topology)
        refined = RefinedPerformanceModel(plain.network)  # all SCVs 1
        for allocation in ([4, 5, 2], [5, 6, 3], [8, 9, 4]):
            assert refined.expected_sojourn(allocation) == pytest.approx(
                plain.expected_sojourn(allocation), rel=1e-12
            )

    def test_high_scv_raises_estimate(self, chain_topology):
        plain = PerformanceModel.from_topology(chain_topology)
        refined = RefinedPerformanceModel(
            plain.network, service_scvs=[3.0, 3.0, 3.0]
        )
        allocation = [4, 5, 2]
        assert refined.expected_sojourn(allocation) > plain.expected_sojourn(
            allocation
        )

    def test_low_scv_lowers_estimate(self, chain_topology):
        plain = PerformanceModel.from_topology(chain_topology)
        refined = RefinedPerformanceModel(
            plain.network, service_scvs=[0.0, 0.0, 0.0]
        )
        allocation = [4, 5, 2]
        assert refined.expected_sojourn(allocation) < plain.expected_sojourn(
            allocation
        )

    def test_scv_length_validated(self, chain_model):
        with pytest.raises(ModelError):
            RefinedPerformanceModel(chain_model.network, service_scvs=[1.0])

    def test_optimisers_accept_refined_model(self, chain_topology):
        refined = RefinedPerformanceModel.from_topology(chain_topology)
        allocation = assign_processors(refined, 16)
        assert allocation.total == 16
        minimal = min_processors_for_target(refined, 2.0)
        assert refined.expected_sojourn(list(minimal.vector)) <= 2.0

    def test_scv_shifts_optimal_placement(self):
        """A high-variance operator deserves more processors than the
        plain model would give it."""
        names = ["noisy", "steady"]
        network_args = dict(
            names=names,
            arrival_rates=[10.0, 10.0],
            service_rates=[2.0, 2.0],
            external_rate=10.0,
        )
        plain = PerformanceModel.from_measurements(**network_args)
        refined = RefinedPerformanceModel.from_measurements(
            **network_args, service_scvs=[4.0, 0.2]
        )
        kmax = 16
        plain_alloc = assign_processors(plain, kmax)
        refined_alloc = assign_processors(refined, kmax)
        # Symmetric rates: plain splits evenly; refined favours 'noisy'.
        assert plain_alloc["noisy"] == plain_alloc["steady"]
        assert refined_alloc["noisy"] > refined_alloc["steady"]


class TestRefinedAccuracy:
    @pytest.mark.parametrize(
        "service,scv",
        [(Deterministic(1.0), 0.0), (LogNormal(mean=1.0, scv=2.0), 2.0)],
    )
    def test_refined_tracks_simulation_better(self, service, scv):
        """On clearly non-exponential service times the refined estimate
        is closer to the simulated mean sojourn than plain M/M/k."""
        topology = (
            TopologyBuilder("t")
            .add_spout("s", rate=8.0)
            .add_operator("op", service_time=service)
            .connect("s", "op")
            .build()
        )
        plain = PerformanceModel.from_topology(topology)
        refined = RefinedPerformanceModel.from_topology(topology)
        allocation = [10]
        simulator = Simulator()
        runtime = TopologyRuntime(
            simulator,
            topology,
            Allocation(["op"], allocation),
            RuntimeOptions(queue_discipline="shared", seed=3),
        )
        runtime.start()
        simulator.run_until(4000.0)
        measured = runtime.stats(warmup=400.0).mean_sojourn
        plain_err = abs(plain.expected_sojourn(allocation) - measured)
        refined_err = abs(refined.expected_sojourn(allocation) - measured)
        assert refined_err < plain_err


@settings(max_examples=60, deadline=None)
@given(
    lam=st.floats(min_value=0.5, max_value=50.0),
    mu=st.floats(min_value=0.5, max_value=20.0),
    extra=st.integers(min_value=0, max_value=10),
    cs2=st.floats(min_value=0.0, max_value=5.0),
)
def test_gg_convexity_preserved(lam, mu, extra, cs2):
    """The Allen-Cunneen correction preserves the convexity Theorem 1
    needs (the factor is constant in k)."""
    k = erlang.min_servers(lam, mu) + extra
    t0 = mgk.expected_sojourn_time_gg(lam, mu, k, cs2=cs2)
    t1 = mgk.expected_sojourn_time_gg(lam, mu, k + 1, cs2=cs2)
    t2 = mgk.expected_sojourn_time_gg(lam, mu, k + 2, cs2=cs2)
    assert (t0 - t1) >= (t1 - t2) - 1e-12
