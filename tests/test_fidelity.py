"""Tests for the model-vs-simulation fidelity audit subsystem."""

import json
import math
from pathlib import Path

import pytest

from repro.apps.fidelity import FidelityWorkload, service_distribution
from repro.campaigns.store import ResultStore
from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.fidelity import (
    GRIDS,
    ToleranceManifest,
    fidelity_campaign,
    generate_manifest,
    grid_cases,
    predict,
    run_audit,
)
from repro.fidelity.analytic import AnalyticPrediction
from repro.fidelity.audit import (
    FidelityAudit,
    FidelityRow,
    MetricComparison,
    _t95,
)
from repro.fidelity.cases import build_case, case_from_spec
from repro.fidelity.report import render_audit
from repro.model.performance import PerformanceModel
from repro.queueing import erlang

MANIFEST_PATH = Path(__file__).parent / "golden" / "fidelity_tolerances.json"


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------
class TestFidelityWorkload:
    @pytest.mark.parametrize(
        "topology,n_ops",
        [("single", 1), ("linear", 3), ("fanout", 3), ("loop", 2)],
    )
    def test_shapes(self, topology, n_ops):
        workload = FidelityWorkload(topology=topology)
        assert len(workload.operator_names) == n_ops
        built = workload.build()
        assert list(built.operator_names) == workload.operator_names

    @pytest.mark.parametrize(
        "topology", ["single", "linear", "fanout", "loop"]
    )
    def test_utilisation_target_hit_exactly(self, topology):
        """The busiest operator's model utilisation equals rho."""
        workload = FidelityWorkload(topology=topology, rho=0.8, servers=4)
        model = PerformanceModel.from_topology(workload.build())
        utilisations = [
            load.arrival_rate / (4 * load.service_rate)
            for load in model.network.loads
        ]
        assert max(utilisations) == pytest.approx(0.8)

    def test_loop_visits_geometric(self):
        workload = FidelityWorkload(topology="loop", feedback=0.5)
        model = PerformanceModel.from_topology(workload.build())
        assert model.network.visit_ratios() == pytest.approx([2.0, 2.0])

    def test_allocation_spec(self):
        workload = FidelityWorkload(topology="linear", servers=6, branches=4)
        assert workload.allocation_spec() == "6:6:6:6"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FidelityWorkload(topology="mesh")
        with pytest.raises(ValueError):
            FidelityWorkload(rho=0.99)
        with pytest.raises(ValueError):
            FidelityWorkload(scv=-1.0)
        with pytest.raises(ValueError):
            FidelityWorkload(topology="loop", feedback=1.0)

    @pytest.mark.parametrize("scv", [0.0, 0.25, 0.5, 1.0, 2.0, 4.0])
    def test_service_distribution_moments(self, scv):
        dist = service_distribution(2.0, scv)
        assert dist.mean == pytest.approx(0.5)
        assert dist.scv == pytest.approx(scv)


# ----------------------------------------------------------------------
# analytic predictions
# ----------------------------------------------------------------------
class TestAnalytic:
    def test_single_matches_erlang_closed_form(self):
        workload = FidelityWorkload(topology="single", rho=0.7, servers=4)
        prediction = predict(workload)
        lam = workload.external_rate
        assert prediction.mean_sojourn == pytest.approx(
            erlang.expected_sojourn_time(lam, 1.0, 4)
        )
        assert prediction.waiting_time == pytest.approx(
            erlang.expected_waiting_time(lam, 1.0, 4)
        )
        assert prediction.service_time == pytest.approx(1.0)
        assert prediction.utilisation == pytest.approx(0.7)

    def test_chain_decomposes_into_wait_plus_service(self):
        workload = FidelityWorkload(topology="linear", rho=0.6, servers=2)
        prediction = predict(workload)
        assert prediction.mean_sojourn == pytest.approx(
            prediction.waiting_time + prediction.service_time
        )

    def test_scv_one_reduces_to_plain_model(self):
        workload = FidelityWorkload(topology="linear", rho=0.7, scv=1.0)
        prediction = predict(workload)
        assert prediction.mean_sojourn == pytest.approx(
            prediction.mean_sojourn_mmk
        )

    def test_deterministic_service_halves_waiting(self):
        """Allen-Cunneen: cs2=0 halves the M/M/k waiting term."""
        exponential = predict(FidelityWorkload(rho=0.7, servers=4, scv=1.0))
        deterministic = predict(FidelityWorkload(rho=0.7, servers=4, scv=0.0))
        assert deterministic.waiting_time == pytest.approx(
            exponential.waiting_time / 2.0
        )

    def test_p95_bound_above_mean(self):
        prediction = predict(FidelityWorkload(rho=0.7, servers=4))
        assert prediction.p95_sojourn > prediction.mean_sojourn_mmk


# ----------------------------------------------------------------------
# grids and campaign plumbing
# ----------------------------------------------------------------------
class TestGrids:
    def test_known_grids(self):
        assert set(GRIDS) == {"smoke", "small", "full", "burst"}

    @pytest.mark.parametrize("grid", ["smoke", "small"])
    def test_cases_expand_to_valid_campaign(self, grid):
        cases = grid_cases(grid)
        assert len({case.label for case in cases}) == len(cases)
        campaign = fidelity_campaign(grid)
        cells = campaign.expand()
        assert len(cells) == len(cases)
        for cell, case in zip(cells, cases):
            assert cell.spec.queue_discipline == case.discipline
            assert cell.spec.duration == case.duration
            rebuilt = case_from_spec(cell.spec)
            assert rebuilt == case.workload

    def test_campaign_round_trips_through_json(self):
        campaign = fidelity_campaign("smoke")
        rebuilt = type(campaign).from_json(campaign.to_json())
        assert [c.spec.to_dict() for c in rebuilt.expand()] == [
            c.spec.to_dict() for c in campaign.expand()
        ]

    def test_unknown_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_cases("galactic")

    def test_high_rho_cells_get_longer_runs(self):
        low = build_case(
            "single", 0.3, 4, 1.0, "shared", replications=2, target_tuples=1000
        )
        high = build_case(
            "single", 0.95, 4, 1.0, "shared", replications=2, target_tuples=1000
        )
        # Same nominal target, but the near-saturated cell simulates more
        # arrivals (scaled span) after a longer warmup.
        assert high.warmup > low.warmup
        arrivals_low = (low.duration - low.warmup) * 0.3 * 4
        arrivals_high = (high.duration - high.warmup) * 0.95 * 4
        assert arrivals_high > 2.0 * arrivals_low


# ----------------------------------------------------------------------
# tolerance manifest
# ----------------------------------------------------------------------
class TestManifest:
    def _manifest(self):
        return ToleranceManifest(
            metrics={
                "mean_sojourn": {
                    "default": 0.05,
                    "topology": {"fanout": 0.5},
                    "discipline": {"jsq": 0.1},
                    "scv": {"4": 0.2},
                    "rho": {"0.95": 0.3},
                }
            }
        )

    def test_default_applies(self):
        manifest = self._manifest()
        assert manifest.tolerance_for(
            "mean_sojourn",
            topology="single",
            discipline="shared",
            scv=1.0,
            rho=0.7,
        ) == pytest.approx(0.05)

    def test_overrides_take_max(self):
        manifest = self._manifest()
        assert manifest.tolerance_for(
            "mean_sojourn",
            topology="fanout",
            discipline="jsq",
            scv=4.0,
            rho=0.95,
        ) == pytest.approx(0.5)

    def test_unlisted_metric_unenforced(self):
        manifest = self._manifest()
        assert math.isinf(
            manifest.tolerance_for(
                "p99", topology="single", discipline="shared", scv=1.0, rho=0.5
            )
        )

    def test_round_trip(self):
        manifest = self._manifest()
        assert (
            ToleranceManifest.from_dict(manifest.to_dict()).to_dict()
            == manifest.to_dict()
        )

    def test_rejects_missing_default(self):
        with pytest.raises(ConfigurationError):
            ToleranceManifest(metrics={"mean_sojourn": {"topology": {}}})

    def test_rejects_unknown_group(self):
        with pytest.raises(ConfigurationError):
            ToleranceManifest(
                metrics={"mean_sojourn": {"default": 0.1, "phase": {}}}
            )

    def test_committed_manifest_parses(self):
        manifest = ToleranceManifest.load(MANIFEST_PATH)
        assert "mean_sojourn" in manifest.metrics
        assert "waiting_time" in manifest.metrics
        assert "p95_sojourn" in manifest.metrics


def make_row(
    *,
    label="cell",
    topology="single",
    rho=0.7,
    discipline="shared",
    scv=1.0,
    metrics,
):
    prediction = AnalyticPrediction(
        mean_sojourn=1.0,
        mean_sojourn_mmk=1.0,
        waiting_time=0.5,
        service_time=0.5,
        p95_sojourn=2.0,
        utilisation=rho,
    )
    return FidelityRow(
        label=label,
        topology=topology,
        rho=rho,
        servers=4,
        scv=scv,
        discipline=discipline,
        replications=3,
        prediction=prediction,
        metrics=metrics,
    )


def make_comparison(rel_error, *, model=1.0):
    return MetricComparison(
        model=model,
        simulated=None if rel_error is None else model * (1 + rel_error),
        ci_half_width=0.01,
        rel_error=rel_error,
        ci_rel=0.01,
        within_noise=False if rel_error is not None else None,
    )


class TestViolationSemantics:
    def test_unverifiable_enforced_metric_is_a_violation(self):
        """A non-finite model or sample-less metric must fail the gate,
        never silently pass as 'no error computed'."""
        audit = FidelityAudit(
            grid="synthetic",
            rows=(
                make_row(
                    metrics={"mean_sojourn": make_comparison(None)}
                ),
            ),
            computed=0,
            reused=0,
        )
        manifest = ToleranceManifest(
            metrics={"mean_sojourn": {"default": 0.1}}
        )
        violations = audit.violations(manifest)
        assert len(violations) == 1
        assert math.isinf(violations[0].rel_error)

    def test_unlisted_metric_stays_unenforced(self):
        audit = FidelityAudit(
            grid="synthetic",
            rows=(
                make_row(metrics={"p99_sojourn": make_comparison(None)}),
            ),
            computed=0,
            reused=0,
        )
        manifest = ToleranceManifest(
            metrics={"mean_sojourn": {"default": 0.1}}
        )
        assert audit.violations(manifest) == []

    def test_t95_conservative_between_table_entries(self):
        # n=7 (df=6) must use the n=6 entry (2.571), not the smaller
        # n=8 one — rounding the other way understates the noise.
        assert _t95(7) == 2.571
        assert _t95(9) == 2.365
        assert _t95(100) == 2.040

    def test_generated_manifest_covers_cross_regime_cells(self):
        """A cell non-baseline in two dimensions (fanout at rho 0.95)
        lands in no conditioned override; the coverage pass must still
        make the generated manifest pass its own rows."""
        rows = (
            make_row(label="base", metrics={
                "mean_sojourn": make_comparison(0.03),
            }),
            make_row(label="cross", topology="fanout", rho=0.95, metrics={
                "mean_sojourn": make_comparison(0.9),
            }),
        )
        audit = FidelityAudit(
            grid="synthetic", rows=rows, computed=0, reused=0
        )
        generated = generate_manifest(rows)
        assert audit.violations(generated) == []
        # And the lift stays scoped: single-topology cells keep the
        # tight default, not the fanout envelope.
        assert generated.tolerance_for(
            "mean_sojourn",
            topology="single",
            discipline="shared",
            scv=1.0,
            rho=0.7,
        ) < 0.1


# ----------------------------------------------------------------------
# the audit itself (tier-1 smoke: the committed manifest is enforced)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def smoke_audit(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("fidelity-store"))
    return run_audit("smoke", store=store, max_workers=2)


class TestSmokeAudit:
    def test_grid_is_the_mandated_protocol(self):
        """rho = 0.7, k in {1, 4, 16}, exponential service, shared."""
        cases = grid_cases("smoke")
        assert [c.workload.servers for c in cases] == [1, 4, 16]
        assert all(c.workload.rho == 0.7 for c in cases)
        assert all(c.workload.scv == 1.0 for c in cases)
        assert all(c.discipline == "shared" for c in cases)

    def test_mean_sojourn_within_manifest_tolerance(self, smoke_audit):
        """M/M/k analytic vs simulated mean sojourn at rho=0.7, k=1/4/16."""
        manifest = ToleranceManifest.load(MANIFEST_PATH)
        assert len(smoke_audit.rows) == 3
        for row in smoke_audit.rows:
            comparison = row.metrics["mean_sojourn"]
            tolerance = manifest.tolerance_for(
                "mean_sojourn",
                topology=row.topology,
                discipline=row.discipline,
                scv=row.scv,
                rho=row.rho,
            )
            assert comparison.rel_error is not None
            assert comparison.rel_error <= tolerance, row.label

    def test_all_metrics_within_committed_manifest(self, smoke_audit):
        manifest = ToleranceManifest.load(MANIFEST_PATH)
        assert smoke_audit.violations(manifest) == []

    def test_ci_half_widths_reported(self, smoke_audit):
        for row in smoke_audit.rows:
            comparison = row.metrics["mean_sojourn"]
            assert comparison.ci_rel is not None and comparison.ci_rel > 0
            assert comparison.within_noise is not None

    def test_waiting_metric_uses_per_operator_waits(self, smoke_audit):
        row = smoke_audit.rows[0]
        waiting = row.metrics["waiting_time"]
        assert waiting.simulated is not None
        # Waiting is strictly below the sojourn (the service component).
        assert waiting.simulated < row.metrics["mean_sojourn"].simulated

    def test_tightened_tolerance_reports_violation(self, smoke_audit):
        """Tightening any entry below the observed error must fail."""
        tightened = ToleranceManifest(
            metrics={"mean_sojourn": {"default": 1e-9}}
        )
        violations = smoke_audit.violations(tightened)
        assert len(violations) == 3
        assert all(v.metric == "mean_sojourn" for v in violations)

    def test_json_payload_shape(self, smoke_audit):
        payload = json.loads(json.dumps(smoke_audit.to_dict()))
        assert payload["grid"] == "smoke"
        assert len(payload["rows"]) == 3
        assert "worst_errors" in payload

    def test_report_renders(self, smoke_audit):
        text = render_audit(smoke_audit, violations=[])
        assert "mean_sojourn" in text
        assert "within the tolerance manifest" in text

    def test_generate_manifest_covers_own_rows(self, smoke_audit):
        generated = generate_manifest(smoke_audit.rows)
        assert smoke_audit.violations(generated) == []

    def test_store_reuse_recomputes_nothing(self, smoke_audit, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run_audit("smoke", store=store, max_workers=1)
        second = run_audit("smoke", store=store, max_workers=1)
        assert first.computed > 0
        assert second.computed == 0
        assert second.reused == first.computed
        # Determinism: identical rows regardless of cache hits.
        assert [r.to_dict() for r in second.rows] == [
            r.to_dict() for r in first.rows
        ]
        # And equal to the module-fixture audit from its own store.
        assert [r.to_dict() for r in first.rows] == [
            r.to_dict() for r in smoke_audit.rows
        ]


# ----------------------------------------------------------------------
# CLI: threshold-based exit codes (the acceptance contract)
# ----------------------------------------------------------------------
class TestFidelityCLI:
    def test_exit_zero_against_committed_manifest(self, tmp_path, capsys):
        code = main(
            [
                "fidelity",
                "--grid",
                "smoke",
                "--store",
                str(tmp_path / "store"),
                "--manifest",
                str(MANIFEST_PATH),
                "--workers",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "All cells within the tolerance manifest." in out

    def test_exit_one_when_tolerance_tightened(self, tmp_path, capsys):
        store = tmp_path / "store"
        # Warm the store so the second invocation simulates nothing.
        assert (
            main(
                [
                    "fidelity",
                    "--grid",
                    "smoke",
                    "--store",
                    str(store),
                    "--manifest",
                    str(MANIFEST_PATH),
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        tightened = tmp_path / "tight.json"
        raw = json.loads(MANIFEST_PATH.read_text())
        raw["metrics"]["mean_sojourn"]["default"] = 1e-9
        raw["metrics"]["mean_sojourn"].pop("rho", None)
        tightened.write_text(json.dumps(raw))
        code = main(
            [
                "fidelity",
                "--grid",
                "smoke",
                "--store",
                str(store),
                "--manifest",
                str(tightened),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "TOLERANCE VIOLATIONS" in out

    def test_json_output_parses(self, tmp_path, capsys):
        code = main(
            [
                "fidelity",
                "--grid",
                "smoke",
                "--store",
                str(tmp_path / "store"),
                "--manifest",
                str(MANIFEST_PATH),
                "--json",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert len(payload["rows"]) == 3

    def test_missing_explicit_manifest_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "fidelity",
                    "--grid",
                    "smoke",
                    "--store",
                    str(tmp_path / "store"),
                    "--manifest",
                    str(tmp_path / "nope.json"),
                ]
            )

    def test_write_manifest(self, tmp_path, capsys):
        out_path = tmp_path / "generated.json"
        code = main(
            [
                "fidelity",
                "--grid",
                "smoke",
                "--store",
                str(tmp_path / "store"),
                "--manifest",
                str(MANIFEST_PATH),
                "--write-manifest",
                str(out_path),
                "--workers",
                "2",
            ]
        )
        assert code == 0
        generated = ToleranceManifest.load(out_path)
        assert set(generated.metrics) == {
            "mean_sojourn",
            "waiting_time",
            "p95_sojourn",
        }
