"""Tests for smoothing, metric accumulators, and the measurer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MeasurementConfig, SmoothingKind
from repro.exceptions import MeasurementError
from repro.measurement import (
    AlphaSmoother,
    IntervalCounter,
    Measurer,
    SampledAccumulator,
    WelfordAccumulator,
    WindowSmoother,
    make_smoother,
)


class TestAlphaSmoother:
    def test_seeds_with_first_value(self):
        s = AlphaSmoother(alpha=0.9)
        assert s.update(10.0) == pytest.approx(10.0)

    def test_paper_update_rule(self):
        # D(n) = alpha * D(n-1) + (1 - alpha) * d(n)
        s = AlphaSmoother(alpha=0.5)
        s.update(10.0)
        assert s.update(20.0) == pytest.approx(15.0)
        assert s.update(15.0) == pytest.approx(15.0)

    def test_alpha_zero_tracks_raw(self):
        s = AlphaSmoother(alpha=0.0)
        s.update(1.0)
        assert s.update(99.0) == pytest.approx(99.0)

    def test_value_before_update_raises(self):
        with pytest.raises(MeasurementError):
            AlphaSmoother().value

    def test_reset(self):
        s = AlphaSmoother()
        s.update(5.0)
        s.reset()
        assert not s.has_value

    def test_rejects_alpha_one(self):
        with pytest.raises(MeasurementError):
            AlphaSmoother(alpha=1.0)


class TestWindowSmoother:
    def test_paper_window_rule(self):
        s = WindowSmoother(window=3)
        s.update(3.0)
        s.update(6.0)
        assert s.update(9.0) == pytest.approx(6.0)
        # Window slides: (6 + 9 + 15) / 3
        assert s.update(15.0) == pytest.approx(10.0)

    def test_partial_window(self):
        s = WindowSmoother(window=5)
        assert s.update(4.0) == pytest.approx(4.0)
        assert s.update(8.0) == pytest.approx(6.0)

    def test_reset(self):
        s = WindowSmoother(window=2)
        s.update(1.0)
        s.reset()
        assert not s.has_value

    def test_rejects_bad_window(self):
        with pytest.raises(MeasurementError):
            WindowSmoother(window=0)


class TestMakeSmoother:
    def test_alpha_kind(self):
        config = MeasurementConfig(smoothing=SmoothingKind.ALPHA, alpha=0.3)
        assert isinstance(make_smoother(config), AlphaSmoother)

    def test_window_kind(self):
        config = MeasurementConfig(smoothing=SmoothingKind.WINDOW, window=4)
        assert isinstance(make_smoother(config), WindowSmoother)


class TestIntervalCounter:
    def test_harvest_rate(self):
        c = IntervalCounter()
        for _ in range(20):
            c.record()
        assert c.harvest(4.0) == pytest.approx(5.0)
        assert c.pending == 0

    def test_lifetime_total_survives_harvest(self):
        c = IntervalCounter()
        c.record(10)
        c.harvest(1.0)
        c.record(5)
        assert c.lifetime_total == 15

    def test_harvest_without_elapsed(self):
        c = IntervalCounter()
        c.record()
        assert c.harvest(0.0) is None

    def test_rejects_negative(self):
        with pytest.raises(MeasurementError):
            IntervalCounter().record(-1)


class TestSampledAccumulator:
    def test_nm_one_records_everything(self):
        acc = SampledAccumulator(sample_every=1)
        for value in (1.0, 2.0, 3.0):
            acc.offer(value)
        assert acc.harvest() == pytest.approx(2.0)

    def test_nm_three_records_every_third(self):
        acc = SampledAccumulator(sample_every=3)
        for value in (1.0, 2.0, 30.0, 4.0, 5.0, 60.0):
            acc.offer(value)
        # Samples: 30.0 and 60.0.
        assert acc.sampled_count == 2
        assert acc.harvest() == pytest.approx(45.0)

    def test_harvest_empty_returns_none(self):
        assert SampledAccumulator(2).harvest() is None

    def test_rejects_bad_nm(self):
        with pytest.raises(MeasurementError):
            SampledAccumulator(0)


class TestWelford:
    def test_mean_std(self):
        acc = WelfordAccumulator()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            acc.add(value)
        assert acc.mean == pytest.approx(5.0)
        assert acc.std == pytest.approx(2.0)

    def test_min_max(self):
        acc = WelfordAccumulator()
        for value in (3.0, 1.0, 2.0):
            acc.add(value)
        assert acc.minimum == 1.0
        assert acc.maximum == 3.0

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            WelfordAccumulator().mean

    def test_merge_matches_combined(self):
        a, b, c = WelfordAccumulator(), WelfordAccumulator(), WelfordAccumulator()
        for v in (1.0, 2.0, 3.0):
            a.add(v)
            c.add(v)
        for v in (10.0, 20.0):
            b.add(v)
            c.add(v)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean)
        assert merged.variance == pytest.approx(c.variance)

    def test_merge_with_empty(self):
        a, b = WelfordAccumulator(), WelfordAccumulator()
        a.add(5.0)
        merged = a.merge(b)
        assert merged.mean == pytest.approx(5.0)
        merged2 = b.merge(a)
        assert merged2.mean == pytest.approx(5.0)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
    )
)
def test_welford_matches_direct_computation(values):
    acc = WelfordAccumulator()
    for value in values:
        acc.add(value)
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    assert acc.mean == pytest.approx(mean, rel=1e-6, abs=1e-6)
    assert acc.variance == pytest.approx(variance, rel=1e-6, abs=1e-3)


class TestMeasurer:
    def make(self, **kwargs):
        return Measurer(["a", "b"], MeasurementConfig(**kwargs))

    def test_rates_from_counts(self):
        m = self.make(alpha=0.0)
        m.pull(0.0)  # open the interval
        for _ in range(40):
            m.record_arrival("a", external=True)
        for _ in range(10):
            m.record_arrival("b")
        report = m.pull(10.0)
        assert report.arrival_rates[0] == pytest.approx(4.0)
        assert report.arrival_rates[1] == pytest.approx(1.0)
        assert report.external_rate == pytest.approx(4.0)

    def test_service_rates_inverse_of_mean(self):
        m = self.make(alpha=0.0)
        m.pull(0.0)
        for _ in range(5):
            m.record_service("a", 0.25)
        report = m.pull(10.0)
        assert report.service_rates[0] == pytest.approx(4.0)
        assert report.service_rates[1] is None

    def test_sojourn_statistics(self):
        m = self.make(alpha=0.0)
        m.pull(0.0)
        for value in (0.5, 1.5):
            m.record_sojourn(value)
        report = m.pull(10.0)
        assert report.measured_sojourn == pytest.approx(1.0)
        assert report.completed_trees == 2

    def test_is_complete(self):
        m = self.make(alpha=0.0)
        m.pull(0.0)
        report = m.pull(10.0)
        assert not report.is_complete()
        m.record_arrival("a", external=True)
        m.record_arrival("b")
        m.record_service("a", 0.1)
        m.record_service("b", 0.1)
        m.record_sojourn(0.3)
        assert m.pull(20.0).is_complete()

    def test_smoothing_applied_across_pulls(self):
        m = self.make(alpha=0.5)
        m.pull(0.0)
        for _ in range(100):
            m.record_arrival("a")
        m.pull(10.0)  # raw 10/s -> smoothed 10
        # Next interval is empty -> raw 0 -> smoothed 5.
        report = m.pull(20.0)
        assert report.arrival_rates[0] == pytest.approx(5.0)

    def test_reset_smoothing(self):
        m = self.make(alpha=0.9)
        m.pull(0.0)
        for _ in range(100):
            m.record_arrival("a")
        m.pull(10.0)  # smoothed rate 10/s with heavy memory
        m.reset_smoothing()
        # After reset the old smoothed state is gone: an empty interval
        # reports a fresh 0.0 rate instead of a decayed 9.0.
        report = m.pull(20.0)
        assert report.arrival_rates[0] == pytest.approx(0.0)

    def test_unknown_operator_rejected(self):
        m = self.make()
        with pytest.raises(MeasurementError):
            m.record_arrival("ghost")
        with pytest.raises(MeasurementError):
            m.record_service("ghost", 0.1)

    def test_negative_values_rejected(self):
        m = self.make()
        with pytest.raises(MeasurementError):
            m.record_service("a", -0.1)
        with pytest.raises(MeasurementError):
            m.record_sojourn(-0.1)

    def test_processing_time_reported(self):
        m = self.make()
        report = m.pull(0.0)
        assert report.processing_time >= 0.0
