"""Tests for the Jackson network (Eq. 3) and the performance model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.queueing import JacksonNetwork, OperatorLoad, expected_sojourn_time


class TestOperatorLoad:
    def test_min_processors(self):
        load = OperatorLoad("a", arrival_rate=10.0, service_rate=3.0)
        assert load.min_processors == 4

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            OperatorLoad("a", arrival_rate=-1.0, service_rate=1.0)


class TestJacksonNetwork:
    def test_from_topology_chain(self, chain_topology):
        network = JacksonNetwork.from_topology(chain_topology)
        assert network.arrival_rates == pytest.approx([10.0, 20.0, 10.0])
        assert network.external_rate == pytest.approx(10.0)

    def test_visit_ratios(self, chain_topology):
        network = JacksonNetwork.from_topology(chain_topology)
        assert network.visit_ratios() == pytest.approx([1.0, 2.0, 1.0])

    def test_equation_three_weighted_sum(self, chain_topology):
        """E[T] must equal (1/lambda0) * sum_i lambda_i E[T_i]."""
        network = JacksonNetwork.from_topology(chain_topology)
        allocation = [4, 5, 2]
        by_hand = sum(
            lam * expected_sojourn_time(lam, mu, k)
            for lam, mu, k in zip(
                network.arrival_rates, network.service_rates, allocation
            )
        ) / network.external_rate
        assert network.expected_total_sojourn(allocation) == pytest.approx(
            by_hand, rel=1e-12
        )

    def test_saturated_allocation_is_infinite(self, chain_topology):
        network = JacksonNetwork.from_topology(chain_topology)
        # Operator a needs ceil(10/4)+ = 3 processors; give it 2.
        assert math.isinf(network.expected_total_sojourn([2, 5, 2]))

    def test_loop_topology_rates(self, loop_topology):
        network = JacksonNetwork.from_topology(loop_topology)
        rates = dict(zip(network.names, network.arrival_rates))
        assert rates["a"] == pytest.approx(6.25)

    def test_from_measurements(self):
        network = JacksonNetwork.from_measurements(
            ["x", "y"], [5.0, 10.0], [2.0, 4.0], external_rate=5.0
        )
        assert network.min_allocation() == [3, 3]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            JacksonNetwork.from_measurements(
                ["x", "x"], [1.0, 1.0], [1.0, 1.0], external_rate=1.0
            )

    def test_misaligned_measurements_rejected(self):
        with pytest.raises(ModelError):
            JacksonNetwork.from_measurements(
                ["x"], [1.0, 2.0], [1.0], external_rate=1.0
            )

    def test_bottleneck_identification(self, chain_topology):
        network = JacksonNetwork.from_topology(chain_topology)
        # Give b (highest load) barely enough processors.
        name, contribution = network.bottleneck([10, 4, 5])
        assert name == "b"
        assert contribution > 0

    def test_allocation_validation(self, chain_topology):
        network = JacksonNetwork.from_topology(chain_topology)
        with pytest.raises(ModelError):
            network.expected_total_sojourn([1, 2])  # wrong length
        with pytest.raises(ModelError):
            network.expected_total_sojourn([1, 2, 0])  # zero processors
        with pytest.raises(ModelError):
            network.expected_total_sojourn([1.5, 2, 3])  # non-integer


class TestPerformanceModel:
    def test_estimate_structure(self, chain_model):
        estimate = chain_model.estimate([4, 5, 2])
        assert estimate.stable
        assert set(estimate.per_operator) == {"a", "b", "c"}
        assert estimate.expected_sojourn == pytest.approx(
            sum(estimate.contributions.values()), rel=1e-12
        )
        assert estimate.bottleneck in ("a", "b", "c")

    def test_estimate_meets(self, chain_model):
        estimate = chain_model.estimate([6, 8, 3])
        assert estimate.meets(estimate.expected_sojourn + 0.001)
        assert not estimate.meets(estimate.expected_sojourn - 0.001)

    def test_unstable_estimate(self, chain_model):
        estimate = chain_model.estimate([1, 1, 1])
        assert not estimate.stable
        assert math.isinf(estimate.expected_sojourn)

    def test_with_loads_refresh(self, chain_model):
        refreshed = chain_model.with_loads(
            [12.0, 24.0, 12.0], [4.0, 6.0, 20.0]
        )
        assert refreshed.network.arrival_rates == pytest.approx(
            [12.0, 24.0, 12.0]
        )
        # Original untouched (immutability).
        assert chain_model.network.arrival_rates == pytest.approx(
            [10.0, 20.0, 10.0]
        )

    def test_min_total_processors(self, chain_model):
        assert chain_model.min_total_processors() == sum(
            chain_model.min_allocation()
        )


@settings(max_examples=100, deadline=None)
@given(
    lam=st.lists(
        st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=5
    ),
    mu_scale=st.floats(min_value=1.1, max_value=10.0),
    extra=st.integers(min_value=0, max_value=10),
)
def test_adding_processors_never_hurts_network(lam, mu_scale, extra):
    """Network-wide E[T] is monotone non-increasing in every k_i."""
    names = [f"op{i}" for i in range(len(lam))]
    mus = [x / 2.0 * mu_scale for x in lam]
    network = JacksonNetwork.from_measurements(
        names, lam, mus, external_rate=lam[0]
    )
    base = network.min_allocation()
    base = [k + extra for k in base]
    value = network.expected_total_sojourn(base)
    for i in range(len(base)):
        more = list(base)
        more[i] += 1
        assert network.expected_total_sojourn(more) <= value + 1e-9
