"""Tests for the cluster model, rebalance costs, and the negotiator."""

import pytest

from repro.config import ClusterSpec
from repro.exceptions import NegotiationError, SimulationError
from repro.sim import (
    Cluster,
    RebalanceCostModel,
    RebalanceStyle,
    SimResourceNegotiator,
    Simulator,
)
from repro.sim.cluster import MachineState


class TestMachineLifecycle:
    def test_boot_then_run(self):
        cluster = Cluster(5, 3)
        machine = cluster.add_machine()
        assert machine.state is MachineState.BOOTING
        machine.mark_running(0.0)
        assert machine.is_running

    def test_invalid_transitions_rejected(self):
        cluster = Cluster(5, 3)
        machine = cluster.add_machine()
        with pytest.raises(SimulationError):
            machine.mark_stopping()  # not running yet
        machine.mark_running(0.0)
        with pytest.raises(SimulationError):
            machine.mark_running(1.0)


class TestClusterCapacity:
    def test_paper_accounting(self):
        """5 machines x 5 slots - 3 reserved = Kmax 22; 4 machines = 17."""
        cluster = Cluster(slots_per_machine=5, reserved_executors=3)
        for _ in range(5):
            cluster.add_machine().mark_running(0.0)
        assert cluster.bolt_capacity == 22
        assert cluster.can_host(22)
        assert not cluster.can_host(23)

    def test_booting_machines_do_not_count(self):
        cluster = Cluster(5, 3)
        cluster.add_machine().mark_running(0.0)
        cluster.add_machine()  # still booting
        assert cluster.num_running == 1
        assert cluster.bolt_capacity == 2

    def test_placement_fills_machines_in_order(self):
        cluster = Cluster(5, 3)
        for _ in range(2):
            cluster.add_machine().mark_running(0.0)
        placement = cluster.placement(7)
        # Machine 0 hosts 3 reserved + 2 bolts, machine 1 hosts 5 bolts.
        assert placement == {0: 2, 1: 5}

    def test_placement_overflow_rejected(self):
        cluster = Cluster(5, 3)
        cluster.add_machine().mark_running(0.0)
        with pytest.raises(NegotiationError):
            cluster.placement(3)

    def test_remove_stopped(self):
        cluster = Cluster(5, 3)
        machine = cluster.add_machine()
        machine.mark_running(0.0)
        machine.mark_stopping()
        machine.mark_stopped()
        assert cluster.remove_stopped() == 1
        assert cluster.num_total == 0


class TestClusterSpec:
    def test_kmax_for_machines(self):
        spec = ClusterSpec(slots_per_machine=5, reserved_executors=3)
        assert spec.kmax_for_machines(5) == 22
        assert spec.kmax_for_machines(4) == 17

    def test_machines_for_executors(self):
        spec = ClusterSpec(slots_per_machine=5, reserved_executors=3)
        assert spec.machines_for_executors(22) == 5
        assert spec.machines_for_executors(17) == 4
        assert spec.machines_for_executors(18) == 5

    def test_roundtrip(self):
        spec = ClusterSpec()
        for machines in range(1, 10):
            kmax = spec.kmax_for_machines(machines)
            assert spec.machines_for_executors(kmax) == machines


class TestRebalanceCostModel:
    def test_styles_ordered(self):
        default = RebalanceCostModel(style=RebalanceStyle.STORM_DEFAULT)
        improved = RebalanceCostModel(style=RebalanceStyle.IMPROVED)
        instant = RebalanceCostModel(style=RebalanceStyle.INSTANT)
        assert (
            default.pause_duration()
            > improved.pause_duration()
            > instant.pause_duration()
        )
        assert instant.pause_duration() == 0.0

    def test_boot_penalty_exceeds_stop_penalty(self):
        """The paper's ExpA (add machine) disrupts more than ExpB."""
        model = RebalanceCostModel()
        add = model.pause_duration(machines_added=1)
        remove = model.pause_duration(machines_removed=1)
        assert add > remove > model.pause_duration()

    def test_rejects_negative_deltas(self):
        with pytest.raises(SimulationError):
            RebalanceCostModel().pause_duration(machines_added=-1)

    def test_rejects_negative_costs(self):
        with pytest.raises(SimulationError):
            RebalanceCostModel(improved_pause=-1.0)


class TestNegotiator:
    def make(self, machines=4, boot_time=30.0):
        sim = Simulator()
        spec = ClusterSpec(
            slots_per_machine=5,
            reserved_executors=3,
            max_machines=10,
            machine_boot_time=boot_time,
        )
        cluster = Cluster(5, 3)
        negotiator = SimResourceNegotiator(sim, cluster, spec)
        negotiator.bootstrap(machines)
        return sim, cluster, negotiator

    def test_bootstrap(self):
        _, cluster, _ = self.make(4)
        assert cluster.num_running == 4

    def test_bootstrap_requires_empty(self):
        _, _, negotiator = self.make(4)
        with pytest.raises(NegotiationError):
            negotiator.bootstrap(1)

    def test_scale_out_takes_boot_time(self):
        sim, cluster, negotiator = self.make(4, boot_time=30.0)
        ready = []
        negotiator.scale_to(5, on_ready=lambda: ready.append(sim.now))
        assert negotiator.in_progress
        sim.run_until(29.0)
        assert cluster.num_running == 4
        sim.run_until(31.0)
        assert cluster.num_running == 5
        assert ready == [30.0]
        assert not negotiator.in_progress

    def test_scale_in_releases_immediately(self):
        sim, cluster, negotiator = self.make(5)
        ready = []
        negotiator.scale_to(4, on_ready=lambda: ready.append(sim.now))
        assert ready == [0.0]  # capacity released at once
        sim.run_until(10.0)
        assert cluster.num_running == 4
        assert cluster.num_total == 4  # stopped machine GC'd

    def test_noop_scale(self):
        sim, _, negotiator = self.make(4)
        ready = []
        negotiator.scale_to(4, on_ready=lambda: ready.append(True))
        assert ready == [True]

    def test_concurrent_scaling_rejected(self):
        sim, _, negotiator = self.make(4)
        negotiator.scale_to(5)
        with pytest.raises(NegotiationError, match="in progress"):
            negotiator.scale_to(6)

    def test_bounds_enforced(self):
        _, _, negotiator = self.make(4)
        with pytest.raises(NegotiationError):
            negotiator.scale_to(0)
        with pytest.raises(NegotiationError):
            negotiator.scale_to(11)
