"""Tests for the acker-style tuple-tree tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MeasurementError
from repro.measurement import TupleTreeTracker


class TestBasicLifecycle:
    def test_root_only_tree(self):
        completions = []
        tracker = TupleTreeTracker(
            on_complete=lambda r, a, s: completions.append((r, s))
        )
        tracker.register_root(1, 10.0)
        sojourn = tracker.complete_one(1, 12.5)
        assert sojourn == pytest.approx(2.5)
        assert completions == [(1, 2.5)]
        assert tracker.completed == 1
        assert tracker.in_flight == 0

    def test_tree_with_children(self):
        tracker = TupleTreeTracker()
        tracker.register_root(1, 0.0)
        tracker.add_pending(1, 2)  # two children
        assert tracker.complete_one(1, 1.0) is None  # root done
        assert tracker.complete_one(1, 2.0) is None  # child 1
        assert tracker.complete_one(1, 5.0) == pytest.approx(5.0)  # child 2

    def test_nested_children(self):
        tracker = TupleTreeTracker()
        tracker.register_root(1, 0.0)
        tracker.add_pending(1, 1)
        tracker.complete_one(1, 1.0)  # root
        tracker.add_pending(1, 3)  # grandchildren
        tracker.complete_one(1, 2.0)  # child
        for t in (3.0, 4.0):
            assert tracker.complete_one(1, t) is None
        assert tracker.complete_one(1, 6.0) == pytest.approx(6.0)

    def test_duplicate_root_rejected(self):
        tracker = TupleTreeTracker()
        tracker.register_root(1, 0.0)
        with pytest.raises(MeasurementError):
            tracker.register_root(1, 1.0)

    def test_over_completion_rejected(self):
        tracker = TupleTreeTracker()
        tracker.register_root(1, 0.0)
        tracker.complete_one(1, 1.0)
        # Tree already gone: completion is a silent no-op (None).
        assert tracker.complete_one(1, 2.0) is None

    def test_pending_of(self):
        tracker = TupleTreeTracker()
        tracker.register_root(1, 0.0)
        tracker.add_pending(1, 4)
        assert tracker.pending_of(1) == 5
        assert tracker.pending_of(99) is None


class TestDropsAndLimits:
    def test_drop_tree(self):
        tracker = TupleTreeTracker()
        tracker.register_root(1, 0.0)
        assert tracker.drop_tree(1)
        assert tracker.dropped == 1
        assert not tracker.drop_tree(1)  # already gone
        assert tracker.complete_one(1, 5.0) is None

    def test_max_tree_size_guard(self):
        tracker = TupleTreeTracker(max_tree_size=10)
        tracker.register_root(1, 0.0)
        tracker.add_pending(1, 20)
        assert tracker.dropped == 1
        assert tracker.in_flight == 0

    def test_add_pending_on_unknown_tree_ignored(self):
        tracker = TupleTreeTracker()
        tracker.add_pending(42, 3)  # no-op, no exception
        assert tracker.in_flight == 0


class TestOldestInFlight:
    def test_empty(self):
        assert TupleTreeTracker().oldest_in_flight() is None

    def test_finds_oldest(self):
        tracker = TupleTreeTracker()
        tracker.register_root(1, 5.0)
        tracker.register_root(2, 3.0)
        tracker.register_root(3, 7.0)
        assert tracker.oldest_in_flight() == (2, 3.0)


@settings(max_examples=60, deadline=None)
@given(fanouts=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20))
def test_conservation_under_random_trees(fanouts):
    """Whatever the tree shape, exactly one completion fires, and the
    number of complete_one calls equals the number of tuples."""
    tracker = TupleTreeTracker()
    tracker.register_root(0, 0.0)
    outstanding = 1
    total_tuples = 1
    completions = 0
    fanout_iter = iter(fanouts)
    time = 0.0
    while outstanding > 0:
        children = next(fanout_iter, 0)
        tracker.add_pending(0, children)
        outstanding += children
        total_tuples += children
        time += 1.0
        result = tracker.complete_one(0, time)
        outstanding -= 1
        if result is not None:
            completions += 1
    assert completions == 1
    assert tracker.completed == 1
    assert tracker.in_flight == 0
