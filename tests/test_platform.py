"""Tests for the platform layer: specs, placement, failure models, the
runtime integration (weighted links, machine speeds, node churn) and
its end-to-end plumbing through scenarios, campaigns and the service.

The two invariants everything else leans on:

- **No platform, no change** — a spec without a ``platform`` block
  keeps its pre-platform content address (pinned as a hardcoded hash
  below) and simulates byte-identically (pinned replication values and
  a degenerate-platform digest comparison).
- **Churn is deterministic** — the churn golden fixture pins the full
  completion stream of a flapping-node scenario.  Regenerate (only on
  an intended semantic change)::

      PYTHONPATH=src python tests/test_platform.py --regen
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

import pytest

from repro.campaigns.hybrid import AnalyticCellEvaluator
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.segstore import SegmentedResultStore
from repro.campaigns.shard import ShardedCampaignRunner
from repro.campaigns.spec import CampaignSpec, scenario_hash
from repro.campaigns.store import ResultStore
from repro.exceptions import (
    ConfigurationError,
    InfeasibleAllocationError,
    SchedulingError,
    SimulationError,
)
from repro.model.performance import PerformanceModel
from repro.platform import (
    PlatformSpec,
    available_failure_models,
    available_placements,
    create_failure_model,
    create_placement,
)
from repro.queueing.jackson import JacksonNetwork, OperatorLoad
from repro.scenarios.runner import run_replication
from repro.scenarios.spec import ScenarioSpec
from repro.scheduler.allocation import Allocation
from repro.scheduler.heterogeneous import (
    ProcessorClass,
    assign_heterogeneous,
    expected_sojourn_heterogeneous,
)
from repro.sim.array_runtime import array_capable
from repro.sim.engine import Simulator
from repro.sim.runtime import RuntimeOptions, TopologyRuntime
from repro.topology.builder import TopologyBuilder

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: ``scenario_hash`` of LEGACY_SPEC computed on the pre-platform tree.
#: If this pin ever breaks, every content-addressed store in the wild
#: silently recomputes — treat as a release blocker, not a fixture to
#: regenerate.
LEGACY_HASH = "ebca555fa95edeafec4055ed827f80de7e3ad55c69acd980d6d2585dfc47dd17"

LEGACY_SPEC = {
    "name": "legacy-pin",
    "workload": "synthetic",
    "workload_params": {
        "total_cpu": 0.03,
        "arrival_rate": 20.0,
        "hop_latency": 0.004,
    },
    "policy": "none",
    "initial_allocation": "10:10:10",
    "duration": 40.0,
    "warmup": 5.0,
    "replications": 2,
    "seed": 17,
}

PLATFORM = {
    "machines": [
        {"name": "m0", "speed": 1.0, "slots": 8},
        {"name": "m1", "speed": 1.0, "slots": 8},
        {"name": "m2", "speed": 0.5, "slots": 8},
    ],
    "links": [{"source": "m0", "target": "m1", "latency": 0.001}],
    "default_latency": 0.002,
    "placement": {"kind": "round_robin"},
}


def _chain_topology(rate=20.0, mu=100.0):
    return (
        TopologyBuilder("plat_chain")
        .add_spout("src", rate=rate)
        .add_operator("a", mu=mu)
        .add_operator("b", mu=mu)
        .connect("src", "a")
        .connect("a", "b")
        .build()
    )


def _completions_digest(runtime: TopologyRuntime) -> str:
    digest = hashlib.sha256()
    for t, s in runtime.completions:
        digest.update(f"{t!r}:{s!r};".encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# PlatformSpec
# ----------------------------------------------------------------------
class TestPlatformSpec:
    def test_round_trip_and_canonical_equality(self):
        spec = PlatformSpec.from_dict(PLATFORM)
        again = PlatformSpec.from_dict(spec.to_dict())
        assert again == spec
        assert hash(again) == hash(spec)
        # Omitted optional fields canonicalise identically to explicit
        # defaults, so equal platforms always serialise equally.
        minimal = PlatformSpec.from_dict({"machines": [{"name": "m0"}]})
        explicit = PlatformSpec.from_dict(
            {
                "machines": [{"name": "m0", "speed": 1.0, "slots": 4}],
                "placement": {"kind": "colocated"},
                "failure": {"kind": "none"},
            }
        )
        assert minimal.to_dict() == explicit.to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown platform"):
            PlatformSpec.from_dict(
                {"machines": [{"name": "m0"}], "typo": True}
            )
        with pytest.raises(ConfigurationError, match="unknown machine"):
            PlatformSpec.from_dict({"machines": [{"name": "m0", "cpus": 4}]})

    def test_machine_validation(self):
        with pytest.raises(ConfigurationError, match="at least one machine"):
            PlatformSpec.from_dict({"machines": []})
        with pytest.raises(ConfigurationError, match="duplicate"):
            PlatformSpec.from_dict(
                {"machines": [{"name": "m0"}, {"name": "m0"}]}
            )
        with pytest.raises(ConfigurationError, match="speed"):
            PlatformSpec.from_dict({"machines": [{"name": "m0", "speed": 0}]})

    def test_link_validation(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            PlatformSpec.from_dict(
                {
                    "machines": [{"name": "m0"}],
                    "links": [
                        {"source": "m0", "target": "mX", "latency": 0.1}
                    ],
                }
            )
        with pytest.raises(ConfigurationError):
            PlatformSpec.from_dict(
                {
                    "machines": [{"name": "m0"}],
                    "links": [{"source": "m0", "target": "m0"}],
                }
            )

    def test_transfer_matrix(self):
        spec = PlatformSpec.from_dict(
            {
                "machines": [{"name": "m0"}, {"name": "m1"}, {"name": "m2"}],
                "links": [
                    {"source": "m0", "target": "m1", "latency": 0.001},
                    {
                        "source": "m1",
                        "target": "m0",
                        "latency": 0.005,
                    },
                ],
                "default_latency": 0.05,
                "default_bandwidth": 1e6,
                "tuple_bytes": 100.0,
            }
        )
        topology = _chain_topology()
        binding = spec.bind(topology, Allocation(["a", "b"], [1, 1]))
        matrix = binding.transfer
        assert matrix[0][0] == 0.0  # intra-machine is free
        # An explicit link without a bandwidth charges latency only.
        assert matrix[0][1] == pytest.approx(0.001)
        # Explicit reverse direction wins over symmetry.
        assert matrix[1][0] == pytest.approx(0.005)
        # Unlinked pairs fall back to the defaults, symmetrically.
        assert matrix[0][2] == matrix[2][0] == pytest.approx(0.0501)


# ----------------------------------------------------------------------
# placement policies
# ----------------------------------------------------------------------
class TestPlacement:
    def test_registry_lists_builtins(self):
        kinds = available_placements()
        assert {"colocated", "round_robin", "heterogeneous"} <= set(kinds)
        with pytest.raises(ConfigurationError, match="unknown placement"):
            create_placement({"kind": "nope"})
        with pytest.raises(ConfigurationError, match="unknown parameters"):
            create_placement({"kind": "round_robin", "typo": 1})

    def test_colocated_default_and_named(self):
        spec = PlatformSpec.from_dict(PLATFORM)
        topology = _chain_topology()
        allocation = Allocation(["a", "b"], [3, 2])
        policy = create_placement(None)
        patterns = policy.place(topology, allocation, spec.machines)
        assert patterns == {"a": (0, 0, 0), "b": (0, 0)}
        named = create_placement({"kind": "colocated", "machine": "m2"})
        patterns = named.place(topology, allocation, spec.machines)
        assert patterns == {"a": (2, 2, 2), "b": (2, 2)}
        bad = create_placement({"kind": "colocated", "machine": "mX"})
        with pytest.raises(ConfigurationError, match="unknown machine"):
            bad.place(topology, allocation, spec.machines)

    def test_round_robin_rotates_across_operators(self):
        spec = PlatformSpec.from_dict(PLATFORM)
        topology = _chain_topology()
        allocation = Allocation(["a", "b"], [4, 3])
        policy = create_placement({"kind": "round_robin"})
        patterns = policy.place(topology, allocation, spec.machines)
        assert patterns == {"a": (0, 1, 2, 0), "b": (1, 2, 0)}

    def test_heterogeneous_prefers_fast_machines(self):
        spec = PlatformSpec.from_dict(PLATFORM)
        topology = _chain_topology(rate=20.0, mu=30.0)
        allocation = Allocation(["a", "b"], [2, 2])
        policy = create_placement({"kind": "heterogeneous"})
        patterns = policy.place(topology, allocation, spec.machines)
        assert set(patterns) == {"a", "b"}
        for pattern in patterns.values():
            assert len(pattern) == 2
            # The fastest class (speed 1.0: machines 0 and 1) is filled
            # first; the half-speed m2 is only used when needed.
            assert pattern[0] in (0, 1)
        assert policy.predicted_sojourn is not None
        assert policy.predicted_sojourn > 0.0


# ----------------------------------------------------------------------
# failure models
# ----------------------------------------------------------------------
class TestFailureModels:
    def test_registry_lists_builtins(self):
        kinds = available_failure_models()
        assert {"none", "exponential", "trace"} <= set(kinds)
        with pytest.raises(ConfigurationError, match="unknown failure"):
            create_failure_model({"kind": "nope"})

    def test_exponential_validation(self):
        with pytest.raises(ConfigurationError, match="mean_up"):
            create_failure_model({"kind": "exponential", "mean_down": 1.0})
        with pytest.raises(ConfigurationError, match="must be > 0"):
            create_failure_model(
                {"kind": "exponential", "mean_up": 0.0, "mean_down": 1.0}
            )
        model = create_failure_model(
            {
                "kind": "exponential",
                "mean_up": 10.0,
                "mean_down": 2.0,
                "machines": ["m1"],
            }
        )
        assert model.to_dict()["machines"] == ["m1"]
        with pytest.raises(ConfigurationError, match="unknown machine"):
            model.initial_events(("m0",), None)

    def test_trace_validation(self):
        with pytest.raises(ConfigurationError, match="events"):
            create_failure_model({"kind": "trace"})
        with pytest.raises(ConfigurationError, match="state"):
            create_failure_model(
                {
                    "kind": "trace",
                    "events": [
                        {"time": 1.0, "machine": "m0", "state": "exploded"}
                    ],
                }
            )
        model = create_failure_model(
            {
                "kind": "trace",
                "events": [
                    {"time": 9.0, "machine": "m0", "state": "up"},
                    {"time": 4.0, "machine": "m0", "state": "down"},
                ],
            }
        )
        # Events are replayed in time order regardless of input order.
        assert [e["time"] for e in model.to_dict()["events"]] == [4.0, 9.0]


# ----------------------------------------------------------------------
# hash + byte-identity preservation (satellite: legacy specs)
# ----------------------------------------------------------------------
class TestLegacyPreservation:
    def test_legacy_hash_pinned(self):
        spec = ScenarioSpec.from_dict(LEGACY_SPEC)
        assert scenario_hash(spec) == LEGACY_HASH
        assert "platform" not in spec.to_dict()

    def test_legacy_replication_pinned(self):
        """The legacy (no-platform) simulate path is byte-identical to
        the pre-platform tree: values pinned from a pre-change run."""
        result = run_replication(ScenarioSpec.from_dict(LEGACY_SPEC), 0)
        assert repr(result.mean_sojourn) == "0.0420000000000003"
        assert result.completed_trees == 812
        assert repr(result.p95_sojourn) == "0.0420000000000087"

    def test_platform_changes_the_hash(self):
        legacy = ScenarioSpec.from_dict(LEGACY_SPEC)
        platform = ScenarioSpec.from_dict(
            {
                **LEGACY_SPEC,
                "workload_params": {"total_cpu": 0.03, "arrival_rate": 20.0},
                "platform": PLATFORM,
            }
        )
        assert scenario_hash(platform) != scenario_hash(legacy)
        # ...and equal platform blocks hash equally after canonicalising.
        again = ScenarioSpec.from_dict(platform.to_dict())
        assert scenario_hash(again) == scenario_hash(platform)

    def test_degenerate_platform_is_byte_identical(self):
        """One full-speed machine, free links, no churn == legacy."""
        topology = _chain_topology()
        allocation = Allocation(["a", "b"], [2, 2])
        digests = []
        for options in (
            RuntimeOptions(seed=11),
            RuntimeOptions(
                seed=11,
                platform=PlatformSpec.from_dict(
                    {"machines": [{"name": "m0", "slots": 64}]}
                ),
            ),
        ):
            sim = Simulator()
            runtime = TopologyRuntime(sim, topology, allocation, options)
            runtime.start()
            sim.run_until(80.0)
            digests.append(_completions_digest(runtime))
        assert digests[0] == digests[1]

    def test_mutual_exclusion(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            ScenarioSpec.from_dict(
                {
                    **LEGACY_SPEC,
                    "hop_latency": 0.004,
                    "platform": PLATFORM,
                }
            )
        with pytest.raises(SimulationError, match="mutually exclusive"):
            RuntimeOptions(
                hop_latency=0.01,
                platform=PlatformSpec.from_dict(PLATFORM),
            )
        with pytest.raises(SimulationError, match="bind"):
            RuntimeOptions(platform="not a platform")


# ----------------------------------------------------------------------
# runtime semantics: speeds, transfers, churn
# ----------------------------------------------------------------------
class TestPlatformRuntime:
    def _run(self, platform_dict, *, seed=13, duration=60.0, topology=None,
             allocation=None):
        topology = topology or _chain_topology()
        allocation = allocation or Allocation(["a", "b"], [2, 2])
        options = RuntimeOptions(
            seed=seed, platform=PlatformSpec.from_dict(platform_dict)
        )
        sim = Simulator()
        runtime = TopologyRuntime(sim, topology, allocation, options)
        runtime.start()
        sim.run_until(duration)
        runtime.check_conservation()
        return runtime

    def test_slow_machines_stretch_service(self):
        fast = self._run({"machines": [{"name": "m0", "speed": 1.0}]})
        slow = self._run({"machines": [{"name": "m0", "speed": 0.25}]})
        assert (
            slow.stats().mean_sojourn > 2.0 * fast.stats().mean_sojourn
        )

    def test_link_latency_adds_transfer_delay(self):
        free = self._run(
            {
                "machines": [{"name": "m0"}, {"name": "m1"}],
                "placement": {"kind": "round_robin"},
            }
        )
        linked = self._run(
            {
                "machines": [{"name": "m0"}, {"name": "m1"}],
                "placement": {"kind": "round_robin"},
                "default_latency": 0.05,
            }
        )
        # Two platform hops (src->a, a->b) of expected cost ~0.05 each
        # (half the executor pairs cross machines... exact mean depends
        # on placement); the shift must be clearly visible.
        delta = linked.stats().mean_sojourn - free.stats().mean_sojourn
        assert delta > 0.02

    def test_trace_churn_records_exact_transitions(self):
        runtime = self._run(
            {
                "machines": [{"name": "m0"}, {"name": "m1"}],
                "placement": {"kind": "round_robin"},
                "failure": {
                    "kind": "trace",
                    "events": [
                        {"time": 10.0, "machine": "m1", "state": "down"},
                        {"time": 20.0, "machine": "m1", "state": "up"},
                    ],
                },
            }
        )
        assert runtime.node_events == [
            (10.0, "m1", "down"),
            (20.0, "m1", "up"),
        ]

    def test_down_node_drops_in_flight_work(self):
        """A saturated executor is busy when its machine dies: the tuple
        in service is lost, queued tuples survive via redelivery."""
        topology = _chain_topology(rate=40.0, mu=10.0)  # heavily loaded
        runtime = self._run(
            {
                "machines": [{"name": "m0"}, {"name": "m1"}],
                "placement": {"kind": "round_robin"},
                "failure": {
                    "kind": "trace",
                    "events": [
                        {"time": 5.0, "machine": "m1", "state": "down"}
                    ],
                },
            },
            topology=topology,
            allocation=Allocation(["a", "b"], [1, 1]),
            duration=20.0,
        )
        assert runtime.node_events == [(5.0, "m1", "down")]
        stats = runtime.stats()
        assert stats.dropped_tuples >= 1
        # Conservation already checked in _run: every external tuple is
        # accounted for as completed, dropped or in flight.

    def test_exponential_churn_is_deterministic(self):
        first = self._run(
            {
                "machines": [{"name": "m0"}, {"name": "m1"}],
                "placement": {"kind": "round_robin"},
                "failure": {
                    "kind": "exponential",
                    "mean_up": 15.0,
                    "mean_down": 3.0,
                },
            }
        )
        second = self._run(
            {
                "machines": [{"name": "m0"}, {"name": "m1"}],
                "placement": {"kind": "round_robin"},
                "failure": {
                    "kind": "exponential",
                    "mean_up": 15.0,
                    "mean_down": 3.0,
                },
            }
        )
        assert first.node_events == second.node_events
        assert _completions_digest(first) == _completions_digest(second)
        assert first.node_events  # churn actually fired

    def test_churn_survives_a_rebalance(self):
        """A transition landing inside the rebalance pause retries and
        applies after resume; patterns follow the new allocation."""
        topology = _chain_topology()
        allocation = Allocation(["a", "b"], [2, 2])
        options = RuntimeOptions(
            seed=3,
            platform=PlatformSpec.from_dict(
                {
                    "machines": [{"name": "m0"}, {"name": "m1"}],
                    "placement": {"kind": "round_robin"},
                    "failure": {
                        "kind": "trace",
                        "events": [
                            # Lands mid-pause: Storm-default pause is
                            # triggered at t=10 below.
                            {"time": 10.5, "machine": "m1", "state": "down"},
                            {"time": 30.0, "machine": "m1", "state": "up"},
                        ],
                    },
                }
            ),
        )
        sim = Simulator()
        runtime = TopologyRuntime(sim, topology, allocation, options)
        runtime.start()
        sim.schedule(
            10.0,
            lambda: runtime.apply_allocation(Allocation(["a", "b"], [3, 1])),
        )
        sim.run_until(60.0)
        runtime.check_conservation()
        assert [e[2] for e in runtime.node_events] == ["down", "up"]
        # The down transition was deferred past the pause, not lost.
        assert runtime.node_events[0][0] > 10.5


# ----------------------------------------------------------------------
# churn golden: the fixture pins the full completion stream
# ----------------------------------------------------------------------
def _churn_case() -> dict:
    topology = (
        TopologyBuilder("golden_churn")
        .add_spout("src", rate=12.0)
        .add_operator("a", mu=30.0)
        .add_operator("b", mu=24.0)
        .connect("src", "a")
        .connect("a", "b", gain=1.5)
        .build()
    )
    allocation = Allocation(["a", "b"], [2, 3])
    options = RuntimeOptions(
        seed=37,
        platform=PlatformSpec.from_dict(
            {
                "machines": [
                    {"name": "m0", "speed": 1.0, "slots": 4},
                    {"name": "m1", "speed": 0.5, "slots": 4},
                ],
                "links": [
                    {"source": "m0", "target": "m1", "latency": 0.003}
                ],
                "placement": {"kind": "round_robin"},
                "failure": {
                    "kind": "exponential",
                    "mean_up": 40.0,
                    "mean_down": 6.0,
                    "machines": ["m1"],
                },
            }
        ),
    )
    sim = Simulator()
    runtime = TopologyRuntime(sim, topology, allocation, options)
    runtime.start()
    sim.run_until(200.0)
    runtime.check_conservation()
    stats = runtime.stats(warmup=20.0)
    return {
        "completions_sha256": _completions_digest(runtime),
        "num_completions": len(runtime.completions),
        "node_events": [
            [repr(t), machine, state]
            for t, machine, state in runtime.node_events
        ],
        "mean_sojourn": repr(stats.mean_sojourn),
        "completed_trees": stats.completed_trees,
        "dropped_tuples": stats.dropped_tuples,
        "processed_events": runtime.simulator.processed_events,
    }


def test_churn_golden():
    path = GOLDEN_DIR / "platform_churn.json"
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} missing; run"
            " `PYTHONPATH=src python tests/test_platform.py --regen`"
        )
    assert _churn_case() == json.loads(path.read_text())


# ----------------------------------------------------------------------
# fast paths decline platform cells
# ----------------------------------------------------------------------
class TestFastPathGating:
    def test_array_runtime_declines_platform(self):
        topology = _chain_topology()
        options = RuntimeOptions(
            queue_discipline="shared",
            platform=PlatformSpec.from_dict(PLATFORM),
        )
        reason = array_capable(topology, options)
        assert reason is not None and "platform" in reason

    def test_hybrid_evaluator_declines_platform(self):
        evaluator = AnalyticCellEvaluator.default()
        fidelity = {
            "name": "cell",
            "workload": "fidelity",
            "workload_params": {
                "topology": "single",
                "rho": 0.5,
                "servers": 2,
                "arrival_rate": 10.0,
            },
            "policy": "none",
            "duration": 50.0,
            "queue_discipline": "shared",
        }
        admitted = evaluator.decide(ScenarioSpec.from_dict(fidelity))
        declined = evaluator.decide(
            ScenarioSpec.from_dict({**fidelity, "platform": PLATFORM})
        )
        assert declined.analytic_capable is False
        assert "platform" in declined.reason
        # The platform cell must not inherit the platform-free cell's
        # memoized decision (the decision key includes the block).
        assert admitted.reason != declined.reason


# ----------------------------------------------------------------------
# heterogeneous scheduler edge cases (satellite: dormant guards)
# ----------------------------------------------------------------------
class TestHeterogeneousGuards:
    def _model(self, external=10.0):
        loads = [OperatorLoad("a", 10.0, 25.0), OperatorLoad("b", 15.0, 40.0)]
        return PerformanceModel(JacksonNetwork(loads, external_rate=external))

    def test_empty_classes_rejected(self):
        with pytest.raises(SchedulingError, match="at least one"):
            assign_heterogeneous(self._model(), ())

    def test_all_zero_counts_rejected(self):
        with pytest.raises(SchedulingError, match="count 0"):
            assign_heterogeneous(
                self._model(), (ProcessorClass("slow", 1.0, 0),)
            )

    def test_zero_operator_model_rejected(self):
        # JacksonNetwork itself refuses empty load lists, so the guard
        # defends against models built through other paths — stub one.
        from types import SimpleNamespace

        empty = SimpleNamespace(network=SimpleNamespace(num_operators=0))
        with pytest.raises(SchedulingError, match="no operators"):
            assign_heterogeneous(empty, (ProcessorClass("c", 1.0, 4),))

    def test_zero_external_rate_rejected(self):
        from types import SimpleNamespace

        model = self._model()
        assignment = assign_heterogeneous(
            model, (ProcessorClass("c", 1.0, 8),)
        )
        broken = SimpleNamespace(network=SimpleNamespace(external_rate=0.0))
        with pytest.raises(SchedulingError, match="positive external"):
            expected_sojourn_heterogeneous(broken, assignment)

    def test_exhausted_pools_still_infeasible(self):
        with pytest.raises(InfeasibleAllocationError):
            assign_heterogeneous(
                self._model(), (ProcessorClass("tiny", 0.1, 1),)
            )

    def test_zero_speed_class_rejected(self):
        with pytest.raises((SchedulingError, ValueError)):
            ProcessorClass("zero", 0.0, 4)


# ----------------------------------------------------------------------
# campaigns + sharded resume + service jobs carry platform cells
# ----------------------------------------------------------------------
def _churn_campaign(name="churn-camp") -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": name,
            "base": {
                "workload": "synthetic",
                "workload_params": {"total_cpu": 0.03, "arrival_rate": 20.0},
                "policy": "none",
                "initial_allocation": "6:6:6",
                "duration": 30.0,
                "warmup": 5.0,
                "replications": 1,
                "seed": 23,
                "platform": {
                    "machines": [
                        {"name": "m0", "slots": 8},
                        {"name": "m1", "speed": 0.5, "slots": 8},
                    ],
                    "placement": {"kind": "round_robin"},
                    "failure": {
                        "kind": "exponential",
                        "mean_up": 20.0,
                        "mean_down": 4.0,
                        "machines": ["m1"],
                    },
                },
            },
            "axes": [
                {
                    "name": "churn",
                    "field": "platform.failure.mean_up",
                    "values": [20.0, 10.0],
                }
            ],
        }
    )


class TestPlatformCampaigns:
    def test_axes_patch_the_platform_block(self):
        cells = _churn_campaign().expand()
        ups = {
            cell.spec.platform["failure"]["mean_up"] for cell in cells
        }
        assert ups == {20.0, 10.0}
        assert len({scenario_hash(cell.spec) for cell in cells}) == 2

    def test_campaign_reuses_churn_cells(self, tmp_path):
        campaign = _churn_campaign()
        runner = CampaignRunner(ResultStore(tmp_path))
        first = runner.run(campaign)
        assert first.computed == 2 and first.reused == 0
        second = runner.run(campaign)
        assert second.computed == 0 and second.reused == 2
        assert [c.summary.to_dict() for c in first.cells] == [
            c.summary.to_dict() for c in second.cells
        ]

    def test_sharded_resume_recomputes_nothing(self, tmp_path):
        """A killed-and-restarted sharded run of churn cells resumes
        from the store: the second run computes zero replications."""
        campaign = _churn_campaign("churn-shard")
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        first = ShardedCampaignRunner(store, shards=2).run(campaign)
        assert first.computed == 2 and first.reused == 0
        second = ShardedCampaignRunner(store, shards=2).run(campaign)
        assert second.computed == 0 and second.reused == 2


class TestServicePlatformJobs:
    def test_job_executor_runs_churn_campaign(self, tmp_path):
        import time

        from repro.service.jobs import JobExecutor, JobQueue

        queue = JobQueue(tmp_path / "jobs")
        executor = JobExecutor(
            queue, tmp_path / "store", campaign_workers=1
        )
        executor.start()
        try:
            job, _ = queue.submit(_churn_campaign("churn-svc"))
            executor.notify()
            deadline = time.monotonic() + 60
            while not job.terminal and time.monotonic() < deadline:
                time.sleep(0.02)
        finally:
            executor.shutdown()
        assert job.state == "done"
        assert job.result["computed"] == 2 and job.result["reused"] == 0


# ----------------------------------------------------------------------
# fixture regeneration
# ----------------------------------------------------------------------
def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / "platform_churn.json"
    path.write_text(json.dumps(_churn_case(), indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:  # pragma: no cover
        print(__doc__)
