"""Tests for topology dict (de)serialisation."""

import json

import pytest

from repro.exceptions import TopologyError
from repro.model import PerformanceModel
from repro.randomness.arrival import MMPP2
from repro.randomness.distributions import Deterministic, LogNormal
from repro.scheduler import assign_processors
from repro.topology import (
    FieldsGrouping,
    Spout,
    TopologyBuilder,
    topology_from_dict,
    topology_to_dict,
)


VLD_SPEC = {
    "name": "vld",
    "spouts": [{"name": "frames", "uniform_rate": {"low": 1.0, "high": 25.0}}],
    "operators": [
        {
            "name": "sift",
            "service_time": {"type": "lognormal", "mean": 0.5714, "scv": 1.5},
        },
        {"name": "matcher", "mu": 17.5},
        {"name": "aggregator", "mu": 150.0, "stateful": True},
    ],
    "edges": [
        {"source": "frames", "target": "sift"},
        {"source": "sift", "target": "matcher", "gain": 10.0},
        {
            "source": "matcher",
            "target": "aggregator",
            "gain": 0.3,
            "grouping": {"type": "fields", "fields": ["root"]},
        },
    ],
}


class TestFromDict:
    def test_builds_vld(self):
        topology = topology_from_dict(VLD_SPEC)
        assert topology.operator_names == ("sift", "matcher", "aggregator")
        assert topology.external_rate == pytest.approx(13.0)
        assert topology.operator("aggregator").stateful

    def test_model_usable(self):
        topology = topology_from_dict(VLD_SPEC)
        model = PerformanceModel.from_topology(topology)
        allocation = assign_processors(model, 22)
        assert allocation.total == 22

    def test_grouping_restored(self):
        topology = topology_from_dict(VLD_SPEC)
        edge = topology.in_edges("aggregator")[0]
        assert isinstance(edge.grouping, FieldsGrouping)
        assert list(edge.grouping.fields) == ["root"]

    def test_json_round_trip_of_spec(self):
        """The spec survives a JSON encode/decode (config-file path)."""
        loaded = json.loads(json.dumps(VLD_SPEC))
        topology = topology_from_dict(loaded)
        assert topology.name == "vld"

    def test_missing_key_rejected(self):
        with pytest.raises(TopologyError, match="missing key"):
            topology_from_dict({"name": "x", "spouts": [], "operators": []})

    def test_bad_spout_rejected(self):
        spec = dict(VLD_SPEC, spouts=[{"name": "s"}])
        with pytest.raises(TopologyError, match="rate"):
            topology_from_dict(spec)

    def test_bad_operator_rejected(self):
        spec = dict(VLD_SPEC, operators=[{"name": "op"}])
        with pytest.raises(TopologyError, match="mu"):
            topology_from_dict(spec)

    def test_unknown_grouping_rejected(self):
        spec = json.loads(json.dumps(VLD_SPEC))
        spec["edges"][0]["grouping"] = {"type": "rainbow"}
        with pytest.raises(TopologyError, match="unknown grouping"):
            topology_from_dict(spec)


class TestToDict:
    def test_round_trip_preserves_model(self, chain_topology):
        spec = topology_to_dict(chain_topology)
        rebuilt = topology_from_dict(spec)
        original = PerformanceModel.from_topology(chain_topology)
        restored = PerformanceModel.from_topology(rebuilt)
        assert restored.network.arrival_rates == pytest.approx(
            original.network.arrival_rates
        )
        assert restored.network.service_rates == pytest.approx(
            original.network.service_rates
        )

    def test_round_trip_vld_spec(self):
        topology = topology_from_dict(VLD_SPEC)
        spec = topology_to_dict(topology)
        rebuilt = topology_from_dict(spec)
        assert rebuilt.external_rate == pytest.approx(13.0)
        assert rebuilt.operator("aggregator").stateful

    def test_distribution_parameters_preserved(self):
        topology = (
            TopologyBuilder("t")
            .add_spout("s", rate=2.0)
            .add_operator("det", service_time=Deterministic(0.25))
            .add_operator("log", service_time=LogNormal(mean=0.5, scv=2.0))
            .connect("s", "det")
            .connect("det", "log")
            .build()
        )
        rebuilt = topology_from_dict(topology_to_dict(topology))
        assert rebuilt.operator("det").service_time.mean == pytest.approx(0.25)
        assert rebuilt.operator("log").service_time.scv == pytest.approx(2.0)

    def test_json_serialisable_output(self, chain_topology):
        text = json.dumps(topology_to_dict(chain_topology))
        assert "chain" in text

    def test_unserialisable_arrival_rejected(self):
        from repro.topology.graph import Edge, Operator, Topology

        topology = Topology(
            "t",
            spouts=[
                Spout(
                    name="bursty",
                    arrivals=MMPP2(1.0, 5.0, 1.0, 1.0),
                )
            ],
            operators=[Operator.with_rate("op", 100.0)],
            edges=[Edge(source="bursty", target="op")],
        )
        with pytest.raises(TopologyError, match="non-serialisable"):
            topology_to_dict(topology)
