"""Run the public API's doctest examples as part of tier 1.

The examples double as the documentation's code samples (mkdocstrings
renders them in the API reference), so this test is what keeps the docs
runnable: an API change that breaks an example fails here, not in a
reader's shell.  CI additionally runs ``pytest --doctest-modules`` over
:mod:`repro.workloads`; this module pins the broader public surface.
"""

import doctest

import pytest

import repro.api
import repro.campaigns.spec
import repro.campaigns.store
import repro.randomness.distributions
import repro.scenarios.registry
import repro.scenarios.runner
import repro.scenarios.spec
import repro.workloads.closed_loop
import repro.workloads.models
import repro.workloads.trace

#: Modules whose docstring examples are part of the documented contract.
DOCUMENTED_MODULES = [
    repro.api,
    repro.campaigns.spec,
    repro.campaigns.store,
    repro.randomness.distributions,
    repro.scenarios.registry,
    repro.scenarios.runner,
    repro.scenarios.spec,
    repro.workloads.closed_loop,
    repro.workloads.models,
    repro.workloads.trace,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failed"
    assert results.attempted > 0, (
        f"{module.__name__} lost all its doctest examples — the API"
        " reference renders these; restore or update the docstrings"
    )
