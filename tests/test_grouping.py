"""Tests for stream groupings."""

import random

import pytest

from repro.exceptions import RoutingError
from repro.topology.grouping import (
    BroadcastGrouping,
    FieldsGrouping,
    GlobalGrouping,
    LocalOrShuffleGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
)


class TestShuffle:
    def test_single_task(self, rng):
        assert ShuffleGrouping().select_tasks({}, 1, rng) == (0,)

    def test_tasks_in_range(self, rng):
        grouping = ShuffleGrouping()
        for _ in range(100):
            (task,) = grouping.select_tasks({}, 7, rng)
            assert 0 <= task < 7

    def test_roughly_uniform(self):
        rng = random.Random(5)
        grouping = ShuffleGrouping()
        counts = [0] * 4
        for _ in range(8000):
            (task,) = grouping.select_tasks({}, 4, rng)
            counts[task] += 1
        for count in counts:
            assert 1700 <= count <= 2300

    def test_rejects_zero_tasks(self, rng):
        with pytest.raises(RoutingError):
            ShuffleGrouping().select_tasks({}, 0, rng)


class TestFields:
    def test_deterministic_for_same_key(self, rng):
        grouping = FieldsGrouping(["user"])
        a = grouping.select_tasks({"user": "alice"}, 8, rng)
        b = grouping.select_tasks({"user": "alice"}, 8, rng)
        assert a == b

    def test_stable_across_instances(self, rng):
        # The hash must not depend on Python's per-process salt.
        a = FieldsGrouping(["k"]).select_tasks({"k": 42}, 16, rng)
        b = FieldsGrouping(["k"]).select_tasks({"k": 42}, 16, rng)
        assert a == b

    def test_multi_field_key(self, rng):
        grouping = FieldsGrouping(["a", "b"])
        x = grouping.select_tasks({"a": 1, "b": 2}, 8, rng)
        y = grouping.select_tasks({"a": 1, "b": 3}, 8, rng)
        assert x == x
        # Different keys *may* collide but a fixed pair is checked stable.
        assert grouping.select_tasks({"a": 1, "b": 2}, 8, rng) == x
        assert isinstance(y[0], int)

    def test_missing_field_raises(self, rng):
        with pytest.raises(RoutingError, match="missing"):
            FieldsGrouping(["user"]).select_tasks({"other": 1}, 4, rng)

    def test_requires_fields(self):
        with pytest.raises(RoutingError):
            FieldsGrouping([])

    def test_spreads_over_tasks(self, rng):
        grouping = FieldsGrouping(["k"])
        tasks = {
            grouping.select_tasks({"k": i}, 16, rng)[0] for i in range(200)
        }
        assert len(tasks) > 8  # most of the 16 tasks used


class TestGlobal:
    def test_always_task_zero(self, rng):
        grouping = GlobalGrouping()
        for _ in range(10):
            assert grouping.select_tasks({}, 9, rng) == (0,)


class TestBroadcast:
    def test_all_tasks(self, rng):
        assert BroadcastGrouping().select_tasks({}, 4, rng) == (0, 1, 2, 3)


class TestLocalOrShuffle:
    def test_prefers_local(self, rng):
        grouping = LocalOrShuffleGrouping()
        payload = {
            LocalOrShuffleGrouping.RESERVED_MACHINE_KEY: "m1",
            LocalOrShuffleGrouping.RESERVED_LOCAL_TASKS_KEY: {"m1": [2, 3]},
        }
        for _ in range(20):
            (task,) = grouping.select_tasks(payload, 8, rng)
            assert task in (2, 3)

    def test_falls_back_to_shuffle(self, rng):
        grouping = LocalOrShuffleGrouping()
        (task,) = grouping.select_tasks({}, 8, rng)
        assert 0 <= task < 8


class TestPartialKey:
    def test_without_probe_uses_first_hash(self, rng):
        grouping = PartialKeyGrouping(["k"])
        a = grouping.select_tasks({"k": "x"}, 8, rng)
        b = grouping.select_tasks({"k": "x"}, 8, rng)
        assert a == b

    def test_with_probe_picks_lighter(self, rng):
        loads = {i: float(i) for i in range(8)}  # task 0 lightest
        grouping = PartialKeyGrouping(["k"], load_of_task=lambda t: loads[t])
        # For any key, the chosen task is the lighter of its two hashes.
        for key in range(40):
            (task,) = grouping.select_tasks({"k": key}, 8, rng)
            first = grouping._hash((key,), 0x9E3779B97F4A7C15) % 8
            second = grouping._hash((key,), 0xC2B2AE3D27D4EB4F) % 8
            expected = first if loads[first] <= loads[second] else second
            if first == second:
                expected = first
            assert task == expected

    def test_requires_fields(self):
        with pytest.raises(RoutingError):
            PartialKeyGrouping([])
