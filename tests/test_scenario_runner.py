"""Tests for the scenario runner: determinism, merging, policies live."""

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios.runner import (
    ScenarioRunner,
    replication_seed,
    run_replication,
)
from repro.scenarios.spec import RatePhase, ScenarioSpec


def smoke_spec(**overrides) -> ScenarioSpec:
    """Small, fast synthetic-chain scenario (deterministic service)."""
    base = dict(
        name="runner-smoke",
        workload="synthetic",
        workload_params={
            "total_cpu": 0.03,
            "arrival_rate": 20.0,
            "hop_latency": 0.004,
        },
        policy="none",
        initial_allocation="10:10:10",
        duration=90.0,
        warmup=15.0,
        seed=17,
        replications=3,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestReplicationSeeds:
    def test_rep0_is_base_seed(self):
        assert replication_seed(42, 0) == 42

    def test_later_reps_derive(self):
        seeds = [replication_seed(42, i) for i in range(5)]
        assert len(set(seeds)) == 5

    def test_derivation_is_stable(self):
        assert replication_seed(42, 3) == replication_seed(42, 3)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            replication_seed(42, -1)


class TestDeterminism:
    def test_worker_count_does_not_change_results(self):
        """The satellite regression: 1 worker and 4 workers produce
        byte-identical merged summaries."""
        spec = smoke_spec()
        serial = ScenarioRunner(max_workers=1).run(spec)
        pooled = ScenarioRunner(max_workers=4).run(spec)
        assert serial.to_json(indent=2) == pooled.to_json(indent=2)

    def test_rerun_is_identical(self):
        spec = smoke_spec(replications=2)
        runner = ScenarioRunner(max_workers=2)
        assert runner.run(spec).to_json() == runner.run(spec).to_json()

    def test_run_many_matches_individual_runs(self):
        specs = [smoke_spec(), smoke_spec(name="runner-smoke-2", seed=23)]
        runner = ScenarioRunner(max_workers=4)
        joint = runner.run_many(specs)
        solo = [ScenarioRunner(max_workers=1).run(s) for s in specs]
        assert [s.to_json() for s in joint] == [s.to_json() for s in solo]


class TestMerging:
    @pytest.fixture(scope="class")
    def summary(self):
        return ScenarioRunner(max_workers=2).run(smoke_spec())

    def test_replications_in_index_order(self, summary):
        assert [r.index for r in summary.replications] == [0, 1, 2]

    def test_distinct_seeds(self, summary):
        seeds = [r.seed for r in summary.replications]
        assert len(set(seeds)) == 3
        assert seeds[0] == 17

    def test_mean_of_means(self, summary):
        means = [r.mean_sojourn for r in summary.replications]
        assert summary.mean_sojourn == pytest.approx(sum(means) / len(means))
        assert summary.min_sojourn == min(means)
        assert summary.max_sojourn == max(means)

    def test_totals(self, summary):
        assert summary.total_completed == sum(
            r.completed_trees for r in summary.replications
        )
        assert summary.total_completed > 0

    def test_summary_is_json_ready(self, summary):
        text = summary.to_json(indent=2)
        assert '"runner-smoke"' in text


class TestPoliciesLive:
    def test_drs_rebalances_vld_from_bad_start(self):
        spec = ScenarioSpec(
            name="drs-live",
            workload="vld",
            policy="drs.min_sojourn",
            policy_params={"kmax": 22, "rebalance_threshold": 0.12},
            initial_allocation="8:12:2",
            duration=300.0,
            enable_at=120.0,
            min_action_gap=60.0,
            seed=19,
            hop_latency=0.002,
            measurement={"alpha": 0.85},
        )
        result = run_replication(spec, 0)
        assert result.rebalances >= 1
        assert result.actions
        assert result.actions[0].time >= 120.0
        assert result.final_allocation != "8:12:2"

    def test_policy_derives_initial_allocation(self):
        spec = ScenarioSpec(
            name="derived-start",
            workload="vld",
            policy="drs.min_sojourn",
            policy_params={"kmax": 22},
            duration=60.0,
            seed=11,
        )
        result = run_replication(spec, 0)
        assert result.final_allocation == "10:11:1"

    def test_missing_initial_allocation_fails_clearly(self):
        broken = smoke_spec(initial_allocation=None)
        with pytest.raises(ConfigurationError, match="initial_allocation"):
            run_replication(broken, 0)

    def test_min_resource_without_machines_fails_upfront(self):
        """A pool-sizing policy with no pool must fail before simulating,
        naming the spec field to set."""
        spec = smoke_spec()
        broken = ScenarioSpec.from_dict(
            {**spec.to_dict(), "policy": "drs.min_resource",
             "policy_params": {"tmax": 1.0}}
        )
        with pytest.raises(ConfigurationError, match="initial_machines"):
            run_replication(broken, 0)

    def test_rate_phases_increase_load(self):
        calm = smoke_spec(replications=1, duration=120.0)
        surged = smoke_spec(
            name="runner-smoke-surge",
            replications=1,
            duration=120.0,
            rate_phases=(RatePhase(start=60.0, rate_multiplier=3.0),),
        )
        runner = ScenarioRunner(max_workers=1)
        base = runner.run(calm).replications[0]
        surge = runner.run(surged).replications[0]
        assert surge.external_tuples > base.external_tuples * 1.5

    def test_recommendation_recorded(self):
        spec = ScenarioSpec(
            name="recommend",
            workload="vld",
            policy="none",
            initial_allocation="10:11:1",
            duration=120.0,
            warmup=20.0,
            seed=11,
            hop_latency=0.002,
            recommend_kmax=22,
        )
        result = run_replication(spec, 0)
        assert result.recommendation is not None
        assert result.recommendation.count(":") == 2


class TestOverheadKind:
    def test_table2_spec_runs_through_runner(self):
        from repro.experiments import table2

        summary = ScenarioRunner(max_workers=1).run(
            table2.spec(kmax_values=[12, 48], repetitions=20)
        )
        rows = summary.extra["overhead_rows"]
        assert [r["kmax"] for r in rows] == [12, 48]
        assert all(r["scheduling_ms"] > 0 for r in rows)

    def test_run_many_rejects_overhead(self):
        from repro.experiments import table2

        with pytest.raises(ConfigurationError, match="overhead"):
            ScenarioRunner().run_many([table2.spec()])


class TestRunnerValidation:
    def test_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            ScenarioRunner(max_workers=0)

    def test_overhead_replication_rejected(self):
        from repro.experiments import table2

        with pytest.raises(ConfigurationError, match="overhead"):
            run_replication(table2.spec(), 0)
