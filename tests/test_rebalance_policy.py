"""Tests for the rebalance decision policy."""

import pytest

from repro.scheduler import Allocation, RebalancePolicy


@pytest.fixture
def names():
    return ["a", "b", "c"]


@pytest.fixture
def policy():
    return RebalancePolicy(
        migration_cost=5.0, amortisation_horizon=600.0, relative_threshold=0.05
    )


class TestBasicDecisions:
    def test_identical_allocation_never_migrates(self, policy, names):
        a = Allocation(names, [1, 2, 3])
        decision = policy.evaluate(a, a, 1.0, 0.5)
        assert not decision.should_rebalance
        assert "equals current" in decision.reason

    def test_clear_improvement_migrates(self, policy, names):
        current = Allocation(names, [1, 2, 3])
        proposed = Allocation(names, [2, 2, 2])
        decision = policy.evaluate(current, proposed, 2.0, 1.0)
        assert decision.should_rebalance
        assert decision.predicted_improvement == pytest.approx(1.0)

    def test_worse_proposal_rejected(self, policy, names):
        current = Allocation(names, [1, 2, 3])
        proposed = Allocation(names, [2, 2, 2])
        decision = policy.evaluate(current, proposed, 1.0, 2.0)
        assert not decision.should_rebalance
        assert decision.predicted_improvement < 0

    def test_tiny_improvement_blocked_by_hysteresis(self, policy, names):
        current = Allocation(names, [1, 2, 3])
        proposed = Allocation(names, [2, 2, 2])
        decision = policy.evaluate(current, proposed, 1.0, 0.97)
        assert not decision.should_rebalance
        assert "hysteresis" in decision.reason

    def test_improvement_below_amortised_cost_blocked(self, names):
        expensive = RebalancePolicy(
            migration_cost=1000.0,
            amortisation_horizon=10.0,
            relative_threshold=0.0,
        )
        current = Allocation(names, [1, 2, 3])
        proposed = Allocation(names, [2, 2, 2])
        decision = expensive.evaluate(current, proposed, 10.0, 5.0)
        assert not decision.should_rebalance
        assert "migration" in decision.reason


class TestMeasuredAnchoring:
    def test_bias_scaling_prevents_false_improvement(self, policy, names):
        """Model underestimates 2x: an equivalent-by-model proposal must
        not look like an improvement just because its raw estimate is
        below the measurement."""
        current = Allocation(names, [1, 2, 3])
        proposed = Allocation(names, [2, 2, 2])
        # Model says both cost 1.0; measurement says current is 2.0.
        decision = policy.evaluate(
            current, proposed, 1.0, 1.0, measured_sojourn=2.0
        )
        assert not decision.should_rebalance

    def test_bias_scaling_passes_real_improvement(self, policy, names):
        current = Allocation(names, [1, 2, 3])
        proposed = Allocation(names, [2, 2, 2])
        # Model: 1.0 -> 0.5 (50% better); measurement anchors at 2.0.
        decision = policy.evaluate(
            current, proposed, 1.0, 0.5, measured_sojourn=2.0
        )
        assert decision.should_rebalance
        # Improvement is expressed at the measured scale: 2.0 - 0.5*2 = 1.0
        assert decision.predicted_improvement == pytest.approx(1.0)


class TestValidation:
    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            RebalancePolicy(migration_cost=-1.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            RebalancePolicy(amortisation_horizon=0.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            RebalancePolicy(relative_threshold=1.5)
