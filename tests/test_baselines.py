"""Tests for the baseline allocators."""

import pytest

from repro.baselines import (
    ProportionalAllocator,
    RandomAllocator,
    ThresholdScaler,
    UniformAllocator,
)
from repro.exceptions import InfeasibleAllocationError, SchedulingError
from repro.scheduler import Allocation, assign_processors


class TestUniform:
    def test_uses_full_budget(self, chain_model):
        allocation = UniformAllocator().allocate(chain_model, 15)
        assert allocation.total == 15

    def test_stability_floor_respected(self, chain_model):
        allocation = UniformAllocator().allocate(chain_model, 15)
        for name, minimum in zip(
            chain_model.operator_names, chain_model.min_allocation()
        ):
            assert allocation[name] >= minimum

    def test_infeasible_raises(self, chain_model):
        with pytest.raises(InfeasibleAllocationError):
            UniformAllocator().allocate(
                chain_model, chain_model.min_total_processors() - 1
            )

    def test_even_spread_of_extras(self, chain_model):
        floor = chain_model.min_allocation()
        allocation = UniformAllocator().allocate(
            chain_model, sum(floor) + 3
        )
        extras = [
            allocation[name] - minimum
            for name, minimum in zip(chain_model.operator_names, floor)
        ]
        assert extras == [1, 1, 1]


class TestProportional:
    def test_uses_full_budget(self, chain_model):
        allocation = ProportionalAllocator().allocate(chain_model, 20)
        assert allocation.total == 20

    def test_higher_load_gets_more(self, chain_model):
        # Operator b has the largest offered load in the chain fixture.
        allocation = ProportionalAllocator().allocate(chain_model, 25)
        assert allocation["b"] >= allocation["a"]
        assert allocation["b"] >= allocation["c"]


class TestRandom:
    def test_uses_full_budget_and_feasible(self, chain_model):
        allocation = RandomAllocator().allocate(chain_model, 18)
        assert allocation.total == 18
        floor = chain_model.min_allocation()
        for name, minimum in zip(chain_model.operator_names, floor):
            assert allocation[name] >= minimum

    def test_reproducible_with_seed(self, chain_model):
        import random as _random

        a = RandomAllocator(_random.Random(1)).allocate(chain_model, 18)
        b = RandomAllocator(_random.Random(1)).allocate(chain_model, 18)
        assert a == b


class TestDRSBeatsBaselines:
    def test_drs_model_value_at_least_as_good(self, chain_model):
        kmax = 18
        drs_value = chain_model.expected_sojourn(
            list(assign_processors(chain_model, kmax).vector)
        )
        for allocator in (
            UniformAllocator(),
            ProportionalAllocator(),
            RandomAllocator(),
        ):
            other = allocator.allocate(chain_model, kmax)
            other_value = chain_model.expected_sojourn(list(other.vector))
            assert drs_value <= other_value + 1e-12


class TestThresholdScaler:
    def test_scales_up_overloaded(self):
        scaler = ThresholdScaler(high_watermark=0.8, low_watermark=0.3)
        current = Allocation(["a", "b"], [2, 2])
        updated = scaler.update(current, [10.0, 1.0], [6.0, 6.0])
        assert updated["a"] == 3  # rho was 10/12 = 0.83 > 0.8
        assert updated["b"] == 2

    def test_scales_down_idle(self):
        scaler = ThresholdScaler(high_watermark=0.9, low_watermark=0.5)
        current = Allocation(["a", "b"], [4, 2])
        updated = scaler.update(current, [2.0, 9.0], [6.0, 6.0])
        assert updated["a"] == 3  # rho was 2/24 = 0.08 < 0.5

    def test_never_breaks_stability(self):
        scaler = ThresholdScaler(
            high_watermark=0.99, low_watermark=0.98, max_steps_per_update=10
        )
        current = Allocation(["a"], [3])
        # rho = 10 / (3*4) = 0.83 < 0.98 wants scale-down, but 2 executors
        # would give rho = 1.25 -> must stay at 3.
        updated = scaler.update(current, [10.0], [4.0])
        assert updated["a"] == 3

    def test_kmax_cap(self):
        scaler = ThresholdScaler(max_steps_per_update=10)
        current = Allocation(["a"], [2])
        updated = scaler.update(current, [50.0], [10.0], kmax=3)
        assert updated.total <= 3

    def test_converges_to_stable_point(self, chain_model):
        scaler = ThresholdScaler()
        allocation = Allocation(
            list(chain_model.operator_names), chain_model.min_allocation()
        )
        lams = chain_model.network.arrival_rates
        mus = chain_model.network.service_rates
        for _ in range(60):
            updated = scaler.update(allocation, lams, mus, kmax=30)
            if updated == allocation:
                break
            allocation = updated
        assert updated == allocation  # reached a fixed point

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(SchedulingError):
            ThresholdScaler(high_watermark=0.4, low_watermark=0.5)

    def test_rejects_mismatched_rates(self):
        scaler = ThresholdScaler()
        with pytest.raises(SchedulingError):
            scaler.update(Allocation(["a"], [1]), [1.0, 2.0], [1.0])
