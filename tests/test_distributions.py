"""Tests for repro.randomness.distributions (incl. moment validation)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.randomness.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Mixture,
    Pareto,
    Scaled,
    Shifted,
    Uniform,
    distribution_from_spec,
)


def sample_mean(dist, n=20000, seed=1):
    rng = random.Random(seed)
    return sum(dist.sample(rng) for _ in range(n)) / n


class TestDeterministic:
    def test_sample_is_constant(self, rng):
        d = Deterministic(2.5)
        assert d.sample(rng) == 2.5

    def test_moments(self):
        d = Deterministic(2.5)
        assert d.mean == 2.5
        assert d.variance == 0.0
        assert d.scv == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Deterministic(0)


class TestExponential:
    def test_moments(self):
        d = Exponential(rate=4.0)
        assert d.mean == pytest.approx(0.25)
        assert d.variance == pytest.approx(0.0625)
        assert d.scv == pytest.approx(1.0)

    def test_from_mean(self):
        d = Exponential.from_mean(0.5)
        assert d.rate == pytest.approx(2.0)

    def test_empirical_mean(self):
        d = Exponential(rate=2.0)
        assert sample_mean(d) == pytest.approx(0.5, rel=0.05)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Exponential(rate=0.0)


class TestUniform:
    def test_moments(self):
        d = Uniform(1.0, 25.0)
        assert d.mean == pytest.approx(13.0)
        assert d.variance == pytest.approx(24.0**2 / 12.0)

    def test_samples_in_range(self, rng):
        d = Uniform(2.0, 3.0)
        for _ in range(100):
            assert 2.0 <= d.sample(rng) <= 3.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 2.0)

    def test_rejects_negative_low(self):
        with pytest.raises(ValueError):
            Uniform(-1.0, 2.0)


class TestLogNormal:
    def test_moments(self):
        d = LogNormal(mean=10.0, scv=0.5)
        assert d.mean == pytest.approx(10.0)
        assert d.scv == pytest.approx(0.5)

    def test_empirical_mean(self):
        d = LogNormal(mean=2.0, scv=1.5)
        assert sample_mean(d, n=60000) == pytest.approx(2.0, rel=0.08)

    def test_rejects_bad_scv(self):
        with pytest.raises(ValueError):
            LogNormal(mean=1.0, scv=0.0)


class TestGammaErlang:
    def test_gamma_moments(self):
        d = Gamma(shape=4.0, scale=0.5)
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx(1.0)

    def test_erlang_scv(self):
        d = Erlang(k=4, rate=2.0)
        assert d.mean == pytest.approx(2.0)
        assert d.scv == pytest.approx(0.25)

    def test_erlang_rejects_fractional_k(self):
        with pytest.raises(ValueError):
            Erlang(k=0, rate=1.0)


class TestHyperExponential:
    def test_balanced_fit_moments(self):
        d = HyperExponential.balanced_from_mean_scv(mean=3.0, scv=4.0)
        assert d.mean == pytest.approx(3.0, rel=1e-9)
        assert d.scv == pytest.approx(4.0, rel=1e-9)

    def test_requires_scv_above_one(self):
        with pytest.raises(ValueError):
            HyperExponential.balanced_from_mean_scv(mean=1.0, scv=0.9)

    def test_empirical_mean(self):
        d = HyperExponential.balanced_from_mean_scv(mean=1.0, scv=3.0)
        assert sample_mean(d, n=60000) == pytest.approx(1.0, rel=0.08)


class TestPareto:
    def test_moments(self):
        d = Pareto(alpha=3.0, minimum=2.0)
        assert d.mean == pytest.approx(3.0)
        assert d.variance == pytest.approx(3.0)

    def test_samples_above_minimum(self, rng):
        d = Pareto(alpha=2.5, minimum=1.0)
        for _ in range(100):
            assert d.sample(rng) >= 1.0

    def test_rejects_heavy_tail(self):
        with pytest.raises(ValueError):
            Pareto(alpha=2.0, minimum=1.0)


class TestEmpirical:
    def test_uniform_weights_moments(self):
        d = Empirical([1.0, 2.0, 3.0])
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx(2.0 / 3.0)

    def test_weighted(self):
        d = Empirical([0.0, 10.0], weights=[9, 1])
        assert d.mean == pytest.approx(1.0)

    def test_samples_from_support(self, rng):
        d = Empirical([5.0, 7.0])
        assert all(d.sample(rng) in (5.0, 7.0) for _ in range(50))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            Empirical([-1.0])


class TestMixture:
    def test_moments(self):
        d = Mixture([Deterministic(1.0), Deterministic(3.0)], [1, 1])
        assert d.mean == pytest.approx(2.0)
        assert d.variance == pytest.approx(1.0)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            Mixture([Deterministic(1.0)], [1, 2])


class TestShiftedScaled:
    def test_shifted_moments(self):
        d = Shifted(Exponential(rate=1.0), offset=2.0)
        assert d.mean == pytest.approx(3.0)
        assert d.variance == pytest.approx(1.0)

    def test_scaled_moments(self):
        d = Scaled(Exponential(rate=1.0), factor=3.0)
        assert d.mean == pytest.approx(3.0)
        assert d.variance == pytest.approx(9.0)

    def test_with_mean_preserves_scv(self):
        base = LogNormal(mean=2.0, scv=1.5)
        rescaled = base.with_mean(5.0)
        assert rescaled.mean == pytest.approx(5.0)
        assert rescaled.scv == pytest.approx(1.5)


class TestSpecBuilder:
    def test_exponential_by_mean(self):
        d = distribution_from_spec({"type": "exponential", "mean": 0.5})
        assert d.mean == pytest.approx(0.5)

    def test_uniform(self):
        d = distribution_from_spec({"type": "uniform", "low": 1, "high": 3})
        assert d.mean == pytest.approx(2.0)

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            distribution_from_spec({"type": "zeta"})

    def test_missing_type(self):
        with pytest.raises(ValueError, match="'type'"):
            distribution_from_spec({"mean": 1})

    def test_missing_parameter(self):
        with pytest.raises(ValueError, match="missing key"):
            distribution_from_spec({"type": "uniform", "low": 1})


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=0.01, max_value=100.0),
    scv=st.floats(min_value=0.05, max_value=5.0),
)
def test_lognormal_moment_roundtrip(mean, scv):
    """LogNormal parameterisation reproduces the requested moments."""
    d = LogNormal(mean=mean, scv=scv)
    assert d.mean == pytest.approx(mean, rel=1e-9)
    assert d.scv == pytest.approx(scv, rel=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    rate=st.floats(min_value=0.01, max_value=1000.0),
    factor=st.floats(min_value=0.01, max_value=100.0),
)
def test_scaled_scv_invariant(rate, factor):
    """Scaling never changes the squared coefficient of variation."""
    base = Exponential(rate=rate)
    assert Scaled(base, factor).scv == pytest.approx(base.scv, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(samples=st.integers(min_value=1, max_value=20))
def test_all_distributions_sample_non_negative(samples):
    """Every distribution produces non-negative values (queueing needs it)."""
    rng = random.Random(samples)
    distributions = [
        Deterministic(1.0),
        Exponential(1.0),
        Uniform(0.5, 2.0),
        LogNormal(1.0, 1.0),
        Gamma(2.0, 1.0),
        Erlang(3, 2.0),
        HyperExponential.balanced_from_mean_scv(1.0, 2.0),
        Pareto(3.0, 0.5),
        Empirical([0.0, 1.0, 2.0]),
        Shifted(Exponential(1.0), 0.5),
        Scaled(Exponential(1.0), 2.0),
    ]
    for dist in distributions:
        for _ in range(samples):
            assert dist.sample(rng) >= 0.0
