"""Per-operator stage metrics: validate the simulator against theory
stage by stage (a stronger check than end-to-end sojourn alone)."""

import pytest

from repro.queueing import erlang
from repro.scheduler import Allocation
from repro.sim import RuntimeOptions, Simulator, TopologyRuntime
from repro.topology import TopologyBuilder


def run(topology, allocation, duration, **options):
    simulator = Simulator()
    runtime = TopologyRuntime(
        simulator, topology, allocation, RuntimeOptions(**options)
    )
    runtime.start()
    simulator.run_until(duration)
    return runtime.stats()


class TestStageMetrics:
    def test_single_operator_wait_matches_erlang(self):
        topology = (
            TopologyBuilder("mmk")
            .add_spout("src", rate=8.0)
            .add_operator("op", mu=1.0)
            .connect("src", "op")
            .build()
        )
        stats = run(
            topology,
            Allocation(["op"], [10]),
            3000.0,
            queue_discipline="shared",
            seed=3,
        )
        theory_wait = erlang.expected_waiting_time(8.0, 1.0, 10)
        assert stats.per_operator_wait["op"] == pytest.approx(
            theory_wait, rel=0.15
        )
        assert stats.per_operator_service["op"] == pytest.approx(1.0, rel=0.05)

    def test_unit_gain_chain_stage_waits(self):
        """With unit gains, each stage sees a Poisson flow (Burke's
        theorem for the M/M/k departure process) and must match its own
        M/M/k waiting time."""
        topology = (
            TopologyBuilder("burke")
            .add_spout("src", rate=10.0)
            .add_operator("a", mu=4.0)
            .add_operator("b", mu=3.0)
            .add_operator("c", mu=20.0)
            .connect("src", "a")
            .connect("a", "b")
            .connect("b", "c")
            .build()
        )
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        stats = run(
            topology, allocation, 3000.0, queue_discipline="shared", seed=5
        )
        expected = {
            "a": erlang.expected_waiting_time(10.0, 4.0, 5),
            "b": erlang.expected_waiting_time(10.0, 3.0, 6),
            "c": erlang.expected_waiting_time(10.0, 20.0, 3),
        }
        for name, theory in expected.items():
            measured = stats.per_operator_wait[name]
            assert measured == pytest.approx(theory, rel=0.25, abs=0.002), name

    def test_batched_arrivals_wait_longer_than_mmk(self, chain_topology):
        """A gain-2 edge delivers tuples in simultaneous pairs; batch
        arrivals queue longer than the Poisson M/M/k prediction — one of
        the model deviations the paper's robustness claim covers."""
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        stats = run(
            chain_topology,
            allocation,
            3000.0,
            queue_discipline="shared",
            seed=5,
        )
        theory_b = erlang.expected_waiting_time(20.0, 6.0, 6)
        assert stats.per_operator_wait["b"] > 1.5 * theory_b

    def test_service_means_match_distributions(self, chain_topology):
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        stats = run(chain_topology, allocation, 1000.0, seed=7)
        assert stats.per_operator_service["a"] == pytest.approx(0.25, rel=0.1)
        assert stats.per_operator_service["b"] == pytest.approx(1 / 6, rel=0.1)
        assert stats.per_operator_service["c"] == pytest.approx(0.05, rel=0.1)

    def test_unprocessed_operator_reports_none(self):
        topology = (
            TopologyBuilder("t")
            .add_spout("s", rate=0.001)
            .add_operator("op", mu=10.0)
            .connect("s", "op")
            .build()
        )
        stats = run(topology, Allocation(["op"], [1]), 1.0, seed=9)
        assert stats.per_operator_wait["op"] is None

    def test_wait_grows_with_utilisation(self):
        topology = (
            TopologyBuilder("t")
            .add_spout("s", rate=8.0)
            .add_operator("op", mu=1.0)
            .connect("s", "op")
            .build()
        )
        lightly = run(topology, Allocation(["op"], [16]), 800.0, seed=11)
        heavily = run(topology, Allocation(["op"], [9]), 800.0, seed=11)
        assert (
            heavily.per_operator_wait["op"] > 5 * lightly.per_operator_wait["op"]
        )
