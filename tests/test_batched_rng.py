"""Exact-replay guarantees of the batched randomness layer.

The tentpole contract: :class:`BatchedDraws` must return the *exact*
per-consumer scalar sequence of ``random.Random`` — bit-for-bit — across
refill boundaries, for every draw method the simulator uses, and for
mixed consumers (MMPP interleaves ``expovariate`` streams; the fallback
surface interleaves batched and non-batched methods).
"""

import math
import random

import pytest

from repro.randomness import MMPP2
from repro.randomness.batched import BatchedDraws, BatchedExponential


def _pairs(seed, block):
    return random.Random(seed), BatchedDraws(random.Random(seed), block=block)


class TestExactReplay:
    @pytest.mark.parametrize("block", [2, 7, 16, 1024])
    def test_random_replays_exactly_across_refills(self, block):
        scalar, batched = _pairs(11, block)
        assert [batched.random() for _ in range(3 * block + 5)] == [
            scalar.random() for _ in range(3 * block + 5)
        ]

    @pytest.mark.parametrize("block", [2, 7, 16])
    def test_expovariate_replays_exactly(self, block):
        scalar, batched = _pairs(23, block)
        assert [batched.expovariate(3.5) for _ in range(50)] == [
            scalar.expovariate(3.5) for _ in range(50)
        ]

    def test_paretovariate_replays_exactly(self):
        scalar, batched = _pairs(5, 7)
        assert [batched.paretovariate(1.8) for _ in range(40)] == [
            scalar.paretovariate(1.8) for _ in range(40)
        ]

    def test_uniform_replays_exactly(self):
        scalar, batched = _pairs(9, 7)
        assert [batched.uniform(-2.0, 5.0) for _ in range(40)] == [
            scalar.uniform(-2.0, 5.0) for _ in range(40)
        ]

    def test_int_seed_constructor(self):
        scalar = random.Random(99)
        batched = BatchedDraws(99, block=8)
        assert [batched.random() for _ in range(20)] == [
            scalar.random() for _ in range(20)
        ]

    def test_block_validation(self):
        with pytest.raises(ValueError):
            BatchedDraws(1, block=1)


class TestMixedConsumers:
    """The satellite property test: mixed exponential / pareto / MMPP
    consumers, each on its own stream, replay the scalar path exactly
    across refill boundaries."""

    @pytest.mark.parametrize("seed", [1, 7, 1234, 87652])
    @pytest.mark.parametrize("block", [2, 5, 16])
    def test_mixed_consumer_property(self, seed, block):
        # Three independent consumers per path, same derived seeds.
        master = random.Random(seed)
        seeds = [master.randrange(2**63) for _ in range(3)]

        scalar_rngs = [random.Random(s) for s in seeds]
        batched_rngs = [
            BatchedDraws(random.Random(s), block=block) for s in seeds
        ]

        def consume(rngs):
            expo_rng, pareto_rng, mmpp_rng = rngs
            mmpp = MMPP2(
                rate_low=2.0, rate_high=40.0,
                switch_to_high=0.5, switch_to_low=1.5,
            )
            out = []
            now = 0.0
            # Interleave so every consumer crosses several refill
            # boundaries in an order decided by the shared schedule.
            schedule = random.Random(seed ^ 0xBEEF)
            for _ in range(120):
                which = schedule.randrange(3)
                if which == 0:
                    out.append(expo_rng.expovariate(3.0))
                elif which == 1:
                    out.append(pareto_rng.paretovariate(2.5))
                else:
                    gap = mmpp.next_gap(now, mmpp_rng)
                    now += gap
                    out.append(gap)
            return out

        assert consume(batched_rngs) == consume(scalar_rngs)

    def test_fallback_method_resyncs_stream(self):
        # A non-batched method mid-block must land on the exact value the
        # scalar rng would produce at that position, and batched draws
        # must continue the stream seamlessly afterwards.
        scalar, batched = _pairs(42, 16)
        trace_s, trace_b = [], []
        for source, trace in ((scalar, trace_s), (batched, trace_b)):
            trace.append(source.random())
            trace.append(source.expovariate(1.5))
            trace.append(source.gauss(0.0, 1.0))  # fallback path
            trace.append(source.random())
            trace.append(source.gammavariate(2.0, 1.0))  # fallback path
            trace.append(source.expovariate(0.5))
        assert trace_b == trace_s

    def test_getstate_reflects_scalar_position(self):
        scalar, batched = _pairs(3, 8)
        for _ in range(5):  # mid-block on the batched side
            scalar.random()
            batched.random()
        assert batched.getstate() == scalar.getstate()
        # And the stream continues identically after materialisation.
        assert [batched.random() for _ in range(20)] == [
            scalar.random() for _ in range(20)
        ]


class TestRuntimeIntegration:
    """The RuntimeOptions knobs: batched draws and scheduler selection
    must leave simulation results bit-identical."""

    @staticmethod
    def _run(**options):
        from repro.scheduler import Allocation
        from repro.sim import RuntimeOptions, Simulator, TopologyRuntime
        from repro.topology import TopologyBuilder

        topology = (
            TopologyBuilder("mmk")
            .add_spout("src", rate=8.0)
            .add_operator("op", mu=1.0)
            .connect("src", "op")
            .build()
        )
        opts = RuntimeOptions(seed=5, **options)
        sim = Simulator(scheduler=opts.scheduler)
        runtime = TopologyRuntime(sim, topology, Allocation(["op"], [10]), opts)
        runtime.start()
        sim.run_until(150.0)
        stats = runtime.stats(warmup=10.0)
        return (
            stats.external_tuples,
            stats.completed_trees,
            stats.mean_sojourn,
            stats.p95_sojourn,
        )

    def test_batched_draws_bit_identical(self):
        assert self._run(batched_draws=True) == self._run()

    def test_scheduler_knob_bit_identical(self):
        reference = self._run(scheduler="heap")
        assert self._run(scheduler="calendar") == reference
        assert self._run(scheduler="auto") == reference

    def test_scheduler_knob_validated(self):
        from repro.exceptions import SimulationError
        from repro.sim import RuntimeOptions

        with pytest.raises(SimulationError):
            RuntimeOptions(scheduler="splay-tree")


class TestBatchedExponential:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BatchedExponential(rate=0.0, seed=1)

    def test_draw_block_statistics(self):
        gen = BatchedExponential(rate=4.0, seed=7)
        block = gen.draw_block(20000)
        assert block.min() >= 0.0
        assert abs(float(block.mean()) - 0.25) < 0.01

    def test_scalar_draw_consumes_blocks(self):
        gen = BatchedExponential(rate=1.0, seed=7, block=4)
        draws = [gen.draw() for _ in range(10)]
        assert all(d >= 0.0 for d in draws)
        assert len(set(draws)) == 10

    def test_shared_stream_consumes_same_uniforms(self):
        # Seeding from a random.Random consumes the same underlying
        # uniforms the scalar path would (same positions, different
        # transform arithmetic).
        rng = random.Random(13)
        gen = BatchedExponential(rate=2.0, seed=random.Random(13))
        scalar = [rng.expovariate(2.0) for _ in range(100)]
        vector = gen.draw_block(100)
        for s, v in zip(scalar, vector):
            assert math.isclose(s, float(v), rel_tol=1e-12)
