"""Cross-cutting coverage: enumeration counts, queue-length formulas,
integration of model variants with the optimisers, repr smoke tests."""

import math

import pytest

from repro.model import PerformanceModel, RefinedPerformanceModel
from repro.queueing import (
    MMkQueue,
    expected_queue_length,
    utilisation,
)
from repro.scheduler import Allocation, assign_processors
from repro.scheduler.exhaustive import enumerate_allocations
from repro.scheduler.assign import assignment_trace


class TestEnumeration:
    def test_composition_count(self, chain_model):
        """Number of allocations of T processors over N operators above
        the floors is C(T - floor_sum + N - 1, N - 1)."""
        floors = chain_model.min_allocation()
        total = sum(floors) + 4
        allocations = list(enumerate_allocations(chain_model, total))
        # 4 extra over 3 operators: C(6, 2) = 15.
        assert len(allocations) == 15
        assert all(a.total == total for a in allocations)
        assert len(set(allocations)) == len(allocations)

    def test_below_floor_yields_nothing(self, chain_model):
        floor = chain_model.min_total_processors()
        assert list(enumerate_allocations(chain_model, floor - 1)) == []

    def test_exact_floor_single_allocation(self, chain_model):
        floor = chain_model.min_total_processors()
        allocations = list(enumerate_allocations(chain_model, floor))
        assert len(allocations) == 1
        assert list(allocations[0].vector) == chain_model.min_allocation()


class TestQueueFormulas:
    def test_utilisation(self):
        assert utilisation(6.0, 2.0, 4) == pytest.approx(0.75)

    def test_queue_length_littles_law(self):
        lam, mu, k = 8.0, 3.0, 4
        queue = MMkQueue(lam, mu, k)
        assert expected_queue_length(lam, mu, k) == pytest.approx(
            lam * queue.mean_waiting_time
        )

    def test_queue_length_saturated(self):
        assert math.isinf(expected_queue_length(8.0, 1.0, 4))


class TestModelVariantIntegration:
    def test_trace_works_with_refined_model(self, chain_topology):
        refined = RefinedPerformanceModel.from_topology(chain_topology)
        trace = assignment_trace(refined, 16)
        values = [refined.expected_sojourn(list(a.vector)) for a in trace]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_refined_and_plain_agree_on_floor(self, chain_topology):
        plain = PerformanceModel.from_topology(chain_topology)
        refined = RefinedPerformanceModel.from_topology(chain_topology)
        assert plain.min_allocation() == refined.min_allocation()

    def test_use_all_false_stops_on_zero_benefit(self):
        """With a zero-arrival operator, use_all=False leaves budget
        unspent once only zero-benefit moves remain."""
        model = PerformanceModel.from_measurements(
            ["busy", "idle"], [10.0, 0.0], [4.0, 4.0], external_rate=10.0
        )
        generous = assign_processors(model, 50, use_all=False)
        assert generous.total < 50
        assert generous["idle"] == 1


class TestReprSmoke:
    """Developer-facing reprs should never raise and should carry the
    identifying fields."""

    def test_core_reprs(self, chain_topology, chain_model):
        from repro.config import DRSConfig
        from repro.measurement import Measurer, TupleTreeTracker
        from repro.scheduler import DRSController, RebalancePolicy
        from repro.sim import Cluster, RebalanceCostModel, Simulator

        objects = [
            chain_topology,
            chain_model,
            chain_model.network,
            Allocation(["a", "b"], [1, 2]),
            Measurer(["a"]),
            TupleTreeTracker(),
            RebalancePolicy(),
            DRSController(["a"], DRSConfig(kmax=5)),
            Simulator(),
            Cluster(),
            RebalanceCostModel(),
        ]
        for obj in objects:
            text = repr(obj)
            assert type(obj).__name__.split("_")[-1] in text or len(text) > 0

    def test_estimate_repr_fields(self, chain_model):
        estimate = chain_model.estimate([4, 5, 2])
        assert estimate.allocation == (4, 5, 2)
        assert "a" in estimate.per_operator


class TestAllocationEdgeCases:
    def test_spec_round_trip(self):
        names = ["x", "y", "z"]
        for spec in ("1:1:1", "10:11:1", "100:2:37"):
            assert Allocation.parse(names, spec).spec() == spec

    def test_single_operator(self):
        allocation = Allocation.parse(["only"], "7")
        assert allocation.total == 7
