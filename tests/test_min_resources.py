"""Tests for the Program 6 solver (minimum processors for Tmax)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleAllocationError
from repro.model import PerformanceModel
from repro.scheduler import min_processors_for_target
from repro.scheduler.exhaustive import exhaustive_min_processors
from repro.scheduler.min_resources import required_machines


def model_from(lams, mus):
    names = [f"op{i}" for i in range(len(lams))]
    return PerformanceModel.from_measurements(
        names, lams, mus, external_rate=lams[0]
    )


class TestMinProcessorsForTarget:
    def test_meets_target(self, chain_model):
        allocation = min_processors_for_target(chain_model, 1.0)
        assert chain_model.expected_sojourn(list(allocation.vector)) <= 1.0

    def test_minimality_one_less_fails(self, chain_model):
        """Removing any single processor violates the target or stability."""
        tmax = 1.0
        allocation = min_processors_for_target(chain_model, tmax)
        floor = chain_model.min_allocation()
        for index, name in enumerate(chain_model.operator_names):
            if allocation[name] <= floor[index]:
                continue
            reduced = allocation.decrement(name)
            assert (
                chain_model.expected_sojourn(list(reduced.vector)) > tmax
            ), f"removing a processor from {name} still met the target"

    def test_matches_exhaustive_total(self, chain_model):
        tmax = 1.2
        greedy = min_processors_for_target(chain_model, tmax)
        best, _ = exhaustive_min_processors(chain_model, tmax)
        assert greedy.total == best.total

    def test_loose_target_returns_floor(self, chain_model):
        allocation = min_processors_for_target(chain_model, 1e9)
        assert list(allocation.vector) == chain_model.min_allocation()

    def test_impossible_target_raises(self, chain_model):
        # Below the pure-service-time floor no allocation works.
        with pytest.raises(InfeasibleAllocationError, match="floor"):
            min_processors_for_target(chain_model, 1e-9)

    def test_hard_limit_respected(self, chain_model):
        with pytest.raises(InfeasibleAllocationError):
            min_processors_for_target(
                chain_model, 0.51, hard_limit=chain_model.min_total_processors()
            )

    def test_rejects_non_positive_tmax(self, chain_model):
        with pytest.raises(ValueError):
            min_processors_for_target(chain_model, 0.0)

    def test_paper_vld_scenario(self, vld_like_topology):
        """Program 6 on the calibrated VLD: a Tmax between E[T](8:8:1) and
        E[T](10:11:1) needs more than 17 but at most 22 executors."""
        model = PerformanceModel.from_topology(vld_like_topology)
        e_17 = model.expected_sojourn([8, 8, 1])
        e_22 = model.expected_sojourn([10, 11, 1])
        tmax = (e_17 + e_22) / 2.0
        allocation = min_processors_for_target(model, tmax)
        assert 17 < allocation.total <= 22


class TestRequiredMachines:
    def test_exact_fit(self):
        assert required_machines(20, 5) == 4

    def test_round_up(self):
        assert required_machines(21, 5) == 5

    def test_zero_executors(self):
        assert required_machines(0, 5) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            required_machines(-1, 5)
        with pytest.raises(ValueError):
            required_machines(1, 0)


@settings(max_examples=50, deadline=None)
@given(
    loads=st.lists(
        st.tuples(
            st.floats(min_value=0.5, max_value=20.0),
            st.floats(min_value=0.5, max_value=10.0),
        ),
        min_size=1,
        max_size=3,
    ),
    tightness=st.floats(min_value=1.05, max_value=5.0),
)
def test_program6_meets_and_is_minimal_total(loads, tightness):
    """The greedy answer meets Tmax and no smaller total does (checked
    against exhaustive search over totals)."""
    lams = [lam for lam, _ in loads]
    mus = [mu for _, mu in loads]
    model = model_from(lams, mus)
    floor_value = model.expected_sojourn(
        [k + 30 for k in model.min_allocation()]
    )
    tmax = floor_value * tightness
    greedy = min_processors_for_target(model, tmax)
    assert model.expected_sojourn(list(greedy.vector)) <= tmax
    best, _ = exhaustive_min_processors(model, tmax, search_limit=greedy.total)
    assert best.total == greedy.total
