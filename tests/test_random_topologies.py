"""Property tests over randomly generated topologies.

Hypothesis builds arbitrary layered topologies (random operator counts,
gains, splits, joins, optional feedback edge) and checks the invariants
that must hold for *every* valid application:

- traffic equations agree with simulated per-operator throughput;
- tuple-tree conservation (external = completed + in-flight + dropped);
- Theorem 1 (greedy == exhaustive) on the derived model;
- Program 6's answer meets its target and respects the floor.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.model import PerformanceModel
from repro.scheduler import (
    Allocation,
    assign_processors,
    exhaustive_best_allocation,
    min_processors_for_target,
)
from repro.sim import RuntimeOptions, Simulator, TopologyRuntime
from repro.topology import TopologyBuilder


@st.composite
def random_topology(draw):
    """A random layered topology: spout -> layer1 -> layer2 (optional
    feedback from the last operator to the first with gain < 0.5)."""
    n_layer1 = draw(st.integers(min_value=1, max_value=2))
    n_layer2 = draw(st.integers(min_value=1, max_value=2))
    rate = draw(st.floats(min_value=2.0, max_value=20.0))
    builder = TopologyBuilder("random").add_spout("src", rate=rate)

    layer1 = [f"a{i}" for i in range(n_layer1)]
    layer2 = [f"b{i}" for i in range(n_layer2)]
    for name in layer1:
        mu = draw(st.floats(min_value=1.0, max_value=30.0))
        builder.add_operator(name, mu=mu)
    for name in layer2:
        mu = draw(st.floats(min_value=1.0, max_value=30.0))
        builder.add_operator(name, mu=mu)
    # Spout feeds every layer-1 operator with a random share.
    for name in layer1:
        gain = draw(st.floats(min_value=0.2, max_value=1.5))
        builder.connect("src", name, gain=gain)
    # Random layer-1 -> layer-2 edges, then force coverage so every
    # layer-2 operator is reachable.
    connected = set()
    covered_targets = set()
    for src in layer1:
        for target in layer2:
            if draw(st.booleans()):
                gain = draw(st.floats(min_value=0.2, max_value=2.0))
                builder.connect(src, target, gain=gain)
                connected.add((src, target))
                covered_targets.add(target)
    for target in layer2:
        if target not in covered_targets:
            gain = draw(st.floats(min_value=0.2, max_value=2.0))
            builder.connect(layer1[0], target, gain=gain)
            connected.add((layer1[0], target))
    if draw(st.booleans()):
        feedback_gain = draw(st.floats(min_value=0.05, max_value=0.4))
        builder.connect(layer2[-1], layer1[0], gain=feedback_gain)
    return builder.build()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(topology=random_topology(), slack=st.integers(min_value=1, max_value=4))
def test_theorem1_on_random_topologies(topology, slack):
    """Greedy == exhaustive for every generated topology."""
    model = PerformanceModel.from_topology(topology)
    kmax = model.min_total_processors() + slack
    if kmax > model.min_total_processors() + 12:
        kmax = model.min_total_processors() + 12
    greedy = assign_processors(model, kmax)
    _, best_value = exhaustive_best_allocation(model, kmax)
    assert model.expected_sojourn(list(greedy.vector)) == pytest.approx(
        best_value, rel=1e-9
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(topology=random_topology(), factor=st.floats(min_value=1.1, max_value=4.0))
def test_program6_on_random_topologies(topology, factor):
    """Program 6's answer meets its target on every generated topology."""
    model = PerformanceModel.from_topology(topology)
    generous = model.expected_sojourn(
        [k + 25 for k in model.min_allocation()]
    )
    tmax = generous * factor
    allocation = min_processors_for_target(model, tmax)
    assert model.expected_sojourn(list(allocation.vector)) <= tmax
    assert all(
        allocation[name] >= floor
        for name, floor in zip(model.operator_names, model.min_allocation())
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(topology=random_topology(), seed=st.integers(min_value=0, max_value=99))
def test_simulation_invariants_on_random_topologies(topology, seed):
    """Conservation + throughput agreement for every generated topology."""
    model = PerformanceModel.from_topology(topology)
    # Comfortable allocation so the run reaches steady state quickly.
    allocation = Allocation(
        list(model.operator_names),
        [k + 2 for k in model.min_allocation()],
    )
    simulator = Simulator()
    runtime = TopologyRuntime(
        simulator, topology, allocation, RuntimeOptions(seed=seed)
    )
    runtime.start()
    simulator.run_until(150.0)
    runtime.check_conservation()
    stats = runtime.stats()
    # Per-operator throughput matches the traffic equations within noise.
    for name, lam in zip(model.operator_names, model.network.arrival_rates):
        expected = lam * 150.0
        if expected < 50:
            continue  # too few tuples for a tight statistical check
        assert stats.per_operator_processed[name] == pytest.approx(
            expected, rel=0.35
        ), name
