"""Unit tests for repro.utils.math_helpers and repro.utils.rng."""

import pytest

from repro.utils.math_helpers import (
    clamp,
    is_close,
    percentile,
    running_mean,
    safe_divide,
    weighted_mean,
)
from repro.utils.rng import RngFactory, derive_seed


class TestClamp:
    def test_inside_interval(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 0)


class TestWeightedMean:
    def test_uniform_weights(self):
        assert weighted_mean([1, 2, 3], [1, 1, 1]) == pytest.approx(2.0)

    def test_weighted(self):
        assert weighted_mean([1, 3], [3, 1]) == pytest.approx(1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1], [1, 2])

    def test_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [0, 0])

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            weighted_mean([1, 2], [1, -1])


class TestSafeDivide:
    def test_normal(self):
        assert safe_divide(6, 3) == 2

    def test_zero_denominator_default(self):
        assert safe_divide(6, 0) == 0.0

    def test_zero_denominator_custom(self):
        assert safe_divide(6, 0, default=-1) == -1


class TestRunningMean:
    def test_matches_builtin(self):
        values = [1.5, 2.5, 3.5, 10.0]
        assert running_mean(values) == pytest.approx(sum(values) / len(values))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            running_mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        assert percentile([1, 2, 3], 0) == 1
        assert percentile([1, 2, 3], 100) == 3

    def test_single_element(self):
        assert percentile([7], 95) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestIsClose:
    def test_identical(self):
        assert is_close(1.0, 1.0)

    def test_tiny_difference(self):
        assert is_close(1.0, 1.0 + 1e-13)

    def test_large_difference(self):
        assert not is_close(1.0, 1.1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_base(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_sensitivity(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")


class TestRngFactory:
    def test_streams_reproducible(self):
        first = RngFactory(7).stream("x").random()
        second = RngFactory(7).stream("x").random()
        assert first == second

    def test_streams_independent(self):
        factory = RngFactory(7)
        assert factory.stream("x").random() != factory.stream("y").random()

    def test_child_namespacing(self):
        factory = RngFactory(7)
        child = factory.child("sub")
        assert child.stream("x").random() != factory.stream("x").random()

    def test_random_seed_when_none(self):
        # Two factories without explicit seeds almost surely differ.
        a, b = RngFactory(), RngFactory()
        assert a.seed != b.seed
