"""Tests for the Allocation vector type."""

import pytest

from repro.exceptions import SchedulingError
from repro.scheduler import Allocation


class TestConstruction:
    def test_basic(self):
        a = Allocation(["x", "y"], [2, 3])
        assert a.total == 5
        assert a.vector == (2, 3)
        assert a["x"] == 2

    def test_parse_paper_notation(self):
        a = Allocation.parse(["s", "m", "g"], "10:11:1")
        assert a.vector == (10, 11, 1)
        assert a.spec() == "10:11:1"

    def test_parse_wrong_arity(self):
        with pytest.raises(SchedulingError):
            Allocation.parse(["s", "m"], "1:2:3")

    def test_parse_non_integer(self):
        with pytest.raises(SchedulingError):
            Allocation.parse(["s"], "x")

    def test_from_mapping(self):
        a = Allocation.from_mapping({"a": 1, "b": 2})
        assert a.names == ("a", "b")

    def test_rejects_zero_count(self):
        with pytest.raises(SchedulingError):
            Allocation(["a"], [0])

    def test_rejects_bool_count(self):
        with pytest.raises(SchedulingError):
            Allocation(["a"], [True])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchedulingError):
            Allocation(["a", "a"], [1, 2])

    def test_rejects_empty(self):
        with pytest.raises(SchedulingError):
            Allocation([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(SchedulingError):
            Allocation(["a"], [1, 2])


class TestMappingProtocol:
    def test_iteration_order(self):
        a = Allocation(["x", "y", "z"], [1, 2, 3])
        assert list(a) == ["x", "y", "z"]
        assert len(a) == 3

    def test_unknown_key(self):
        a = Allocation(["x"], [1])
        with pytest.raises(KeyError):
            a["ghost"]

    def test_as_dict(self):
        a = Allocation(["x", "y"], [1, 2])
        assert a.as_dict() == {"x": 1, "y": 2}


class TestTransformations:
    def test_increment(self):
        a = Allocation(["x", "y"], [1, 2])
        b = a.increment("x")
        assert b["x"] == 2
        assert a["x"] == 1  # immutability

    def test_decrement(self):
        a = Allocation(["x"], [2])
        assert a.decrement("x")["x"] == 1

    def test_decrement_below_one_rejected(self):
        a = Allocation(["x"], [1])
        with pytest.raises(SchedulingError):
            a.decrement("x")

    def test_with_count_unknown_operator(self):
        a = Allocation(["x"], [1])
        with pytest.raises(SchedulingError):
            a.with_count("ghost", 2)

    def test_l1_distance(self):
        a = Allocation(["x", "y"], [8, 12])
        b = Allocation(["x", "y"], [10, 11])
        assert a.l1_distance(b) == 3

    def test_l1_requires_same_operators(self):
        a = Allocation(["x"], [1])
        b = Allocation(["y"], [1])
        with pytest.raises(SchedulingError):
            a.l1_distance(b)

    def test_moves_from(self):
        a = Allocation(["x", "y", "z"], [10, 11, 1])
        b = Allocation(["x", "y", "z"], [8, 12, 2])
        assert a.moves_from(b) == {"x": 2, "y": -1, "z": -1}


class TestEqualityHash:
    def test_equal_allocations(self):
        assert Allocation(["x"], [1]) == Allocation(["x"], [1])

    def test_hashable(self):
        seen = {Allocation(["x"], [1]), Allocation(["x"], [1])}
        assert len(seen) == 1

    def test_different_counts_unequal(self):
        assert Allocation(["x"], [1]) != Allocation(["x"], [2])
