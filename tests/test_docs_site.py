"""Guard the MkDocs site without requiring mkdocs to be installed.

CI's ``docs-build`` job runs ``mkdocs build --strict``, but that only
helps if breakage is caught before a docs-toolchain environment exists.
These tests pin the three ways the site rots: nav entries pointing at
deleted pages, ``::: identifier`` mkdocstrings directives referencing
renamed APIs, and relative links between pages going stale.
"""

import importlib
import re
from pathlib import Path

import pytest
import yaml

REPO = Path(__file__).parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"

_DIRECTIVE = re.compile(r"^::: ([\w.]+)$", re.MULTILINE)
_LINK = re.compile(r"\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def _nav_paths(node):
    if isinstance(node, str):
        yield node
    elif isinstance(node, list):
        for item in node:
            yield from _nav_paths(item)
    elif isinstance(node, dict):
        for value in node.values():
            yield from _nav_paths(value)


def _load_config():
    return yaml.safe_load(MKDOCS_YML.read_text())


def test_mkdocs_config_parses_and_nav_files_exist():
    config = _load_config()
    assert config["site_name"]
    nav = list(_nav_paths(config["nav"]))
    assert nav, "mkdocs.yml has an empty nav"
    for page in nav:
        assert (DOCS / page).is_file(), f"nav references missing page {page}"


def test_docstring_pages_cover_the_new_subsystem():
    config = _load_config()
    nav = list(_nav_paths(config["nav"]))
    assert any("workloads" in page for page in nav)
    assert any(page.startswith("reference/") for page in nav)


def _doc_pages():
    return sorted(DOCS.rglob("*.md"))


@pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: p.name)
def test_mkdocstrings_identifiers_resolve(page):
    """Every `::: dotted.path` must import — mkdocs --strict fails on
    identifiers it cannot collect, so catch the rename here first."""
    for identifier in _DIRECTIVE.findall(page.read_text()):
        module_path, _, attribute = identifier.rpartition(".")
        module = importlib.import_module(module_path)
        assert hasattr(module, attribute), (
            f"{page.name}: mkdocstrings identifier {identifier!r} no"
            " longer exists"
        )


@pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: p.name)
def test_internal_links_resolve(page):
    for target in _LINK.findall(page.read_text()):
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (page.parent / target).resolve()
        assert resolved.exists(), f"{page.name}: broken link {target!r}"


def test_requirements_docs_pins_the_toolchain():
    text = (REPO / "requirements-docs.txt").read_text()
    for package in ("mkdocs==", "mkdocstrings==", "mkdocstrings-python=="):
        assert package in text
