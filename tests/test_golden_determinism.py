"""Golden determinism suite: the hot-path optimizations must be invisible.

The typed-event engine, O(1) routing state and incremental Erlang
evaluation are all required to keep simulation and solver outputs
**byte-identical** to the unoptimized runtime for identical seeds: same
RNG draw order, same event tie-breaking, same floating-point operation
chains.  This suite pins that down against fixtures generated from the
pre-optimization implementation (``tests/golden/*.json``).

Every float is compared through ``repr`` (round-trip exact); the full
completion stream of each simulation case is folded into a SHA-256
digest so even a single ulp of drift in any completion time or sojourn
fails the test.

Regenerate fixtures (only legitimate when the *intended semantics*
change, never for an optimization):

    PYTHONPATH=src python tests/test_golden_determinism.py --regen
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys

import pytest

from repro.model.performance import PerformanceModel
from repro.model.refined import RefinedPerformanceModel
from repro.queueing.jackson import JacksonNetwork, OperatorLoad
from repro.scheduler.allocation import Allocation
from repro.scheduler.assign import assign_processors
from repro.scheduler.min_resources import min_processors_for_target
from repro.sim.engine import Simulator
from repro.sim.rebalancing import RebalanceCostModel, RebalanceStyle
from repro.sim.runtime import RuntimeOptions, TopologyRuntime
from repro.topology.builder import TopologyBuilder
from repro.topology.grouping import BroadcastGrouping, FieldsGrouping

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


# ----------------------------------------------------------------------
# simulation cases: all three disciplines, rebalance, queue limit,
# broadcast + fields groupings, hop latency, fractional gains
# ----------------------------------------------------------------------
def _linear_topology():
    return (
        TopologyBuilder("golden_linear")
        .add_spout("src", rate=10.0)
        .add_operator("a", mu=4.0)
        .add_operator("b", mu=6.0)
        .add_operator("c", mu=20.0)
        .connect("src", "a")
        .connect("a", "b", gain=2.0)
        .connect("b", "c", gain=0.5)
        .build()
    )


def _diamond_topology():
    return (
        TopologyBuilder("golden_diamond")
        .add_spout("src", rate=8.0)
        .add_operator("split", mu=12.0)
        .add_operator("left", mu=9.0)
        .add_operator("right", mu=7.0)
        .add_operator("merge", mu=25.0)
        .connect("src", "split")
        .connect("split", "left", gain=1.5)
        .connect("split", "right", gain=0.7)
        .connect("left", "merge", gain=0.5)
        .connect("right", "merge", gain=1.0)
        .build()
    )


def _loop_topology():
    return (
        TopologyBuilder("golden_loop")
        .add_spout("src", rate=5.0)
        .add_operator("a", mu=10.0)
        .add_operator("b", mu=8.0)
        .add_operator("det", mu=40.0)
        .connect("src", "a")
        .connect("a", "b", gain=0.6)
        .connect("a", "det", gain=0.4, grouping=FieldsGrouping(["root"]))
        .connect("b", "det", gain=0.3, grouping=BroadcastGrouping())
        .connect("det", "a", gain=0.2)
        .build()
    )


def _run_case(case: str):
    """Build, run and summarise one golden simulation case."""
    if case == "linear_jsq":
        topology = _linear_topology()
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        options = RuntimeOptions(seed=42, queue_discipline="jsq")
        duration, warmup, rebalance_at = 300.0, 50.0, None
    elif case == "linear_shared":
        topology = _linear_topology()
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        options = RuntimeOptions(seed=42, queue_discipline="shared")
        duration, warmup, rebalance_at = 300.0, 50.0, None
    elif case == "diamond_hashed_limit":
        topology = _diamond_topology()
        allocation = Allocation(["split", "left", "right", "merge"], [2, 3, 1, 2])
        options = RuntimeOptions(
            seed=7,
            queue_discipline="hashed",
            queue_limit=12,
            hop_latency=0.02,
        )
        duration, warmup, rebalance_at = 240.0, 30.0, None
    elif case == "loop_shared_broadcast":
        topology = _loop_topology()
        allocation = Allocation(["a", "b", "det"], [3, 2, 2])
        options = RuntimeOptions(seed=19, queue_discipline="shared")
        duration, warmup, rebalance_at = 240.0, 30.0, None
    elif case == "loop_jsq_broadcast":
        topology = _loop_topology()
        allocation = Allocation(["a", "b", "det"], [3, 2, 2])
        options = RuntimeOptions(seed=19, queue_discipline="jsq")
        duration, warmup, rebalance_at = 240.0, 30.0, None
    elif case == "wide_jsq_rebalance":
        # Parallelism above _JSQ_HEAP_MIN: pins the lazy shortest-queue
        # heap (selection, compaction, orphaned-executor finishes after
        # the rebalance resize) against the linear-scan semantics, with
        # queue-limit drops during the rebalance pause.
        topology = (
            TopologyBuilder("golden_wide")
            .add_spout("src", rate=40.0)
            .add_operator("a", mu=2.2)
            .add_operator("b", mu=3.6)
            .connect("src", "a")
            .connect("a", "b", gain=1.5)
            .build()
        )
        allocation = Allocation(["a", "b"], [24, 20])
        options = RuntimeOptions(
            seed=23,
            queue_discipline="jsq",
            queue_limit=200,
            timeline_bucket=25.0,
            rebalance_cost=RebalanceCostModel(
                style=RebalanceStyle.STORM_DEFAULT, default_pause=12.0
            ),
        )
        duration, warmup = 200.0, 25.0
        rebalance_at = (80.0, Allocation(["a", "b"], [20, 24]))
    elif case == "rebalance_jsq":
        topology = _linear_topology()
        allocation = Allocation(["a", "b", "c"], [5, 6, 3])
        options = RuntimeOptions(
            seed=11,
            queue_discipline="jsq",
            timeline_bucket=20.0,
            rebalance_cost=RebalanceCostModel(
                style=RebalanceStyle.STORM_DEFAULT, default_pause=15.0
            ),
        )
        duration, warmup = 400.0, 40.0
        rebalance_at = (100.0, Allocation(["a", "b", "c"], [6, 6, 2]))
    else:  # pragma: no cover
        raise ValueError(f"unknown golden case {case!r}")

    sim = Simulator()
    runtime = TopologyRuntime(sim, topology, allocation, options)
    runtime.start()
    if rebalance_at is not None:
        at, new_allocation = rebalance_at
        sim.schedule(at, lambda: runtime.apply_allocation(new_allocation))
    sim.run_until(duration)
    runtime.check_conservation()
    return _summarise(runtime, warmup)


def _stats_dict(stats) -> dict:
    return {
        "duration": repr(stats.duration),
        "external_tuples": stats.external_tuples,
        "completed_trees": stats.completed_trees,
        "dropped_tuples": stats.dropped_tuples,
        "dropped_trees": stats.dropped_trees,
        "mean_sojourn": repr(stats.mean_sojourn),
        "std_sojourn": repr(stats.std_sojourn),
        "p95_sojourn": repr(stats.p95_sojourn),
        "per_operator_processed": stats.per_operator_processed,
        "per_operator_wait": {
            k: repr(v) for k, v in stats.per_operator_wait.items()
        },
        "per_operator_service": {
            k: repr(v) for k, v in stats.per_operator_service.items()
        },
        "rebalances": stats.rebalances,
    }


def _summarise(runtime: TopologyRuntime, warmup: float) -> dict:
    digest = hashlib.sha256()
    for t, s in runtime.completions:
        digest.update(repr(t).encode())
        digest.update(b":")
        digest.update(repr(s).encode())
        digest.update(b";")
    return {
        "stats_full": _stats_dict(runtime.stats()),
        "stats_warm": _stats_dict(runtime.stats(warmup=warmup)),
        "timeline": [
            [repr(start), repr(mean), count]
            for start, mean, count in runtime.timeline()
        ],
        "completions_sha256": digest.hexdigest(),
        "num_completions": len(runtime.completions),
        "processed_events": runtime.simulator.processed_events,
    }


SIM_CASES = [
    "linear_jsq",
    "linear_shared",
    "diamond_hashed_limit",
    "loop_shared_broadcast",
    "loop_jsq_broadcast",
    "rebalance_jsq",
    "wide_jsq_rebalance",
]


# ----------------------------------------------------------------------
# solver cases: Algorithm 1 and Program 6, plain and refined models
# ----------------------------------------------------------------------
def _solver_model() -> PerformanceModel:
    loads = [
        OperatorLoad("sift", 13.0, 1.75),
        OperatorLoad("matcher", 130.0, 17.5),
        OperatorLoad("agg", 39.0, 150.0),
        OperatorLoad("filter", 6.5, 3.1),
        OperatorLoad("sink", 19.5, 80.0),
    ]
    return PerformanceModel(JacksonNetwork(loads, external_rate=13.0))


def _refined_model() -> RefinedPerformanceModel:
    base = _solver_model()
    return RefinedPerformanceModel(
        base.network,
        arrival_scvs=[1.0, 1.3, 0.8, 1.0, 1.1],
        service_scvs=[1.5, 0.4, 1.0, 2.0, 0.9],
    )


def _run_solver_case() -> dict:
    plain = _solver_model()
    refined = _refined_model()
    out = {"assign": {}, "assign_refined": {}, "min_resources": {}}
    for kmax in (25, 40, 80, 200):
        allocation = assign_processors(plain, kmax)
        out["assign"][str(kmax)] = {
            "vector": list(allocation.vector),
            "expected_sojourn": repr(
                plain.expected_sojourn(list(allocation.vector))
            ),
        }
        refined_allocation = assign_processors(refined, kmax)
        out["assign_refined"][str(kmax)] = {
            "vector": list(refined_allocation.vector),
            "expected_sojourn": repr(
                refined.expected_sojourn(list(refined_allocation.vector))
            ),
        }
    for tmax in ("9.0", "8.2", "8.05", "8.01"):
        allocation = min_processors_for_target(plain, float(tmax))
        out["min_resources"][tmax] = {
            "vector": list(allocation.vector),
            "total": allocation.total,
            "expected_sojourn": repr(
                plain.expected_sojourn(list(allocation.vector))
            ),
        }
    return out


# ----------------------------------------------------------------------
# fixture plumbing
# ----------------------------------------------------------------------
def _golden_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.json"


def _load_golden(name: str) -> dict:
    path = _golden_path(name)
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} missing; run"
            " `PYTHONPATH=src python tests/test_golden_determinism.py --regen`"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("case", SIM_CASES)
def test_simulation_golden(case):
    assert _run_case(case) == _load_golden(case)


def test_solver_golden():
    assert _run_solver_case() == _load_golden("solver")


def test_solver_repeatable_within_process():
    """Memoization/incremental state must not leak between solves."""
    first = _run_solver_case()
    second = _run_solver_case()
    assert first == second


def _regen() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for case in SIM_CASES:
        result = _run_case(case)
        _golden_path(case).write_text(json.dumps(result, indent=1, sort_keys=True))
        print(f"wrote {_golden_path(case)}")
    _golden_path("solver").write_text(
        json.dumps(_run_solver_case(), indent=1, sort_keys=True)
    )
    print(f"wrote {_golden_path('solver')}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
