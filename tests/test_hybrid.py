"""Hybrid campaign evaluation: envelope admission, provenance, resume.

Covers the :mod:`repro.campaigns.hybrid` fast path end to end: the
structural and envelope gates of :class:`AnalyticCellEvaluator`,
tolerance-edge and override-group admission, safety-margin
monotonicity, store provenance round-trips (both layouts, plus
pre-provenance rehydration), resume semantics across evaluation modes,
the layout-aware plan estimates, sharded coordination, and the
hybrid-vs-simulated agreement the tolerance manifest promises.
"""

import dataclasses
import json
import math

import pytest

from repro.campaigns.hybrid import (
    DEFAULT_MAX_REL_ERROR,
    GATED_METRICS,
    AnalyticCellEvaluator,
    record_usable,
    resolve_evaluator,
)
from repro.campaigns.runner import (
    ESTIMATED_ANALYTIC_RECORD_BYTES,
    ESTIMATED_RECORD_BYTES,
    ESTIMATED_SEGMENT_RECORD_BYTES,
    CampaignRunner,
)
from repro.campaigns.segstore import SegmentedResultStore
from repro.campaigns.shard import ShardedCampaignRunner
from repro.campaigns.spec import EVALUATION_MODES, CampaignSpec, scenario_hash
from repro.campaigns.store import RECORD_PATHS, ResultStore, record_path
from repro.exceptions import ConfigurationError
from repro.fidelity.cases import build_case, fidelity_campaign
from repro.fidelity.manifest import ToleranceManifest
from repro.queueing.erlang import ErlangMarginalEvaluator
from repro.queueing.mgk import expected_waiting_time_gg
from repro.scenarios.runner import replication_seed, run_replication

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _manifest(default=0.04, **metric_overrides):
    """A manifest listing every gated metric at ``default``, with
    per-metric override groups supplied as keyword arguments, e.g.
    ``mean_sojourn={"rho": {"0.9": 0.3}}``."""
    metrics = {}
    for metric in GATED_METRICS:
        entry = {"default": default}
        entry.update(metric_overrides.get(metric, {}))
        metrics[metric] = entry
    return ToleranceManifest(metrics=metrics)


def _campaign(cases, *, evaluation="simulate", name="hybrid-test"):
    camp = fidelity_campaign("test", cases=cases)
    return dataclasses.replace(camp, name=name, evaluation=evaluation)


def _case(topology="single", rho=0.7, servers=4, scv=1.0, discipline="shared",
          arrival_model=None, replications=2, target_tuples=300):
    return build_case(
        topology, rho, servers, scv, discipline, arrival_model,
        replications=replications, target_tuples=target_tuples,
    )


def _cell_spec(case):
    return _campaign([case]).expand()[0].spec


# ---------------------------------------------------------------------------
# admission: structural gates
# ---------------------------------------------------------------------------


class TestStructuralGates:
    def setup_method(self):
        self.evaluator = AnalyticCellEvaluator(_manifest())

    def test_baseline_cell_is_admitted(self):
        decision = self.evaluator.decide(_cell_spec(_case()))
        assert decision.analytic_capable
        assert decision.path == "analytic"
        assert decision.rule  # names the governing manifest entry

    def test_loop_topology_is_rejected(self):
        decision = self.evaluator.decide(_cell_spec(_case(topology="loop")))
        assert not decision.analytic_capable
        assert "feed-forward" in decision.reason
        assert decision.path == "simulated"

    def test_fanout_is_feed_forward_capable(self):
        decision = self.evaluator.decide(_cell_spec(_case(topology="fanout")))
        assert decision.analytic_capable

    def test_non_poisson_arrivals_are_rejected(self):
        mmpp = {"kind": "mmpp2", "burst_ratio": 5.0,
                "mean_burst": 5.0, "mean_gap": 15.0}
        decision = self.evaluator.decide(
            _cell_spec(_case(arrival_model=mmpp))
        )
        assert not decision.analytic_capable
        assert "mmpp2" in decision.reason

    def test_non_fidelity_workload_is_rejected(self):
        spec = _cell_spec(_case())
        spec = dataclasses.replace(spec, workload="synthetic")
        decision = self.evaluator.decide(spec)
        assert not decision.analytic_capable
        assert "synthetic" in decision.reason

    def test_adaptive_policy_is_rejected(self):
        spec = dataclasses.replace(_cell_spec(_case()), policy="drs")
        decision = self.evaluator.decide(spec)
        assert not decision.analytic_capable
        assert "drs" in decision.reason


# ---------------------------------------------------------------------------
# admission: envelope edges and override groups
# ---------------------------------------------------------------------------


class TestEnvelopeAdmission:
    def test_tolerance_exactly_on_the_edge_is_admitted(self):
        evaluator = AnalyticCellEvaluator(
            _manifest(default=DEFAULT_MAX_REL_ERROR)
        )
        assert evaluator.decide(_cell_spec(_case())).analytic_capable

    def test_tolerance_just_past_the_edge_is_rejected(self):
        evaluator = AnalyticCellEvaluator(
            _manifest(default=DEFAULT_MAX_REL_ERROR * (1 + 1e-9))
        )
        decision = evaluator.decide(_cell_spec(_case()))
        assert not decision.analytic_capable
        assert "exceeds max_rel_error" in decision.reason

    def test_override_group_rejection_names_the_rule(self):
        # Default admits, but the rho:0.9 override pushes the envelope
        # past the acceptable error for high-utilisation cells only.
        overrides = {"rho": {"0.9": 0.3}}
        evaluator = AnalyticCellEvaluator(
            _manifest(
                default=0.04,
                mean_sojourn=overrides,
                waiting_time=overrides,
            )
        )
        assert evaluator.decide(_cell_spec(_case(rho=0.7))).analytic_capable
        decision = evaluator.decide(_cell_spec(_case(rho=0.9)))
        assert not decision.analytic_capable
        assert "rho:0.9" in decision.rule
        assert decision.tolerance == pytest.approx(0.3)

    def test_committed_manifest_rejects_rho_090(self):
        evaluator = AnalyticCellEvaluator.default()
        assert evaluator.decide(_cell_spec(_case(rho=0.7))).analytic_capable
        decision = evaluator.decide(_cell_spec(_case(rho=0.9)))
        assert not decision.analytic_capable
        assert "rho:0.9" in decision.rule

    def test_safety_margin_is_monotone(self):
        """Tightening the margin never converts simulated -> analytic."""
        cases = [
            _case(rho=rho, servers=servers, scv=scv, discipline=discipline)
            for rho, servers, scv, discipline in (
                (0.3, 2, 1.0, "shared"),
                (0.7, 4, 1.0, "shared"),
                (0.7, 4, 1.0, "jsq"),
                (0.7, 4, 4.0, "shared"),
                (0.9, 4, 1.0, "shared"),
            )
        ]
        specs = [cell.spec for cell in _campaign(cases).expand()]
        manifest = ToleranceManifest.load(
            "tests/golden/fidelity_tolerances.json"
        )
        previous = None
        for margin in (0.5, 1.0, 1.5, 2.0, 4.0):
            evaluator = AnalyticCellEvaluator(manifest, safety_margin=margin)
            admitted = {
                spec.name
                for spec in specs
                if evaluator.decide(spec).analytic_capable
            }
            if previous is not None:
                assert admitted <= previous
            previous = admitted

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalyticCellEvaluator(_manifest(), max_rel_error=0.0)
        with pytest.raises(ConfigurationError):
            AnalyticCellEvaluator(_manifest(), safety_margin=-1.0)
        with pytest.raises(ConfigurationError):
            AnalyticCellEvaluator(_manifest(), metrics=())


# ---------------------------------------------------------------------------
# evaluation: values and memoization
# ---------------------------------------------------------------------------


class TestAnalyticEvaluation:
    def test_result_matches_direct_prediction(self):
        from repro.fidelity.analytic import predict

        case = _case(servers=4)
        spec = _cell_spec(case)
        evaluator = AnalyticCellEvaluator(_manifest())
        result = evaluator.evaluate(spec, 1)
        prediction = predict(case.workload)
        assert result.mean_sojourn == prediction.mean_sojourn
        assert result.p95_sojourn == prediction.p95_sojourn
        assert result.seed == replication_seed(spec.seed, 1)
        assert result.index == 1
        assert result.std_sojourn is None
        assert result.actions == ()
        # Per-operator waits reproduce the Allen-Cunneen formula.
        lam = case.workload.external_rate
        expected = expected_waiting_time_gg(lam, 1.0, 4, ca2=1.0, cs2=1.0)
        assert result.operator_waits["op"] == pytest.approx(expected)

    def test_prediction_memoized_across_replications(self):
        evaluator = AnalyticCellEvaluator(_manifest())
        spec = _cell_spec(_case())
        first = evaluator.evaluate(spec, 0)
        assert len(evaluator._predictions) == 1
        second = evaluator.evaluate(spec, 1)
        assert len(evaluator._predictions) == 1
        assert first.mean_sojourn == second.mean_sojourn

    def test_erlang_state_reused_across_ascending_k(self):
        """Cells sharing (lam, mu) advance one recurrence forward."""
        evaluator = AnalyticCellEvaluator(_manifest())
        workloads = []
        for servers in (2, 4, 8):
            # Pin lam by holding rho*servers constant via rho variation.
            case = _case(rho=0.8 * 2 / servers, servers=servers)
            spec = _cell_spec(case)
            evaluator.evaluate(spec, 0)
            workloads.append(case.workload)
        lam = workloads[0].external_rate
        assert all(
            abs(w.external_rate - lam) < 1e-12 for w in workloads
        )
        assert len(evaluator._erlang) == 1
        assert evaluator._erlang[(lam, 1.0)].k == 8

    def test_advance_to_matches_fresh_construction(self):
        evaluator = ErlangMarginalEvaluator(3.0, 1.0, 4)
        value = evaluator.advance_to(16)
        fresh = ErlangMarginalEvaluator(3.0, 1.0, 16)
        assert value == fresh.sojourn  # bit-identical forward recurrence
        with pytest.raises(ValueError):
            evaluator.advance_to(8)


# ---------------------------------------------------------------------------
# store provenance
# ---------------------------------------------------------------------------


class TestStoreProvenance:
    def _result(self, spec):
        evaluator = AnalyticCellEvaluator(_manifest())
        return evaluator.evaluate(spec, 0)

    @pytest.mark.parametrize("layout", ["classic", "segmented"])
    def test_path_and_provenance_round_trip(self, tmp_path, layout):
        spec = _cell_spec(_case())
        store = (
            ResultStore(tmp_path)
            if layout == "classic"
            else SegmentedResultStore(tmp_path)
        )
        digest = scenario_hash(spec)
        store.put(
            spec, digest, spec.seed, self._result(spec),
            path="analytic",
            provenance={"manifest_version": 1, "rule": "mean_sojourn/default"},
        )
        record = store.load_record(digest, spec.seed)
        assert record_path(record) == "analytic"
        assert record["analytic"]["rule"] == "mean_sojourn/default"
        # Simulated puts carry the tag too, with no provenance blob.
        store.put(spec, digest, spec.seed + 1, self._result(spec))
        record = store.load_record(digest, spec.seed + 1)
        assert record_path(record) == "simulated"
        assert "analytic" not in record

    def test_pre_provenance_records_rehydrate_as_simulated(self):
        assert record_path({}) == "simulated"
        assert record_path({"path": "analytic"}) == "analytic"
        assert RECORD_PATHS == ("simulated", "analytic")

    def test_unknown_path_is_rejected(self, tmp_path):
        spec = _cell_spec(_case())
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.put(
                spec, scenario_hash(spec), spec.seed,
                self._result(spec), path="oracular",
            )

    def test_record_usable_matrix(self):
        analytic = {"path": "analytic"}
        simulated = {"path": "simulated"}
        legacy = {}
        # Simulated-path decisions only trust simulated records.
        assert record_usable(simulated, "simulated")
        assert record_usable(legacy, "simulated")
        assert not record_usable(analytic, "simulated")
        # Analytic-path decisions accept either.
        assert record_usable(analytic, "analytic")
        assert record_usable(simulated, "analytic")


# ---------------------------------------------------------------------------
# runner integration: hybrid runs, resume semantics, plan estimates
# ---------------------------------------------------------------------------


def _mixed_campaign(evaluation="hybrid"):
    """One in-envelope cell plus one loop (simulate-only) cell."""
    return _campaign(
        [
            _case(servers=1, target_tuples=200),
            _case(topology="loop", rho=0.5, servers=1, target_tuples=200),
        ],
        evaluation=evaluation,
    )


class TestHybridRunner:
    def test_hybrid_run_tags_store_records(self, tmp_path):
        campaign = _mixed_campaign()
        store = ResultStore(tmp_path)
        evaluator = AnalyticCellEvaluator(_manifest())
        result = CampaignRunner(store, evaluator=evaluator).run(campaign)
        assert result.analytic == 2  # one cell x 2 replications
        assert result.computed == 4
        by_label = {c.cell.label: c for c in result.cells}
        assert by_label[campaign.expand()[0].label].path == "analytic"
        assert by_label[campaign.expand()[1].label].path == "simulated"
        for cell in campaign.expand():
            for index in range(cell.spec.replications):
                record = store.load_record(
                    cell.spec_hash, replication_seed(cell.spec.seed, index)
                )
                expected = (
                    "analytic" if cell.spec.workload_params["topology"]
                    == "single" else "simulated"
                )
                assert record_path(record) == expected
                if expected == "analytic":
                    assert record["analytic"]["manifest_version"] == 1
                    assert record["analytic"]["rule"]

    def test_resume_hybrid_to_hybrid_recomputes_nothing(self, tmp_path):
        campaign = _mixed_campaign()
        evaluator = AnalyticCellEvaluator(_manifest())
        CampaignRunner(ResultStore(tmp_path), evaluator=evaluator).run(campaign)
        again = CampaignRunner(
            ResultStore(tmp_path), evaluator=AnalyticCellEvaluator(_manifest())
        ).run(campaign)
        assert again.computed == 0
        assert again.reused == 4
        assert again.analytic == 0

    def test_resume_in_simulate_mode_recomputes_only_analytic_cells(
        self, tmp_path
    ):
        hybrid = _mixed_campaign()
        evaluator = AnalyticCellEvaluator(_manifest())
        CampaignRunner(ResultStore(tmp_path), evaluator=evaluator).run(hybrid)
        simulate = dataclasses.replace(hybrid, evaluation="simulate")
        plan = CampaignRunner(ResultStore(tmp_path)).plan(simulate)
        # The loop cell's simulated records are reusable; the analytic
        # records are not good enough for a simulate-mode run.
        assert plan.cached == 2
        assert plan.to_compute == 2
        result = CampaignRunner(ResultStore(tmp_path)).run(simulate)
        assert result.computed == 2
        assert result.reused == 2
        assert result.analytic == 0

    def test_simulated_records_satisfy_analytic_decisions(self, tmp_path):
        """The reverse direction reuses: simulation is strictly more
        accurate than the envelope demands."""
        campaign = _campaign(
            [_case(servers=1, target_tuples=200)], evaluation="simulate"
        )
        CampaignRunner(ResultStore(tmp_path)).run(campaign)
        hybrid = dataclasses.replace(campaign, evaluation="hybrid")
        result = CampaignRunner(
            ResultStore(tmp_path), evaluator=AnalyticCellEvaluator(_manifest())
        ).run(hybrid)
        assert result.computed == 0
        assert result.reused == 2

    def test_analytic_mode_errors_on_out_of_envelope_cell(self, tmp_path):
        campaign = _mixed_campaign(evaluation="analytic")
        runner = CampaignRunner(
            ResultStore(tmp_path), evaluator=AnalyticCellEvaluator(_manifest())
        )
        with pytest.raises(ConfigurationError, match="loop"):
            runner.run(campaign)

    def test_plan_estimates_are_layout_and_path_aware(self, tmp_path):
        campaign = _mixed_campaign()
        evaluator = AnalyticCellEvaluator(_manifest())
        classic = CampaignRunner(
            ResultStore(tmp_path / "classic"), evaluator=evaluator
        ).plan(campaign)
        assert classic.evaluation == "hybrid"
        assert classic.analytic_cells == 1
        assert classic.simulated_cells == 1
        assert classic.analytic_jobs == 2
        assert classic.estimated_store_bytes == (
            2 * ESTIMATED_RECORD_BYTES + 2 * ESTIMATED_ANALYTIC_RECORD_BYTES
        )
        assert classic.estimated_analytic_seconds < 0.1
        assert classic.estimated_simulated_seconds > 0.0
        # An empty segmented store uses the packed-line default.
        segmented = CampaignRunner(
            SegmentedResultStore(tmp_path / "seg"), evaluator=evaluator
        ).plan(campaign)
        assert segmented.estimated_store_bytes == (
            2 * ESTIMATED_SEGMENT_RECORD_BYTES
            + 2 * ESTIMATED_ANALYTIC_RECORD_BYTES
        )

    def test_plan_uses_observed_segment_record_bytes(self, tmp_path):
        campaign = _campaign(
            [_case(topology="loop", rho=0.5, servers=1, target_tuples=200)],
            evaluation="simulate",
        )
        store = SegmentedResultStore(tmp_path)
        CampaignRunner(store, evaluator=None).run(campaign)
        observed = store.mean_record_bytes()
        assert observed is not None and observed > 0
        # A second, uncached cell is estimated at the observed rate.
        wider = _campaign(
            [
                _case(topology="loop", rho=0.5, servers=1, target_tuples=200),
                _case(topology="loop", rho=0.6, servers=1, target_tuples=200),
            ],
            evaluation="simulate",
        )
        plan = CampaignRunner(store).plan(wider)
        assert plan.cached == 2
        assert plan.estimated_store_bytes == int(round(2 * observed))

    def test_simulate_mode_ignores_evaluator_and_stays_default(self):
        assert resolve_evaluator("simulate", None) is None
        sentinel = AnalyticCellEvaluator(_manifest())
        assert resolve_evaluator("simulate", sentinel) is None
        assert resolve_evaluator("hybrid", sentinel) is sentinel


# ---------------------------------------------------------------------------
# sharded coordination
# ---------------------------------------------------------------------------


class TestShardedHybrid:
    def test_analytic_cells_answered_in_coordinator(self, tmp_path):
        campaign = _mixed_campaign()
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        evaluator = AnalyticCellEvaluator(_manifest())
        result = ShardedCampaignRunner(
            store, shards=2, evaluator=evaluator
        ).run(campaign)
        assert result.analytic == 2
        assert result.computed == 4
        assert result.reused == 0
        # Analytic records live in the coordinator's segment only —
        # workers never saw those jobs.
        coordinator = (tmp_path / "segments" / "coordinator.ndjson").read_text()
        analytic_lines = [
            json.loads(line)
            for line in coordinator.splitlines()
            if line.strip() and json.loads(line).get("path") == "analytic"
        ]
        assert len(analytic_lines) == 2
        for path in (tmp_path / "segments").glob("shard-*.ndjson"):
            for line in path.read_text().splitlines():
                if not line.strip():
                    continue
                record = json.loads(line)
                if record.get("kind") == "spec":
                    continue
                assert record_path(record) == "simulated"

    def test_sharded_resume_recomputes_nothing(self, tmp_path):
        campaign = _mixed_campaign()
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        evaluator = AnalyticCellEvaluator(_manifest())
        ShardedCampaignRunner(store, shards=2, evaluator=evaluator).run(
            campaign
        )
        again = ShardedCampaignRunner(
            SegmentedResultStore(tmp_path, segment="coordinator"),
            shards=2,
            evaluator=AnalyticCellEvaluator(_manifest()),
        ).run(campaign)
        assert again.computed == 0
        assert again.reused == 4


# ---------------------------------------------------------------------------
# spec round-trip and aggregation
# ---------------------------------------------------------------------------


class TestSpecAndAggregate:
    def test_evaluation_modes_constant(self):
        assert EVALUATION_MODES == ("simulate", "hybrid", "analytic")

    def test_spec_round_trips_evaluation(self):
        campaign = _mixed_campaign(evaluation="hybrid")
        payload = campaign.to_dict()
        assert payload["evaluation"] == "hybrid"
        assert CampaignSpec.from_dict(payload).evaluation == "hybrid"

    def test_simulate_is_omitted_from_payload_and_hash(self):
        simulate = _mixed_campaign(evaluation="simulate")
        hybrid = _mixed_campaign(evaluation="hybrid")
        assert "evaluation" not in simulate.to_dict()
        # Evaluation mode is orchestration, not simulation content: the
        # same cell keeps the same content address in either mode, which
        # is exactly what makes cross-mode resume work.
        assert [scenario_hash(c.spec) for c in simulate.expand()] == [
            scenario_hash(c.spec) for c in hybrid.expand()
        ]

    def test_unknown_evaluation_mode_is_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(_mixed_campaign(), evaluation="psychic")

    def test_aggregate_counts_paths(self, tmp_path):
        from repro.campaigns.aggregate import aggregate_from_store

        campaign = _mixed_campaign()
        evaluator = AnalyticCellEvaluator(_manifest())
        CampaignRunner(ResultStore(tmp_path), evaluator=evaluator).run(campaign)
        aggregator = aggregate_from_store(campaign, ResultStore(tmp_path))
        rows = {row["label"]: row for row in aggregator.rows()}
        analytic_label = campaign.expand()[0].label
        loop_label = campaign.expand()[1].label
        assert rows[analytic_label]["analytic"] == 2
        assert rows[analytic_label]["simulated"] == 0
        assert rows[loop_label]["analytic"] == 0
        assert rows[loop_label]["simulated"] == 2


# ---------------------------------------------------------------------------
# agreement: the envelope the fast path promises
# ---------------------------------------------------------------------------


class TestHybridAgreement:
    def test_analytic_answer_within_manifest_tolerance_of_simulation(self):
        """The golden contract: on an in-envelope cell, the analytic
        answer agrees with the simulated one within the committed
        manifest tolerance (which absorbs both model error and the
        replication noise of this deterministic protocol)."""
        case = _case(servers=4, replications=3, target_tuples=2000)
        spec = _cell_spec(case)
        manifest = ToleranceManifest.load(
            "tests/golden/fidelity_tolerances.json"
        )
        evaluator = AnalyticCellEvaluator(manifest)
        decision = evaluator.decide(spec)
        assert decision.analytic_capable
        analytic = evaluator.evaluate(spec, 0).mean_sojourn
        simulated = [
            run_replication(spec, index).mean_sojourn
            for index in range(spec.replications)
        ]
        observed = sum(simulated) / len(simulated)
        rel_error = abs(analytic - observed) / observed
        tolerance = manifest.tolerance_for(
            "mean_sojourn",
            topology="single",
            discipline="shared",
            scv=1.0,
            rho=0.7,
        )
        assert math.isfinite(rel_error)
        assert rel_error <= tolerance, (
            f"analytic {analytic:.4f} vs simulated {observed:.4f}:"
            f" rel error {rel_error:.4f} > tolerance {tolerance:.4f}"
        )
