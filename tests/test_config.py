"""Tests for DRSConfig and the configuration reader."""

import pytest

from repro.config import (
    ClusterSpec,
    ConfigReader,
    DRSConfig,
    MeasurementConfig,
    OptimizationGoal,
    SmoothingKind,
)
from repro.exceptions import ConfigurationError


class TestDRSConfig:
    def test_min_sojourn_requires_kmax(self):
        with pytest.raises(ConfigurationError, match="kmax"):
            DRSConfig(goal=OptimizationGoal.MIN_SOJOURN)

    def test_min_resource_requires_tmax(self):
        with pytest.raises(ConfigurationError, match="tmax"):
            DRSConfig(goal=OptimizationGoal.MIN_RESOURCE)

    def test_valid_min_sojourn(self):
        config = DRSConfig(goal=OptimizationGoal.MIN_SOJOURN, kmax=22)
        assert config.kmax == 22

    def test_valid_min_resource(self):
        config = DRSConfig(goal=OptimizationGoal.MIN_RESOURCE, tmax=1.5)
        assert config.tmax == 1.5

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            DRSConfig(kmax=1, rebalance_threshold=1.5)
        with pytest.raises(ConfigurationError):
            DRSConfig(kmax=1, migration_cost=-1.0)
        with pytest.raises(ConfigurationError):
            DRSConfig(kmax=1, scale_in_safety=0.0)
        with pytest.raises(ConfigurationError):
            DRSConfig(kmax=1, headroom=-0.1)


class TestMeasurementConfig:
    def test_defaults_valid(self):
        config = MeasurementConfig()
        assert config.sample_every >= 1

    def test_rejects_bad_nm(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(sample_every=0)

    def test_rejects_bad_tm(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(pull_interval=0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(alpha=1.0)


class TestClusterSpecValidation:
    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(slots_per_machine=0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(min_machines=5, max_machines=2)


class TestConfigReader:
    def test_full_round_trip(self):
        raw = {
            "goal": "min_resource",
            "tmax": 1.5,
            "migration_cost": 2.0,
            "rebalance_threshold": 0.1,
            "cluster": {"slots_per_machine": 4, "reserved_executors": 2},
            "measurement": {
                "sample_every": 5,
                "pull_interval": 20.0,
                "smoothing": "window",
                "window": 8,
            },
        }
        config = ConfigReader().read(raw)
        assert config.goal is OptimizationGoal.MIN_RESOURCE
        assert config.tmax == 1.5
        assert config.cluster.slots_per_machine == 4
        assert config.measurement.smoothing is SmoothingKind.WINDOW
        assert config.measurement.window == 8

    def test_unknown_top_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown configuration"):
            ConfigReader().read({"kmax": 5, "typo_key": 1})

    def test_unknown_goal_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown goal"):
            ConfigReader().read({"goal": "make_it_fast", "kmax": 5})

    def test_unknown_smoothing_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown smoothing"):
            ConfigReader().read(
                {"kmax": 5, "measurement": {"smoothing": "kalman"}}
            )

    def test_bad_section_type_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            ConfigReader().read({"kmax": 5, "cluster": "big"})

    def test_bad_section_key_rejected(self):
        with pytest.raises(ConfigurationError, match="cluster"):
            ConfigReader().read({"kmax": 5, "cluster": {"floors": 3}})

    def test_enum_passthrough(self):
        config = ConfigReader().read(
            {"goal": OptimizationGoal.MIN_SOJOURN, "kmax": 10}
        )
        assert config.goal is OptimizationGoal.MIN_SOJOURN

    def test_defaults_when_empty(self):
        config = ConfigReader().read({"kmax": 8})
        assert config.goal is OptimizationGoal.MIN_SOJOURN
        assert config.cluster.slots_per_machine == 5
