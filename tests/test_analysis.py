"""Tests for the analysis helpers (stats, correlation, calibration)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    confidence_interval_mean,
    kendall_tau,
    pearson,
    relative_error,
    spearman,
    summarise,
)
from repro.exceptions import ModelError
from repro.model import CalibratedModel, PolynomialCalibrator


class TestSummarise:
    def test_basic(self):
        stats = summarise([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.p50 == pytest.approx(3.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarise([])


class TestConfidenceInterval:
    def test_contains_mean(self):
        values = [float(i) for i in range(100)]
        low, high = confidence_interval_mean(values)
        assert low < 49.5 < high

    def test_wider_at_higher_confidence(self):
        values = [float(i % 7) for i in range(60)]
        low95, high95 = confidence_interval_mean(values, confidence=0.95)
        low99, high99 = confidence_interval_mean(values, confidence=0.99)
        assert high99 - low99 > high95 - low95

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            confidence_interval_mean([1.0])

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            confidence_interval_mean([1.0, 2.0], confidence=0.5)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_expected(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(1.0, 0.0))

    def test_infinite_expected(self):
        assert relative_error(math.inf, math.inf) == 0.0
        assert math.isinf(relative_error(1.0, math.inf))


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert kendall_tau([1, 2, 3], [5, 6, 7]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
        assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_spearman_invariant_to_monotone_transform(self):
        xs = [1.0, 2.0, 5.0, 9.0]
        ys = [x**3 for x in xs]
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_ties_handled(self):
        value = spearman([1, 1, 2], [1, 2, 3])
        assert -1.0 <= value <= 1.0

    def test_constant_sequence_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


class TestPolynomialCalibrator:
    def test_linear_fit_recovers_line(self):
        calibrator = PolynomialCalibrator(degree=1)
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [3.0 * x + 1.0 for x in xs]
        calibrator.fit(xs, ys)
        assert calibrator.predict(5.0) == pytest.approx(16.0, rel=1e-9)
        assert calibrator.r_squared(xs, ys) == pytest.approx(1.0)

    def test_infinite_estimate_passes_through(self):
        calibrator = PolynomialCalibrator().fit([1, 2, 3], [2, 4, 6])
        assert math.isinf(calibrator.predict(math.inf))

    def test_prediction_floored_at_zero(self):
        calibrator = PolynomialCalibrator().fit([1, 2], [0.1, 0.0])
        assert calibrator.predict(100.0) == 0.0

    def test_unfitted_rejects_predict(self):
        with pytest.raises(ModelError):
            PolynomialCalibrator().predict(1.0)

    def test_too_few_samples(self):
        with pytest.raises(ModelError):
            PolynomialCalibrator(degree=2).fit([1, 2], [1, 2])

    def test_mismatched_samples(self):
        with pytest.raises(ModelError):
            PolynomialCalibrator().fit([1, 2, 3], [1, 2])

    def test_rejects_non_finite(self):
        with pytest.raises(ModelError):
            PolynomialCalibrator().fit([1, math.inf], [1, 2])


class TestCalibratedModel:
    def test_correction_applied(self, chain_model):
        # Pretend measurements are always 2x the estimate.
        xs = [0.5, 1.0, 2.0]
        ys = [1.0, 2.0, 4.0]
        calibrator = PolynomialCalibrator(degree=1).fit(xs, ys)
        calibrated = CalibratedModel(chain_model, calibrator)
        raw = calibrated.raw_expected_sojourn([4, 5, 2])
        assert calibrated.expected_sojourn([4, 5, 2]) == pytest.approx(
            2.0 * raw, rel=1e-6
        )

    def test_requires_fitted_calibrator(self, chain_model):
        with pytest.raises(ModelError):
            CalibratedModel(chain_model, PolynomialCalibrator())

    def test_preserves_ordering(self, chain_model):
        """Linear calibration keeps Algorithm 1's ranking intact."""
        calibrator = PolynomialCalibrator(degree=1).fit(
            [0.5, 1.0, 2.0], [1.2, 2.1, 4.3]
        )
        calibrated = CalibratedModel(chain_model, calibrator)
        a = [4, 5, 2]
        b = [5, 6, 3]
        raw_order = chain_model.expected_sojourn(a) > chain_model.expected_sojourn(b)
        cal_order = calibrated.expected_sojourn(a) > calibrated.expected_sojourn(b)
        assert raw_order == cal_order


@settings(max_examples=40, deadline=None)
@given(
    slope=st.floats(min_value=0.1, max_value=10.0),
    intercept=st.floats(min_value=0.0, max_value=5.0),
)
def test_linear_calibration_exact(slope, intercept):
    xs = [1.0, 2.0, 4.0, 8.0]
    ys = [slope * x + intercept for x in xs]
    calibrator = PolynomialCalibrator(degree=1).fit(xs, ys)
    for x in (0.5, 3.0, 10.0):
        assert calibrator.predict(x) == pytest.approx(
            slope * x + intercept, rel=1e-6, abs=1e-6
        )
