"""Validation of the array-backed fast path (``repro.sim.array_runtime``).

Three layers of evidence, per the contract in the module docstring:

1. the gate rejects every unsupported feature with a readable reason;
2. deterministic arrival/service cases are **bit-identical** to the
   object engine (same event order, no RNG consumed);
3. stochastic cases agree **statistically** — the array path's mean and
   p95 sojourn fall inside the object engine's replication confidence
   interval on fidelity-smoke-style shapes — and a golden file pins the
   array path's own determinism (fixed seed, fixed outputs).

Regenerate the golden file after an intentional change::

    PYTHONPATH=src python tests/test_array_runtime.py --regen
"""

import json
import math
import pathlib
import sys

import pytest

from repro.exceptions import SimulationError
from repro.randomness.arrival import DeterministicProcess
from repro.randomness.distributions import Deterministic, Empirical, LogNormal
from repro.scheduler import Allocation
from repro.sim import (
    RuntimeOptions,
    Simulator,
    TopologyRuntime,
    array_capable,
    run_array,
)
from repro.topology import TopologyBuilder

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "array_runtime.json"


def linear_chain(*, deterministic=False):
    builder = TopologyBuilder("linear")
    if deterministic:
        builder.add_spout("src", arrivals=DeterministicProcess(9.7))
        builder.add_operator("a", service_time=Deterministic(1.0 / 6.0))
        builder.add_operator("b", service_time=Deterministic(1.0 / 11.0))
    else:
        builder.add_spout("src", rate=9.7)
        builder.add_operator("a", mu=6.0)
        builder.add_operator("b", mu=11.0)
    builder.connect("src", "a").connect("a", "b", gain=2.0)
    return builder.build(), Allocation(["a", "b"], [3, 3])


def fanout(width=4):
    builder = TopologyBuilder("fanout").add_spout("src", rate=50.0)
    names = []
    for i in range(width):
        name = f"op{i}"
        builder.add_operator(name, mu=20.0).connect("src", name)
        names.append(name)
    return builder.build(), Allocation(names, [4] * width)


def object_stats(topology, allocation, options, duration, warmup):
    sim = Simulator()
    runtime = TopologyRuntime(sim, topology, allocation, options)
    runtime.start()
    sim.run_until(duration)
    return runtime.stats(warmup=warmup)


class TestGate:
    def test_supported_case_passes(self):
        topology, _ = linear_chain()
        options = RuntimeOptions(queue_discipline="shared")
        assert array_capable(topology, options) is None

    @pytest.mark.parametrize(
        "options, fragment",
        [
            (RuntimeOptions(queue_discipline="jsq"), "queue_discipline"),
            (
                RuntimeOptions(queue_discipline="shared", queue_limit=10),
                "queue_limit",
            ),
            (
                RuntimeOptions(queue_discipline="shared", hop_latency=0.1),
                "hop latency",
            ),
            (
                RuntimeOptions(
                    queue_discipline="shared",
                    arrival_rate_phases=((0.0, 1.0), (10.0, 2.0)),
                ),
                "arrival_rate_phases",
            ),
        ],
    )
    def test_option_rejections(self, options, fragment):
        topology, _ = linear_chain()
        assert fragment in array_capable(topology, options)

    def test_cycle_rejected(self):
        topology = (
            TopologyBuilder("loop")
            .add_spout("src", rate=5.0)
            .add_operator("a", mu=10.0)
            .add_operator("b", mu=10.0)
            .connect("src", "a")
            .connect("a", "b", gain=0.5)
            .connect("b", "a", gain=0.5)
            .build()
        )
        options = RuntimeOptions(queue_discipline="shared")
        assert "cycle" in array_capable(topology, options)

    def test_unsupported_service_rejected(self):
        topology = (
            TopologyBuilder("heavy")
            .add_spout("src", rate=5.0)
            .add_operator("a", service_time=LogNormal(0.1, 1.0))
            .connect("src", "a")
            .build()
        )
        options = RuntimeOptions(queue_discipline="shared")
        assert "service" in array_capable(topology, options)

    def test_fanout_sampler_rejected(self):
        topology = (
            TopologyBuilder("sampled")
            .add_spout("src", rate=5.0)
            .add_operator("a", mu=10.0)
            .add_operator("b", mu=30.0)
            .connect("src", "a")
            .connect("a", "b", gain=2.0, fanout=Empirical([1.0, 3.0]))
            .build()
        )
        options = RuntimeOptions(queue_discipline="shared")
        assert "fanout" in array_capable(topology, options)

    def test_run_array_raises_outside_gate(self):
        topology, allocation = linear_chain()
        with pytest.raises(SimulationError, match="does not support"):
            run_array(
                topology,
                allocation,
                RuntimeOptions(queue_discipline="jsq"),
                duration=10.0,
            )


class TestExactEquivalence:
    """Where event orders coincide and no RNG is drawn, the array path
    must match the object engine bit for bit."""

    def test_deterministic_case_bit_identical(self):
        topology, allocation = linear_chain(deterministic=True)
        options = RuntimeOptions(queue_discipline="shared", seed=3)
        duration, warmup = 200.0, 20.0
        obj = object_stats(topology, allocation, options, duration, warmup)
        arr = run_array(
            topology, allocation, options, duration=duration, warmup=warmup
        )
        assert arr.external_tuples == obj.external_tuples
        assert arr.completed_trees == obj.completed_trees
        assert arr.per_operator_processed == obj.per_operator_processed
        # The samples are bit-identical (p95 selects one of them); the
        # mean may differ in its last ulps because numpy reduces
        # pairwise while Welford accumulates sequentially.
        assert arr.p95_sojourn == obj.p95_sojourn
        assert arr.mean_sojourn == pytest.approx(obj.mean_sojourn, rel=1e-12)

    def test_array_path_is_deterministic(self):
        topology, allocation = fanout()
        options = RuntimeOptions(queue_discipline="shared", seed=11)
        first = run_array(topology, allocation, options, duration=60.0)
        second = run_array(topology, allocation, options, duration=60.0)
        assert first == second


class TestStatisticalEquivalence:
    """Stochastic cases: the array path must land inside the object
    engine's replication confidence interval."""

    @pytest.mark.parametrize("shape", ["linear", "fanout"])
    def test_mean_and_p95_within_ci(self, shape):
        if shape == "linear":
            topology, allocation = linear_chain()
        else:
            topology, allocation = fanout()
        duration, warmup = 300.0, 30.0
        means, p95s = [], []
        for seed in range(5, 10):
            options = RuntimeOptions(queue_discipline="shared", seed=seed)
            stats = object_stats(topology, allocation, options, duration, warmup)
            means.append(stats.mean_sojourn)
            p95s.append(stats.p95_sojourn)

        def interval(samples):
            n = len(samples)
            mean = sum(samples) / n
            var = sum((s - mean) ** 2 for s in samples) / (n - 1)
            # ~t(4, 0.995) half-width, wide on purpose: this is a CI
            # membership check, not a power analysis.
            half = 4.6 * math.sqrt(var / n)
            return mean - half, mean + half

        arr_means, arr_p95s = [], []
        for seed in range(5, 10):
            options = RuntimeOptions(queue_discipline="shared", seed=seed)
            arr = run_array(
                topology, allocation, options, duration=duration, warmup=warmup
            )
            arr_means.append(arr.mean_sojourn)
            arr_p95s.append(arr.p95_sojourn)
        arr_mean = sum(arr_means) / len(arr_means)
        arr_p95 = sum(arr_p95s) / len(arr_p95s)
        lo, hi = interval(means)
        assert lo <= arr_mean <= hi
        lo, hi = interval(p95s)
        assert lo <= arr_p95 <= hi

    def test_same_seed_tracks_object_engine_closely(self):
        # Transplanted substreams mean the array path consumes the very
        # same uniforms; only the log transform differs (SIMD vs libm),
        # so same-seed runs agree to float noise, far inside any CI.
        topology, allocation = fanout()
        options = RuntimeOptions(queue_discipline="shared", seed=11)
        obj = object_stats(topology, allocation, options, 120.0, 10.0)
        arr = run_array(topology, allocation, options, duration=120.0, warmup=10.0)
        assert arr.external_tuples == obj.external_tuples
        assert arr.mean_sojourn == pytest.approx(obj.mean_sojourn, rel=1e-6)
        assert arr.p95_sojourn == pytest.approx(obj.p95_sojourn, rel=1e-6)


def _golden_payload():
    cases = {}
    for name, (topology, allocation) in (
        ("linear", linear_chain()),
        ("fanout", fanout()),
    ):
        options = RuntimeOptions(queue_discipline="shared", seed=17)
        stats = run_array(
            topology, allocation, options, duration=150.0, warmup=15.0
        )
        cases[name] = {
            "external_tuples": stats.external_tuples,
            "completed_trees": stats.completed_trees,
            "mean_sojourn": stats.mean_sojourn,
            "std_sojourn": stats.std_sojourn,
            "p95_sojourn": stats.p95_sojourn,
            "per_operator_processed": stats.per_operator_processed,
        }
    return cases


class TestGolden:
    def test_array_runtime_matches_golden(self):
        expected = json.loads(GOLDEN_PATH.read_text())
        assert _golden_payload() == expected


if __name__ == "__main__":
    if "--regen" in sys.argv:
        GOLDEN_PATH.write_text(json.dumps(_golden_payload(), indent=2) + "\n")
        print(f"regenerated {GOLDEN_PATH}")
    else:
        print(__doc__)
