"""Tests for percentile-aware scheduling (tail-latency extension)."""

import math

import pytest

from repro.exceptions import InfeasibleAllocationError
from repro.model import PerformanceModel
from repro.queueing import MMkQueue
from repro.scheduler.min_resources import min_processors_for_target
from repro.scheduler.percentile import (
    min_processors_for_quantile,
    operator_sojourn_moments,
    sojourn_quantile_bound,
)


class TestOperatorMoments:
    def test_mean_matches_erlang(self):
        from repro.queueing import expected_sojourn_time

        mean, _ = operator_sojourn_moments(8.0, 1.0, 10)
        assert mean == pytest.approx(expected_sojourn_time(8.0, 1.0, 10))

    def test_variance_positive(self):
        _, variance = operator_sojourn_moments(8.0, 1.0, 10)
        assert variance > 0

    def test_saturated_infinite(self):
        mean, variance = operator_sojourn_moments(8.0, 1.0, 8)
        assert math.isinf(mean)
        assert math.isinf(variance)

    def test_zero_arrivals_pure_service(self):
        mean, variance = operator_sojourn_moments(0.0, 2.0, 3)
        assert mean == pytest.approx(0.5)
        assert variance == pytest.approx(0.25)

    def test_mm1_moments_closed_form(self):
        # M/M/1: T ~ Exp(mu - lam) exactly -> var = 1/(mu-lam)^2.
        mean, variance = operator_sojourn_moments(3.0, 4.0, 1)
        assert mean == pytest.approx(1.0)
        assert variance == pytest.approx(1.0)


class TestQuantileBound:
    def test_above_mean(self, chain_model):
        allocation = [5, 7, 3]
        mean = chain_model.expected_sojourn(allocation)
        bound = sojourn_quantile_bound(chain_model, allocation, q=0.95)
        assert bound > mean

    def test_median_equals_mean_approximation(self, chain_model):
        allocation = [5, 7, 3]
        assert sojourn_quantile_bound(
            chain_model, allocation, q=0.5
        ) == pytest.approx(chain_model.expected_sojourn(allocation))

    def test_higher_quantile_higher_bound(self, chain_model):
        allocation = [5, 7, 3]
        b90 = sojourn_quantile_bound(chain_model, allocation, q=0.9)
        b99 = sojourn_quantile_bound(chain_model, allocation, q=0.99)
        assert b99 > b90

    def test_monotone_in_processors(self, chain_model):
        base = [5, 7, 3]
        value = sojourn_quantile_bound(chain_model, base, q=0.95)
        for i in range(3):
            more = list(base)
            more[i] += 1
            assert sojourn_quantile_bound(chain_model, more, q=0.95) <= value

    def test_saturated_infinite(self, chain_model):
        assert math.isinf(
            sojourn_quantile_bound(chain_model, [1, 1, 1], q=0.95)
        )

    def test_arbitrary_upper_tail_quantiles_supported(self, chain_model):
        """Any q in [0.5, 1) works now; bounds stay monotone in q."""
        allocation = [5, 7, 3]
        bounds = [
            sojourn_quantile_bound(chain_model, allocation, q=q)
            for q in (0.5, 0.73, 0.9, 0.97, 0.999)
        ]
        assert bounds == sorted(bounds)
        assert all(math.isfinite(b) for b in bounds)

    def test_q_one_returns_inf(self, chain_model):
        assert math.isinf(
            sojourn_quantile_bound(chain_model, [5, 7, 3], q=1.0)
        )

    def test_below_median_quantile_rejected(self, chain_model):
        with pytest.raises(ValueError):
            sojourn_quantile_bound(chain_model, [5, 7, 3], q=0.3)


class TestQuantileSolver:
    def test_meets_bound(self, chain_model):
        tmax = 1.5
        allocation = min_processors_for_quantile(chain_model, tmax, q=0.95)
        assert (
            sojourn_quantile_bound(chain_model, list(allocation.vector), q=0.95)
            <= tmax
        )

    def test_needs_more_than_mean_target(self, chain_model):
        """A p95 target requires at least as many processors as the same
        mean target (the bound dominates the mean)."""
        tmax = 1.5
        by_mean = min_processors_for_target(chain_model, tmax)
        by_p95 = min_processors_for_quantile(chain_model, tmax, q=0.95)
        assert by_p95.total >= by_mean.total

    def test_infeasible_target(self, chain_model):
        with pytest.raises(InfeasibleAllocationError):
            min_processors_for_quantile(
                chain_model, 1e-6, q=0.95, hard_limit=100
            )

    def test_bound_covers_simulated_p95(self):
        """Single-operator check: the analytic bound sits above (or near)
        the simulated p95 — it is meant as a conservative planning bound."""
        from repro.scheduler import Allocation
        from repro.sim import RuntimeOptions, Simulator, TopologyRuntime
        from repro.topology import TopologyBuilder

        topology = (
            TopologyBuilder("mmk")
            .add_spout("src", rate=8.0)
            .add_operator("op", mu=1.0)
            .connect("src", "op")
            .build()
        )
        model = PerformanceModel.from_topology(topology)
        bound = sojourn_quantile_bound(model, [10], q=0.95)
        simulator = Simulator()
        runtime = TopologyRuntime(
            simulator,
            topology,
            Allocation(["op"], [10]),
            RuntimeOptions(queue_discipline="shared", seed=5),
        )
        runtime.start()
        simulator.run_until(2000.0)
        measured_p95 = runtime.stats(warmup=200.0).p95_sojourn
        # The normal approximation under-covers slightly for the skewed
        # exponential tail; allow 15% slack in the comparison.
        assert bound > 0.85 * measured_p95

    def test_exact_mm1_quantile_reference(self):
        """Cross-check the bound's ingredients against the exact M/M/1
        sojourn distribution (T ~ Exp(mu - lam))."""
        queue = MMkQueue(lam=3.0, mu=4.0, k=1)
        # Exact p95 of Exp(1): -ln(0.05) ~= 2.996.
        exact = -math.log(0.05)
        mean, variance = operator_sojourn_moments(3.0, 4.0, 1)
        normal_bound = mean + 1.6449 * math.sqrt(variance)
        # Normal approximation of an exponential p95 lands ~12% low;
        # both must be in the same ballpark.
        assert normal_bound == pytest.approx(exact, rel=0.15)
        assert queue.sojourn_time_tail(exact) == pytest.approx(0.05, rel=0.05)
