"""Tests for repro.randomness.arrival processes."""

import random

import pytest

from repro.randomness.arrival import (
    DeterministicProcess,
    MMPP2,
    ModulatedRateProcess,
    PhasedArrivalProcess,
    PoissonProcess,
    RenewalProcess,
    TraceReplayProcess,
    UniformRateProcess,
)
from repro.randomness.distributions import Exponential, Uniform


def empirical_rate(process, horizon=2000.0, seed=3):
    """Count arrivals over a horizon by walking the gap sequence."""
    rng = random.Random(seed)
    now = 0.0
    count = 0
    while True:
        gap = process.next_gap(now, rng)
        assert gap > 0
        now += gap
        if now > horizon:
            break
        count += 1
    return count / horizon


class TestPoissonProcess:
    def test_mean_rate_property(self):
        assert PoissonProcess(5.0).mean_rate == 5.0

    def test_empirical_rate(self):
        assert empirical_rate(PoissonProcess(4.0)) == pytest.approx(4.0, rel=0.05)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(0.0)


class TestDeterministicProcess:
    def test_constant_gap(self, rng):
        p = DeterministicProcess(4.0)
        assert p.next_gap(0.0, rng) == pytest.approx(0.25)

    def test_empirical_rate(self):
        assert empirical_rate(DeterministicProcess(7.0)) == pytest.approx(
            7.0, rel=0.01
        )


class TestRenewalProcess:
    def test_mean_rate_from_distribution(self):
        p = RenewalProcess(Exponential(rate=2.0))
        assert p.mean_rate == pytest.approx(2.0)

    def test_uniform_gaps(self):
        p = RenewalProcess(Uniform(0.1, 0.3))
        assert empirical_rate(p) == pytest.approx(5.0, rel=0.05)


class TestUniformRateProcess:
    def test_mean_rate(self):
        p = UniformRateProcess(1.0, 25.0)
        assert p.mean_rate == pytest.approx(13.0)

    def test_empirical_rate_close_to_mean(self):
        p = UniformRateProcess(1.0, 25.0)
        assert empirical_rate(p, horizon=5000.0) == pytest.approx(13.0, rel=0.1)

    def test_gaps_within_rate_bounds(self, rng):
        p = UniformRateProcess(2.0, 10.0)
        now = 0.0
        for _ in range(200):
            gap = p.next_gap(now, rng)
            assert 1.0 / 10.0 <= gap <= 1.0 / 2.0
            now += gap

    def test_rejects_inverted_rates(self):
        with pytest.raises(ValueError):
            UniformRateProcess(10.0, 2.0)


class TestMMPP2:
    def test_mean_rate_stationary(self):
        p = MMPP2(rate_low=2.0, rate_high=10.0, switch_to_high=1.0, switch_to_low=1.0)
        assert p.mean_rate == pytest.approx(6.0)

    def test_empirical_rate(self):
        p = MMPP2(rate_low=2.0, rate_high=10.0, switch_to_high=0.5, switch_to_low=0.5)
        assert empirical_rate(p, horizon=5000.0) == pytest.approx(6.0, rel=0.1)

    def test_gaps_positive(self, rng):
        p = MMPP2(rate_low=1.0, rate_high=50.0, switch_to_high=5.0, switch_to_low=5.0)
        now = 0.0
        for _ in range(500):
            gap = p.next_gap(now, rng)
            assert gap > 0
            now += gap


class TestModulatedRateProcess:
    def test_constant_fn_matches_poisson(self):
        p = ModulatedRateProcess(lambda t: 4.0, nominal_rate=4.0)
        assert empirical_rate(p) == pytest.approx(4.0, rel=0.05)

    def test_step_function_changes_rate(self):
        p = ModulatedRateProcess(
            lambda t: 2.0 if t < 1000 else 8.0, nominal_rate=5.0
        )
        rng = random.Random(0)
        now, early, late = 0.0, 0, 0
        while now < 2000.0:
            now += p.next_gap(now, rng)
            if now < 1000:
                early += 1
            elif now < 2000:
                late += 1
        assert late > 2.5 * early

    def test_invalid_rate_raises(self, rng):
        p = ModulatedRateProcess(lambda t: -1.0, nominal_rate=1.0)
        with pytest.raises(ValueError):
            p.next_gap(0.0, rng)


class TestTraceReplay:
    def test_replays_exact_gaps(self, rng):
        p = TraceReplayProcess([0.0, 1.0, 3.0, 6.0])
        assert p.next_gap(0.0, rng) == pytest.approx(1.0)
        assert p.next_gap(1.0, rng) == pytest.approx(2.0)
        assert p.next_gap(3.0, rng) == pytest.approx(3.0)
        assert not p.exhausted or p.exhausted  # attribute exists

    def test_exhaustion_falls_back_to_poisson(self, rng):
        p = TraceReplayProcess([0.0, 1.0])
        p.next_gap(0.0, rng)
        assert p.exhausted
        # Falls back without raising, at the empirical rate.
        assert p.next_gap(1.0, rng) > 0

    def test_empirical_rate_property(self):
        p = TraceReplayProcess([0.0, 1.0, 2.0, 3.0, 4.0])
        assert p.mean_rate == pytest.approx(1.0)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            TraceReplayProcess([0.0, 2.0, 1.0])

    def test_rejects_short_trace(self):
        with pytest.raises(ValueError):
            TraceReplayProcess([1.0])


class TestPhasedArrivalProcess:
    def test_scales_rate_per_phase(self):
        p = PhasedArrivalProcess(
            DeterministicProcess(10.0), [(0.0, 1.0), (100.0, 2.0)]
        )
        rng = random.Random(1)
        assert p.next_gap(0.0, rng) == pytest.approx(0.1)
        assert p.next_gap(150.0, rng) == pytest.approx(0.05)

    def test_base_rate_before_first_phase(self):
        p = PhasedArrivalProcess(DeterministicProcess(10.0), [(50.0, 3.0)])
        rng = random.Random(1)
        assert p.next_gap(0.0, rng) == pytest.approx(0.1)
        assert p.next_gap(60.0, rng) == pytest.approx(0.1 / 3.0)

    def test_mean_rate_uses_multiplier_at_time_zero(self):
        surge_later = PhasedArrivalProcess(
            DeterministicProcess(10.0), [(300.0, 3.0)]
        )
        assert surge_later.mean_rate == pytest.approx(10.0)
        from_start = PhasedArrivalProcess(
            DeterministicProcess(10.0), [(0.0, 3.0)]
        )
        assert from_start.mean_rate == pytest.approx(30.0)

    def test_empirical_rate_matches_schedule(self):
        p = PhasedArrivalProcess(
            PoissonProcess(5.0), [(0.0, 1.0), (1000.0, 2.0)]
        )
        assert empirical_rate(p, horizon=2000.0) == pytest.approx(7.5, rel=0.1)

    def test_straddling_gap_is_retimed_under_next_phase(self, rng):
        """A draw reaching past the phase boundary finishes at the next
        phase's rate instead of carrying the old rate across (the
        fidelity audit's step-rate bias)."""
        # Base gap 1.0s; rate x10 from t=0.5.  The first 0.5s consumes
        # half the draw at multiplier 1; the remaining half runs at x10.
        p = PhasedArrivalProcess(DeterministicProcess(1.0), [(0.5, 10.0)])
        assert p.next_gap(0.0, rng) == pytest.approx(0.5 + 0.05)

    def test_gap_spanning_multiple_boundaries(self, rng):
        p = PhasedArrivalProcess(
            DeterministicProcess(1.0), [(0.2, 2.0), (0.4, 4.0)]
        )
        # 0.2s at x1 consumes 0.2; 0.2s at x2 consumes 0.4; the last 0.4
        # of the base draw takes 0.1s at x4.
        assert p.next_gap(0.0, rng) == pytest.approx(0.2 + 0.2 + 0.1)

    def test_gap_ending_exactly_on_boundary(self, rng):
        p = PhasedArrivalProcess(DeterministicProcess(2.0), [(0.5, 3.0)])
        # Base gap 0.5 fits exactly in [0, 0.5) at x1 — untouched.
        assert p.next_gap(0.0, rng) == pytest.approx(0.5)

    def test_gap_within_one_phase_unchanged(self, rng):
        p = PhasedArrivalProcess(DeterministicProcess(10.0), [(50.0, 2.0)])
        # Far from any boundary: identical to plain division.
        assert p.next_gap(10.0, rng) == 0.1
        assert p.next_gap(60.0, rng) == 0.1 / 2.0

    def test_step_rate_empirical_rate_unbiased(self):
        """Coarse base gaps + a large step: counting arrivals on each
        side of the boundary matches the piecewise-exact expectation
        (the pre-fix carry-across behaviour under-delivered the first
        post-step arrivals by ~one mean gap)."""
        p = PhasedArrivalProcess(PoissonProcess(0.5), [(500.0, 20.0)])
        rng = random.Random(11)
        now, early, late = 0.0, 0, 0
        while now < 1000.0:
            now += p.next_gap(now, rng)
            if now < 500.0:
                early += 1
            elif now < 1000.0:
                late += 1
        assert early == pytest.approx(0.5 * 500, rel=0.2)
        assert late == pytest.approx(10.0 * 500, rel=0.05)

    def test_validation(self):
        base = DeterministicProcess(1.0)
        with pytest.raises(ValueError):
            PhasedArrivalProcess(base, [])
        with pytest.raises(ValueError):
            PhasedArrivalProcess(base, [(10.0, 1.0), (10.0, 2.0)])
        with pytest.raises(ValueError):
            PhasedArrivalProcess(base, [(0.0, 0.0)])
        with pytest.raises(ValueError):
            PhasedArrivalProcess(base, [(-1.0, 1.0)])
