"""Tests for Algorithm 1 (AssignProcessors) — incl. Theorem 1 validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleAllocationError
from repro.model import PerformanceModel
from repro.scheduler import assign_processors, exhaustive_best_allocation
from repro.scheduler.assign import assignment_trace


def model_from(lams, mus, lam0=None):
    names = [f"op{i}" for i in range(len(lams))]
    return PerformanceModel.from_measurements(
        names, lams, mus, external_rate=lam0 if lam0 is not None else lams[0]
    )


class TestAssignProcessors:
    def test_uses_entire_budget(self, chain_model):
        allocation = assign_processors(chain_model, 15)
        assert allocation.total == 15

    def test_respects_stability_floor(self, chain_model):
        allocation = assign_processors(chain_model, 15)
        for name, minimum in zip(
            chain_model.operator_names, chain_model.min_allocation()
        ):
            assert allocation[name] >= minimum

    def test_infeasible_budget_raises(self, chain_model):
        floor = chain_model.min_total_processors()
        with pytest.raises(InfeasibleAllocationError, match="not sufficient"):
            assign_processors(chain_model, floor - 1)

    def test_exact_floor_budget(self, chain_model):
        floor = chain_model.min_total_processors()
        allocation = assign_processors(chain_model, floor)
        assert list(allocation.vector) == chain_model.min_allocation()

    def test_paper_vld_recommendation(self, vld_like_topology):
        model = PerformanceModel.from_topology(vld_like_topology)
        assert assign_processors(model, 22).spec() == "10:11:1"
        assert assign_processors(model, 17).spec() == "8:8:1"

    def test_matches_exhaustive_on_chain(self, chain_model):
        greedy = assign_processors(chain_model, 14)
        best, best_value = exhaustive_best_allocation(chain_model, 14)
        greedy_value = chain_model.expected_sojourn(list(greedy.vector))
        assert greedy_value == pytest.approx(best_value, rel=1e-12)
        assert greedy == best

    def test_rejects_bad_kmax(self, chain_model):
        with pytest.raises(InfeasibleAllocationError):
            assign_processors(chain_model, 0)


class TestAssignmentTrace:
    def test_trace_monotone_descent(self, chain_model):
        trace = assignment_trace(chain_model, 14)
        values = [
            chain_model.expected_sojourn(list(a.vector)) for a in trace
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_trace_ends_at_greedy(self, chain_model):
        trace = assignment_trace(chain_model, 14)
        assert trace[-1] == assign_processors(chain_model, 14)

    def test_trace_lengths(self, chain_model):
        floor = chain_model.min_total_processors()
        trace = assignment_trace(chain_model, floor + 4)
        assert len(trace) == 5


@settings(max_examples=60, deadline=None)
@given(
    loads=st.lists(
        st.tuples(
            st.floats(min_value=0.5, max_value=30.0),  # lambda
            st.floats(min_value=0.5, max_value=15.0),  # mu
        ),
        min_size=2,
        max_size=3,
    ),
    slack=st.integers(min_value=1, max_value=6),
)
def test_theorem1_greedy_equals_exhaustive(loads, slack):
    """Theorem 1: the greedy is exactly optimal (vs brute force)."""
    lams = [lam for lam, _ in loads]
    mus = [mu for _, mu in loads]
    model = model_from(lams, mus)
    kmax = model.min_total_processors() + slack
    greedy = assign_processors(model, kmax)
    _, best_value = exhaustive_best_allocation(model, kmax)
    greedy_value = model.expected_sojourn(list(greedy.vector))
    assert greedy_value == pytest.approx(best_value, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    lams=st.lists(
        st.floats(min_value=0.5, max_value=40.0), min_size=1, max_size=4
    ),
    slack=st.integers(min_value=0, max_value=15),
)
def test_budget_always_fully_used(lams, slack):
    """Algorithm 1's while-loop runs until sum(k) == Kmax."""
    mus = [lam / 2.0 for lam in lams]  # offered load 2 everywhere
    model = model_from(lams, mus)
    kmax = model.min_total_processors() + slack
    assert assign_processors(model, kmax).total == kmax


@settings(max_examples=40, deadline=None)
@given(
    lams=st.lists(
        st.floats(min_value=0.5, max_value=40.0), min_size=2, max_size=4
    ),
    slack=st.integers(min_value=1, max_value=10),
)
def test_more_budget_never_worse(lams, slack):
    """E[T] of the optimum is monotone in Kmax."""
    mus = [lam / 1.5 for lam in lams]
    model = model_from(lams, mus)
    floor = model.min_total_processors()
    smaller = assign_processors(model, floor + slack - 1)
    larger = assign_processors(model, floor + slack)
    assert model.expected_sojourn(list(larger.vector)) <= model.expected_sojourn(
        list(smaller.vector)
    ) + 1e-12
