"""Tests for topology graph, builder and routing (traffic equations)."""

import pytest

from repro.exceptions import StabilityError, TopologyError
from repro.randomness.distributions import Deterministic, Exponential
from repro.topology import (
    Edge,
    GainMatrix,
    Operator,
    Spout,
    Topology,
    TopologyBuilder,
    external_arrival_vector,
)


class TestOperator:
    def test_service_rate(self):
        op = Operator("a", Exponential(rate=4.0))
        assert op.service_rate == pytest.approx(4.0)

    def test_with_rate_constructor(self):
        op = Operator.with_rate("a", 2.5)
        assert op.service_rate == pytest.approx(2.5)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Operator("", Exponential(1.0))


class TestSpout:
    def test_poisson_constructor(self):
        spout = Spout.poisson("src", 3.0)
        assert spout.mean_rate == pytest.approx(3.0)


class TestEdge:
    def test_gain_defaults(self):
        edge = Edge(source="a", target="b")
        assert edge.gain == 1.0

    def test_fanout_mean_must_match_gain(self):
        with pytest.raises(TopologyError, match="disagrees"):
            Edge(source="a", target="b", gain=2.0, fanout=Deterministic(3.0))

    def test_fanout_matching_gain_accepted(self):
        edge = Edge(source="a", target="b", gain=3.0, fanout=Deterministic(3.0))
        assert edge.fanout is not None

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            Edge(source="a", target="b", gain=-0.1)


class TestTopologyValidation:
    def test_duplicate_operator_rejected(self):
        with pytest.raises(TopologyError, match="duplicate"):
            (
                TopologyBuilder("t")
                .add_spout("s", rate=1.0)
                .add_operator("a", mu=1.0)
                .add_operator("a", mu=2.0)
                .connect("s", "a")
                .build()
            )

    def test_spout_operator_name_clash_rejected(self):
        with pytest.raises(TopologyError, match="both"):
            (
                TopologyBuilder("t")
                .add_spout("x", rate=1.0)
                .add_operator("x", mu=1.0)
                .connect("x", "x")
                .build()
            )

    def test_edge_into_spout_rejected(self):
        with pytest.raises(TopologyError, match="not an operator"):
            (
                TopologyBuilder("t")
                .add_spout("s", rate=1.0)
                .add_operator("a", mu=1.0)
                .connect("s", "a")
                .connect("a", "s")
                .build()
            )

    def test_unknown_edge_source_rejected(self):
        with pytest.raises(TopologyError, match="not defined"):
            (
                TopologyBuilder("t")
                .add_spout("s", rate=1.0)
                .add_operator("a", mu=1.0)
                .connect("ghost", "a")
                .build()
            )

    def test_unreachable_operator_rejected(self):
        with pytest.raises(TopologyError, match="unreachable"):
            Topology(
                "t",
                spouts=[Spout.poisson("s", 1.0)],
                operators=[
                    Operator.with_rate("a", 1.0),
                    Operator.with_rate("island", 1.0),
                ],
                edges=[Edge(source="s", target="a")],
            )

    def test_spout_without_edges_rejected(self):
        with pytest.raises(TopologyError, match="no outgoing"):
            Topology(
                "t",
                spouts=[Spout.poisson("s", 1.0), Spout.poisson("s2", 1.0)],
                operators=[Operator.with_rate("a", 1.0)],
                edges=[Edge(source="s", target="a")],
            )

    def test_duplicate_edge_rejected(self):
        with pytest.raises(TopologyError, match="duplicate edge"):
            Topology(
                "t",
                spouts=[Spout.poisson("s", 1.0)],
                operators=[Operator.with_rate("a", 1.0)],
                edges=[Edge(source="s", target="a"), Edge(source="s", target="a")],
            )

    def test_needs_spout_and_operator(self):
        with pytest.raises(TopologyError):
            Topology("t", spouts=[], operators=[Operator.with_rate("a", 1)], edges=[])


class TestTopologyAccessors:
    def test_operator_names_order_stable(self, chain_topology):
        assert chain_topology.operator_names == ("a", "b", "c")

    def test_operator_index(self, chain_topology):
        assert chain_topology.operator_index("b") == 1

    def test_unknown_operator_raises(self, chain_topology):
        with pytest.raises(TopologyError):
            chain_topology.operator("ghost")
        with pytest.raises(TopologyError):
            chain_topology.operator_index("ghost")

    def test_external_rate(self, chain_topology):
        assert chain_topology.external_rate == pytest.approx(10.0)

    def test_entry_operators(self, chain_topology):
        assert chain_topology.entry_operators() == ["a"]

    def test_in_out_edges(self, chain_topology):
        assert len(chain_topology.out_edges("a")) == 1
        assert len(chain_topology.in_edges("b")) == 1

    def test_describe_mentions_everything(self, chain_topology):
        text = chain_topology.describe()
        for name in ("src", "a", "b", "c"):
            assert name in text


class TestCycleDetection:
    def test_chain_has_no_cycle(self, chain_topology):
        assert not chain_topology.has_cycle()

    def test_loop_detected(self, loop_topology):
        assert loop_topology.has_cycle()

    def test_self_loop_detected(self):
        topology = (
            TopologyBuilder("self")
            .add_spout("s", rate=1.0)
            .add_operator("a", mu=10.0)
            .connect("s", "a")
            .connect("a", "a", gain=0.3)
            .build()
        )
        assert topology.has_cycle()


class TestTrafficEquations:
    def test_chain_rates(self, chain_topology):
        gains = GainMatrix(chain_topology)
        ext = external_arrival_vector(chain_topology)
        rates = gains.solve_traffic(ext)
        # src(10) -> a(10) -> b(gain 2 -> 20) -> c(gain .5 -> 10)
        assert rates == pytest.approx([10.0, 20.0, 10.0])

    def test_split_join_loop(self, loop_topology):
        gains = GainMatrix(loop_topology)
        ext = external_arrival_vector(loop_topology)
        rates = dict(zip(loop_topology.operator_names, gains.solve_traffic(ext)))
        # lambda_a = 5 + 0.2 * lambda_e; lambda_e = lambda_b + lambda_c
        #          = 0.6 lambda_a + 0.4 lambda_a = lambda_a
        # => lambda_a = 5 / 0.8 = 6.25
        assert rates["a"] == pytest.approx(6.25)
        assert rates["e"] == pytest.approx(6.25)
        assert rates["b"] == pytest.approx(3.75)
        assert rates["c"] == pytest.approx(2.5)

    def test_self_loop_geometric(self):
        topology = (
            TopologyBuilder("self")
            .add_spout("s", rate=6.0)
            .add_operator("a", mu=100.0)
            .connect("s", "a")
            .connect("a", "a", gain=0.5)
            .build()
        )
        gains = GainMatrix(topology)
        rates = gains.solve_traffic(external_arrival_vector(topology))
        assert rates[0] == pytest.approx(12.0)  # 6 / (1 - 0.5)

    def test_unstable_loop_rejected(self):
        topology = (
            TopologyBuilder("bad")
            .add_spout("s", rate=1.0)
            .add_operator("a", mu=10.0)
            .connect("s", "a")
            .connect("a", "a", gain=1.0)
            .build()
        )
        with pytest.raises(StabilityError, match="gain"):
            GainMatrix(topology).solve_traffic(
                external_arrival_vector(topology)
            )

    def test_amplifying_loop_rejected(self):
        topology = (
            TopologyBuilder("worse")
            .add_spout("s", rate=1.0)
            .add_operator("a", mu=10.0)
            .add_operator("b", mu=10.0)
            .connect("s", "a")
            .connect("a", "b", gain=2.0)
            .connect("b", "a", gain=0.6)  # loop gain 1.2
            .build()
        )
        with pytest.raises(StabilityError):
            GainMatrix(topology).solve_traffic(
                external_arrival_vector(topology)
            )

    def test_spectral_radius_of_chain_is_zero(self, chain_topology):
        assert GainMatrix(chain_topology).spectral_radius == pytest.approx(0.0)

    def test_external_vector_scaled_by_spout_edge_gain(self):
        topology = (
            TopologyBuilder("g")
            .add_spout("s", rate=4.0)
            .add_operator("a", mu=100.0)
            .connect("s", "a", gain=2.5)
            .build()
        )
        assert external_arrival_vector(topology) == pytest.approx([10.0])

    def test_wrong_ext_length_rejected(self, chain_topology):
        with pytest.raises(ValueError):
            GainMatrix(chain_topology).solve_traffic([1.0])


class TestBuilder:
    def test_requires_exactly_one_rate_spec(self):
        builder = TopologyBuilder("t")
        with pytest.raises(TopologyError):
            builder.add_spout("s")  # neither rate nor arrivals
        with pytest.raises(TopologyError):
            builder.add_operator("a")  # neither mu nor service_time

    def test_cannot_reuse_after_build(self):
        builder = (
            TopologyBuilder("t")
            .add_spout("s", rate=1.0)
            .add_operator("a", mu=1.0)
            .connect("s", "a")
        )
        builder.build()
        with pytest.raises(TopologyError, match="already produced"):
            builder.add_operator("b", mu=1.0)
