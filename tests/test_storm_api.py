"""Tests for the Storm-like programming facade."""

import pytest

from repro.exceptions import TopologyError
from repro.storm import (
    Bolt,
    LocalCluster,
    OutputCollector,
    Spout,
    StormTopologyBuilder,
)


class NumberSpout(Spout):
    """Emits 0, 1, 2, ... up to a limit."""

    def __init__(self, limit):
        self._limit = limit
        self._next = 0

    def next_tuple(self):
        if self._next >= self._limit:
            return None
        value = self._next
        self._next += 1
        return value


class DoublerBolt(Bolt):
    def execute(self, value, collector):
        collector.emit(value * 2)


class FanOutBolt(Bolt):
    """Emits n copies for input n (variable selectivity)."""

    def execute(self, value, collector):
        for _ in range(value % 3):
            collector.emit(value)


class SinkBolt(Bolt):
    def __init__(self):
        self.seen = []

    def execute(self, value, collector):
        self.seen.append(value)
        collector.emit(value)


def build_chain(limit=50):
    builder = StormTopologyBuilder("test")
    builder.set_spout("numbers", NumberSpout(limit))
    builder.set_bolt("double", DoublerBolt(), sources=["numbers"])
    sink = SinkBolt()
    builder.set_bolt("sink", sink, sources=["double"])
    return builder, sink


class TestBuilderValidation:
    def test_duplicate_names_rejected(self):
        builder = StormTopologyBuilder("t")
        builder.set_spout("a", NumberSpout(1))
        with pytest.raises(TopologyError, match="duplicate"):
            builder.set_bolt("a", DoublerBolt(), sources=["a"])

    def test_unknown_source_rejected(self):
        builder = StormTopologyBuilder("t")
        with pytest.raises(TopologyError, match="unknown source"):
            builder.set_bolt("b", DoublerBolt(), sources=["ghost"])

    def test_bolt_needs_sources(self):
        builder = StormTopologyBuilder("t")
        with pytest.raises(TopologyError, match="source"):
            builder.set_bolt("b", DoublerBolt(), sources=[])

    def test_type_checks(self):
        builder = StormTopologyBuilder("t")
        with pytest.raises(TopologyError):
            builder.set_spout("s", DoublerBolt())
        builder.set_spout("s", NumberSpout(1))
        with pytest.raises(TopologyError):
            builder.set_bolt("b", NumberSpout(1), sources=["s"])


class TestLocalCluster:
    def test_processes_all_tuples(self):
        builder, sink = build_chain(limit=50)
        result = LocalCluster(builder, kmax=10).run(max_tuples=50)
        assert result.external_tuples == 50
        assert result.processed["double"] == 50
        assert result.processed["sink"] == 50
        assert sink.seen == [2 * n for n in range(50)]

    def test_outputs_collected_from_terminal_bolts(self):
        builder, _ = build_chain(limit=10)
        result = LocalCluster(builder, kmax=10).run(max_tuples=10)
        assert result.outputs == [2 * n for n in range(10)]

    def test_spout_exhaustion_stops_run(self):
        builder, _ = build_chain(limit=5)
        result = LocalCluster(builder, kmax=10).run(max_tuples=100)
        assert result.external_tuples == 5

    def test_variable_selectivity(self):
        builder = StormTopologyBuilder("fan")
        builder.set_spout("numbers", NumberSpout(30))
        builder.set_bolt("fan", FanOutBolt(), sources=["numbers"])
        result = LocalCluster(builder, kmax=5).run(max_tuples=30)
        expected = sum(n % 3 for n in range(30))
        assert len(result.outputs) == expected

    def test_measured_rates_present(self):
        builder, _ = build_chain(limit=100)
        result = LocalCluster(builder, kmax=10).run(max_tuples=100)
        assert result.arrival_rates["double"] > 0
        assert result.service_rates["double"] > 0
        assert result.external_rate > 0

    def test_recommendation_produced(self):
        builder, _ = build_chain(limit=200)
        result = LocalCluster(builder, kmax=10).run(max_tuples=200)
        assert result.recommendation is not None
        assert result.recommendation.total == 10
        assert result.estimated_sojourn is not None

    def test_sink_callback(self):
        builder, _ = build_chain(limit=5)
        collected = []
        LocalCluster(builder, kmax=4).run(max_tuples=5, sink=collected.append)
        assert collected == [0, 2, 4, 6, 8]

    def test_validation(self):
        builder, _ = build_chain()
        with pytest.raises(TopologyError):
            LocalCluster(builder, kmax=0)
        cluster = LocalCluster(builder, kmax=5)
        with pytest.raises(TopologyError):
            cluster.run(max_tuples=0)

    def test_cluster_needs_components(self):
        empty = StormTopologyBuilder("e")
        with pytest.raises(TopologyError):
            LocalCluster(empty)
        only_spout = StormTopologyBuilder("s")
        only_spout.set_spout("s", NumberSpout(1))
        with pytest.raises(TopologyError):
            LocalCluster(only_spout)


class TestOutputCollector:
    def test_drain_clears(self):
        collector = OutputCollector()
        collector.emit(1)
        collector.emit(2)
        assert collector.drain() == [1, 2]
        assert collector.drain() == []


class TestLifecycleHooks:
    def test_open_prepare_close_cleanup_called(self):
        events = []

        class HookedSpout(NumberSpout):
            def open(self, context):
                events.append(("open", context.component_name))

            def close(self):
                events.append(("close", "spout"))

        class HookedBolt(DoublerBolt):
            def prepare(self, context):
                events.append(("prepare", context.component_name))

            def cleanup(self):
                events.append(("cleanup", "bolt"))

        builder = StormTopologyBuilder("hooks")
        builder.set_spout("s", HookedSpout(3))
        builder.set_bolt("b", HookedBolt(), sources=["s"])
        LocalCluster(builder, kmax=2).run(max_tuples=3)
        assert ("open", "s") in events
        assert ("prepare", "b") in events
        assert ("close", "spout") in events
        assert ("cleanup", "bolt") in events
