"""Tests for heterogeneous-processor scheduling (paper Sec. III-A claim)."""

import math

import pytest

from repro.exceptions import InfeasibleAllocationError, SchedulingError
from repro.model import PerformanceModel
from repro.scheduler import assign_processors
from repro.scheduler.heterogeneous import (
    HeterogeneousAssignment,
    ProcessorClass,
    assign_heterogeneous,
    expected_sojourn_heterogeneous,
)


def model_from(lams, mus, lam0=None):
    names = [f"op{i}" for i in range(len(lams))]
    return PerformanceModel.from_measurements(
        names, lams, mus, external_rate=lam0 if lam0 is not None else lams[0]
    )


class TestProcessorClass:
    def test_valid(self):
        cls = ProcessorClass("fast", speed=2.0, count=4)
        assert cls.speed == 2.0

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            ProcessorClass("x", speed=0.0, count=1)

    def test_rejects_bad_count(self):
        with pytest.raises(SchedulingError):
            ProcessorClass("x", speed=1.0, count=-1)


class TestReductionToAlgorithm1:
    def test_single_class_matches_homogeneous_greedy(self, chain_model):
        """With one speed-1 class this must reduce exactly to Algorithm 1."""
        kmax = chain_model.min_total_processors() + 5
        homogeneous = assign_processors(chain_model, kmax)
        heterogeneous = assign_heterogeneous(
            chain_model, [ProcessorClass("std", speed=1.0, count=kmax)]
        )
        for name in chain_model.operator_names:
            assert heterogeneous.total_processors(name) == homogeneous[name]

    def test_sojourn_matches_homogeneous_model(self, chain_model):
        kmax = chain_model.min_total_processors() + 5
        assignment = assign_heterogeneous(
            chain_model, [ProcessorClass("std", speed=1.0, count=kmax)]
        )
        value = expected_sojourn_heterogeneous(chain_model, assignment)
        homogeneous = assign_processors(chain_model, kmax)
        expected = chain_model.expected_sojourn(list(homogeneous.vector))
        assert value == pytest.approx(expected, rel=1e-9)


class TestHeterogeneousBehaviour:
    def test_all_processors_placed(self, chain_model):
        classes = [
            ProcessorClass("fast", speed=2.0, count=4),
            ProcessorClass("slow", speed=0.5, count=20),
        ]
        assignment = assign_heterogeneous(chain_model, classes)
        placed = sum(
            assignment.total_processors(name)
            for name in chain_model.operator_names
        )
        assert placed == 24

    def test_result_is_stable(self, chain_model):
        classes = [
            ProcessorClass("fast", speed=2.0, count=4),
            ProcessorClass("slow", speed=0.5, count=20),
        ]
        assignment = assign_heterogeneous(chain_model, classes)
        assert not math.isinf(
            expected_sojourn_heterogeneous(chain_model, assignment)
        )

    def test_fast_processors_go_to_loaded_operators(self):
        """One hot operator, one cold: the fast units serve the hot one."""
        model = model_from([50.0, 1.0], [10.0, 10.0])
        classes = [
            ProcessorClass("fast", speed=4.0, count=2),
            ProcessorClass("slow", speed=1.0, count=8),
        ]
        assignment = assign_heterogeneous(model, classes)
        hot = assignment.counts("op0")
        assert hot.get("fast", 0) >= 1

    def test_speed_counts_toward_stability(self):
        """An operator needing 6 speed-units can run on 3 speed-2 cores."""
        model = model_from([5.9], [1.0])
        classes = [ProcessorClass("fast", speed=2.0, count=3)]
        assignment = assign_heterogeneous(model, classes)
        assert assignment.total_processors("op0") == 3
        assert not math.isinf(
            expected_sojourn_heterogeneous(model, assignment)
        )

    def test_infeasible_pool_raises(self):
        model = model_from([100.0], [1.0])
        with pytest.raises(InfeasibleAllocationError):
            assign_heterogeneous(
                model, [ProcessorClass("tiny", speed=0.5, count=3)]
            )

    def test_duplicate_class_names_rejected(self, chain_model):
        with pytest.raises(SchedulingError):
            assign_heterogeneous(
                chain_model,
                [
                    ProcessorClass("a", speed=1.0, count=5),
                    ProcessorClass("a", speed=2.0, count=5),
                ],
            )

    def test_empty_classes_rejected(self, chain_model):
        with pytest.raises(SchedulingError):
            assign_heterogeneous(chain_model, [])


class TestNearOptimality:
    def test_greedy_close_to_exhaustive_small_case(self):
        """Brute-force all feasible splits of a tiny heterogeneous pool
        and check the greedy is within 10% of the best."""
        model = model_from([8.0, 6.0], [2.0, 2.0])
        classes = [
            ProcessorClass("fast", speed=2.0, count=2),
            ProcessorClass("slow", speed=1.0, count=6),
        ]
        greedy = assign_heterogeneous(model, classes)
        greedy_value = expected_sojourn_heterogeneous(model, greedy)

        best_value = math.inf
        # Enumerate: fast to op0 in {0,1,2}; slow to op0 in {0..6}.
        for fast0 in range(3):
            for slow0 in range(7):
                assignment = HeterogeneousAssignment(
                    operator_names=("op0", "op1"),
                    per_operator=(
                        {"fast": fast0, "slow": slow0},
                        {"fast": 2 - fast0, "slow": 6 - slow0},
                    ),
                    class_speeds={"fast": 2.0, "slow": 1.0},
                )
                value = expected_sojourn_heterogeneous(model, assignment)
                best_value = min(best_value, value)
        assert greedy_value <= best_value * 1.10
