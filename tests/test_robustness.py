"""Tests for the robustness study (model under assumption violations)."""

import pytest

from repro.experiments import robustness


@pytest.fixture(scope="module")
def result():
    return robustness.run(duration=600.0)


class TestGrid:
    def test_full_grid_covered(self, result):
        arrivals = {p.arrival for p in result.points}
        services = {p.service for p in result.points}
        assert len(arrivals) == 4
        assert len(services) == 5
        assert len(result.points) == 20

    def test_conforming_case_accurate(self, result):
        """Poisson + exponential is the model's home turf: within 10%."""
        point = next(
            p
            for p in result.points
            if p.arrival == "poisson" and p.service == "exponential"
        )
        assert 0.9 < point.ratio < 1.1
        assert point.ranking_preserved

    def test_mild_violations_stay_close(self, result):
        """The paper's claim: uniform rates, non-exponential service -> the
        estimate stays within ~25% and the ranking survives."""
        mild = [
            p
            for p in result.points
            if p.arrival in ("poisson", "deterministic", "uniform_rate")
        ]
        for point in mild:
            assert 0.7 < point.ratio < 1.3, (point.arrival, point.service)
            assert point.ranking_preserved, (point.arrival, point.service)

    def test_bursty_arrivals_break_the_model(self, result):
        """The honest limit: strongly bursty MMPP arrivals overload the
        operator in bursts regardless of k in this range; the model
        under-estimates badly.  DRS's measured-feedback loop exists for
        exactly this case."""
        bursty = [p for p in result.points if p.arrival == "bursty_mmpp"]
        assert all(p.ratio > 3.0 for p in bursty)

    def test_ranking_accuracy_counts_mild_cases(self, result):
        assert result.ranking_accuracy() >= 0.7

    def test_render(self, result):
        text = robustness.render(result)
        assert "ranking accuracy" in text
        assert "bursty_mmpp" in text
