"""Tests for the experiment report renderers on synthetic results."""

import pytest

from repro.experiments.baselines import BaselineComparison, BaselineRow
from repro.experiments.fig6 import AllocationMeasurement, Fig6Result
from repro.experiments.fig7 import EstimatePoint, Fig7Result
from repro.experiments.fig8 import Fig8Result, UnderestimationPoint
from repro.experiments.fig9 import Fig9Result, TimelineCurve
from repro.experiments.fig10 import ScalingRun
from repro.experiments.table2 import OverheadRow, Table2Result
from repro.experiments import report


@pytest.fixture
def fig6_result():
    return Fig6Result(
        application="vld",
        rows=[
            AllocationMeasurement("10:11:1", 1.1, 0.9, 5000, True),
            AllocationMeasurement("8:12:2", 1.9, 1.7, 5000, False),
        ],
        drs_recommendation="10:11:1",
    )


class TestFig6Rendering:
    def test_contains_star_and_values(self, fig6_result):
        text = report.render_fig6(fig6_result)
        assert "10:11:1" in text
        assert "*" in text
        assert "1100.0 ms" in text

    def test_best_spec(self, fig6_result):
        assert fig6_result.best_spec() == "10:11:1"
        assert fig6_result.recommendation_is_best()


class TestFig7Rendering:
    def test_sorted_by_estimate(self):
        result = Fig7Result(
            application="fpd",
            points=[
                EstimatePoint("b", estimated=2.0, measured=2.5),
                EstimatePoint("a", estimated=1.0, measured=1.2),
            ],
            rank_correlation=1.0,
            calibration_r_squared=0.99,
        )
        text = report.render_fig7(result)
        assert text.index("a") < text.index("b") or "spearman" in text
        assert "spearman=1.000" in text
        assert result.is_monotone()

    def test_non_monotone_detected(self):
        result = Fig7Result(
            application="x",
            points=[
                EstimatePoint("a", estimated=1.0, measured=2.0),
                EstimatePoint("b", estimated=2.0, measured=1.5),
            ],
            rank_correlation=-1.0,
            calibration_r_squared=0.5,
        )
        assert not result.is_monotone()


class TestFig8Rendering:
    def test_decreasing_detection(self):
        decreasing = Fig8Result(
            points=[
                UnderestimationPoint(0.001, estimated=0.001, measured=0.02),
                UnderestimationPoint(0.1, estimated=0.1, measured=0.11),
            ]
        )
        assert decreasing.is_decreasing()
        text = report.render_fig8(decreasing)
        assert "ratio" in text

    def test_not_decreasing(self):
        flat = Fig8Result(
            points=[
                UnderestimationPoint(0.001, estimated=0.001, measured=0.001),
                UnderestimationPoint(0.1, estimated=0.1, measured=0.2),
            ]
        )
        assert not flat.is_decreasing()


class TestFig9Rendering:
    def test_curves_rendered(self):
        result = Fig9Result(
            application="vld",
            optimal_spec="10:11:1",
            near_optimal_specs=["10:11:1"],
            curves=[
                TimelineCurve(
                    initial_spec="8:12:2",
                    final_spec="10:11:1",
                    buckets=[(0.0, 1.5, 100), (30.0, 1.1, 110)],
                    rebalanced_at=30.0,
                )
            ],
        )
        text = report.render_fig9(result)
        assert "rebalanced at t=30s" in text
        assert result.all_converged()

    def test_unconverged_detected(self):
        result = Fig9Result(
            application="vld",
            optimal_spec="10:11:1",
            near_optimal_specs=["10:11:1"],
            curves=[
                TimelineCurve("8:12:2", "9:11:2", [], None),
            ],
        )
        assert not result.all_converged()


class TestFig10Rendering:
    def test_run_rendered(self):
        run = ScalingRun(
            name="ExpA",
            tmax=1.8,
            initial_machines=4,
            final_machines=5,
            initial_spec="8:8:1",
            final_spec="10:11:1",
            buckets=[(0.0, 2.5, 10)],
            scaled_at=240.0,
            spike_sojourn=3.0,
            settled_sojourn=1.2,
        )
        text = report.render_fig10([run])
        assert "ExpA" in text
        assert run.meets_target_after_scaling()

    def test_missed_target(self):
        run = ScalingRun(
            name="ExpB",
            tmax=1.0,
            initial_machines=5,
            final_machines=4,
            initial_spec="10:11:1",
            final_spec="8:8:1",
            buckets=[],
            scaled_at=None,
            spike_sojourn=None,
            settled_sojourn=2.0,
        )
        assert not run.meets_target_after_scaling()


class TestTable2Rendering:
    def test_rows_rendered(self):
        result = Table2Result(
            rows=[
                OverheadRow(12, 0.1, 0.2),
                OverheadRow(24, 0.2, 0.2),
            ]
        )
        text = report.render_table2(result)
        assert "Kmax" in text
        assert result.scheduling_is_increasing()
        assert result.measurement_is_flat()

    def test_flatness_tolerance(self):
        result = Table2Result(
            rows=[OverheadRow(12, 0.1, 0.1), OverheadRow(24, 0.2, 1.0)]
        )
        assert not result.measurement_is_flat(tolerance=3.0)


class TestBaselineRendering:
    def test_rows_sorted_by_model_value(self):
        result = BaselineComparison(
            application="vld",
            kmax=22,
            rows=[
                BaselineRow("uniform", "10:10:2", 1.3, 1.6),
                BaselineRow("drs", "10:11:1", 1.26, 1.45),
            ],
        )
        text = report.render_baselines(result)
        assert text.index("drs") < text.index("uniform")
        assert result.drs_wins_model()
        assert result.row("drs").spec == "10:11:1"
        with pytest.raises(KeyError):
            result.row("ghost")
