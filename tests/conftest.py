"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.model import PerformanceModel
from repro.topology import TopologyBuilder
from repro.topology.grouping import FieldsGrouping


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def chain_topology():
    """A small stable 3-operator chain (spout -> a -> b -> c)."""
    return (
        TopologyBuilder("chain")
        .add_spout("src", rate=10.0)
        .add_operator("a", mu=4.0)
        .add_operator("b", mu=6.0)
        .add_operator("c", mu=20.0)
        .connect("src", "a")
        .connect("a", "b", gain=2.0)
        .connect("b", "c", gain=0.5)
        .build()
    )


@pytest.fixture
def chain_model(chain_topology):
    return PerformanceModel.from_topology(chain_topology)


@pytest.fixture
def loop_topology():
    """A topology with split, join and a feedback loop (paper Fig. 2)."""
    return (
        TopologyBuilder("loopy")
        .add_spout("src", rate=5.0)
        .add_operator("a", mu=10.0)
        .add_operator("b", mu=8.0)
        .add_operator("c", mu=12.0)
        .add_operator("e", mu=15.0)
        .connect("src", "a")
        .connect("a", "b", gain=0.6)  # split
        .connect("a", "c", gain=0.4)
        .connect("b", "e", gain=1.0)  # join
        .connect("c", "e", gain=1.0)
        .connect("e", "a", gain=0.2)  # feedback loop
        .build()
    )


@pytest.fixture
def vld_like_topology():
    """The calibrated VLD shape with exponential services (fast tests)."""
    return (
        TopologyBuilder("vld_like")
        .add_spout("frames", rate=13.0)
        .add_operator("sift", mu=1.75)
        .add_operator("matcher", mu=17.5)
        .add_operator("aggregator", mu=150.0)
        .connect("frames", "sift")
        .connect("sift", "matcher", gain=10.0)
        .connect(
            "matcher", "aggregator", gain=0.3, grouping=FieldsGrouping(["root"])
        )
        .build()
    )
