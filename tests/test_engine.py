"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run_until(2.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [2.5]

    def test_clock_lands_on_horizon(self):
        sim = Simulator()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(3.0, lambda: None)

    def test_past_horizon_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(3.0)

    def test_events_beyond_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run_until(3.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run_until(6.0)
        assert fired == [1]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        handle.cancel()  # must not raise

    def test_cancelled_events_excluded_from_pending(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(4)]
        assert sim.pending_events == 4
        handles[0].cancel()
        handles[2].cancel()
        assert sim.pending_events == 2
        assert "pending=2" in repr(sim)
        handles[0].cancel()  # double cancel must not double-count
        assert sim.pending_events == 2

    def test_heap_compaction_reclaims_cancelled_entries(self):
        sim = Simulator()
        keep = [sim.schedule(5.0, lambda: None) for _ in range(3)]
        doomed = [sim.schedule(1.0, lambda: None) for _ in range(50)]
        for handle in doomed:
            handle.cancel()
        # More than half of the heap was cancelled -> compacted away.
        assert len(sim._queue) == 3
        assert sim.pending_events == 3
        fired = []
        for handle in keep:
            handle.callback = lambda: fired.append(1)
        sim.run_until(6.0)
        assert len(fired) == 3


class TestCompactionBoundary:
    """Regression tests at the >half-cancelled compaction boundary."""

    def test_compaction_triggers_only_past_the_boundary(self):
        sim = Simulator()
        keep = [sim.schedule(5.0, lambda: None) for _ in range(8)]
        doomed = [sim.schedule(1.0, lambda: None) for _ in range(9)]
        for handle in doomed[:8]:
            handle.cancel()
        # 8 cancelled of 17: not yet past the ">8 and more than half"
        # boundary — nothing is compacted, the counter carries the debt.
        assert len(sim._queue) == 17
        assert sim._cancelled == 8
        assert sim.pending_events == 9
        doomed[8].cancel()
        # 9 of 17: past the boundary.  Compaction must remove exactly
        # the cancelled entries and settle the counter to zero, so the
        # same backlog can never be walked twice.
        assert len(sim._queue) == 8
        assert sim._cancelled == 0
        assert sim.pending_events == 8
        del keep

    def test_compaction_does_not_rerun_on_clean_backlog(self):
        sim = Simulator()
        survivors = [sim.schedule(5.0, lambda: None) for _ in range(8)]
        doomed = [sim.schedule(1.0, lambda: None) for _ in range(9)]
        for handle in doomed:
            handle.cancel()
        assert sim._cancelled == 0  # compacted and fully accounted
        # Cancelling against the now-clean backlog must count from
        # zero: a stale counter would trigger an immediate second
        # compaction pass (and corrupt pending_events).
        survivors[0].cancel()
        assert sim._cancelled == 1
        assert sim.pending_events == 7
        assert len(sim._queue) == 8  # nothing compacted at 1/8

    def test_mid_drain_cancellation_keeps_counter_consistent(self):
        sim = Simulator()
        fired = []
        later = [sim.schedule(2.0, lambda: fired.append("late"))
                 for _ in range(10)]

        def cancel_most():
            # Runs inside the drain: cancels 9 of the 10 pending
            # handles, pushing the queue past the compaction boundary
            # while run_until is iterating.
            for handle in later[:9]:
                handle.cancel()

        sim.schedule(1.0, cancel_most)
        sim.run_until(3.0)
        assert fired == ["late"]
        assert sim._cancelled == 0
        assert sim.pending_events == 0


class TestCalendarScheduler:
    def test_scheduler_knob_validation(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="fibonacci")
        with pytest.raises(SimulationError):
            Simulator(spill_threshold=2)
        assert Simulator(scheduler="heap").scheduler == "heap"

    def test_calendar_spills_and_dispatches_identically(self):
        import random as _random

        def run(scheduler):
            rng = _random.Random(99)
            sim = Simulator(scheduler=scheduler, spill_threshold=64)
            fired = []
            kind = sim.register_handler(lambda a, b: fired.append((sim.now, a)))
            for i in range(500):
                sim.schedule_event(rng.uniform(0.0, 100.0), kind, i)
            spilled = sim.spilled_events
            sim.run_until(100.0)
            return fired, spilled

        heap_fired, _ = run("heap")
        cal_fired, cal_spilled = run("calendar")
        auto_fired, _ = run("auto")
        assert cal_spilled > 0  # the ladder actually engaged
        assert cal_fired == heap_fired
        assert auto_fired == heap_fired

    def test_heap_scheduler_never_spills(self):
        sim = Simulator(scheduler="heap")
        kind = sim.register_handler(lambda a, b: None)
        for i in range(10_000):
            sim.schedule_event(float(i), kind)
        assert sim.spilled_events == 0
        assert len(sim._queue) == 10_000

    def test_ties_preserved_across_spill_boundary(self):
        sim = Simulator(scheduler="calendar", spill_threshold=64)
        fired = []
        kind = sim.register_handler(lambda a, b: fired.append(a))
        for i in range(300):
            sim.schedule_event(50.0 + (i % 7), kind, i)
        sim.run_until(100.0)
        expected = sorted(range(300), key=lambda i: (i % 7, i))
        assert fired == expected

    def test_cancellation_reaches_spilled_entries(self):
        sim = Simulator(scheduler="calendar", spill_threshold=64)
        handles = [sim.schedule(float(i) + 1.0, lambda: None)
                   for i in range(400)]
        assert sim.spilled_events > 0
        for handle in handles[100:]:
            handle.cancel()
        # Compaction walked both heap and ladder buckets.
        assert sim.pending_events == 100
        fired = []
        for handle in handles[:100]:
            handle.callback = lambda: fired.append(1)
        sim.run_until(500.0)
        assert len(fired) == 100
        assert sim.pending_events == 0

    def test_step_pours_ladder(self):
        sim = Simulator(scheduler="calendar", spill_threshold=64)
        seen = []
        kind = sim.register_handler(lambda a, b: seen.append(a))
        for i in range(200):
            sim.schedule_event(float(200 - i), kind, i)
        assert sim.spilled_events > 0
        while sim.step():
            pass
        assert seen == list(reversed(range(200)))


class TestTypedEvents:
    def test_registered_handler_receives_payload(self):
        sim = Simulator()
        seen = []
        kind = sim.register_handler(lambda a, b: seen.append((sim.now, a, b)))
        sim.schedule_event(2.0, kind, "payload", 7)
        sim.schedule_event(1.0, kind, "first")
        sim.run_until(5.0)
        assert seen == [(1.0, "first", None), (2.0, "payload", 7)]

    def test_typed_and_callback_events_share_tie_order(self):
        sim = Simulator()
        fired = []
        kind = sim.register_handler(lambda a, b: fired.append(a))
        sim.schedule(1.0, lambda: fired.append("cb1"))
        sim.schedule_event(1.0, kind, "typed1")
        sim.schedule(1.0, lambda: fired.append("cb2"))
        sim.schedule_event(1.0, kind, "typed2")
        sim.run_until(1.0)
        assert fired == ["cb1", "typed1", "cb2", "typed2"]

    def test_typed_event_rejects_negative_delay(self):
        sim = Simulator()
        kind = sim.register_handler(lambda a, b: None)
        with pytest.raises(SimulationError):
            sim.schedule_event(-0.5, kind)
        with pytest.raises(SimulationError):
            sim.schedule_event(float("nan"), kind)

    def test_step_dispatches_typed_events(self):
        sim = Simulator()
        seen = []
        kind = sim.register_handler(lambda a, b: seen.append(a))
        sim.schedule_event(1.0, kind, "x")
        assert sim.step()
        assert seen == ["x"]
        assert sim.processed_events == 1


class TestSelfScheduling:
    def test_recurring_event(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if sim.now < 4.5:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_step_returns_false_on_empty(self):
        assert not Simulator().step()

    def test_run_all_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_all(max_events=100)

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.processed_events == 5
