"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run_until(2.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run_until(10.0)
        assert seen == [2.5]

    def test_clock_lands_on_horizon(self):
        sim = Simulator()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(3.0, lambda: None)

    def test_past_horizon_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(3.0)

    def test_events_beyond_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run_until(3.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run_until(6.0)
        assert fired == [1]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        handle.cancel()  # must not raise

    def test_cancelled_events_excluded_from_pending(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(4)]
        assert sim.pending_events == 4
        handles[0].cancel()
        handles[2].cancel()
        assert sim.pending_events == 2
        assert "pending=2" in repr(sim)
        handles[0].cancel()  # double cancel must not double-count
        assert sim.pending_events == 2

    def test_heap_compaction_reclaims_cancelled_entries(self):
        sim = Simulator()
        keep = [sim.schedule(5.0, lambda: None) for _ in range(3)]
        doomed = [sim.schedule(1.0, lambda: None) for _ in range(50)]
        for handle in doomed:
            handle.cancel()
        # More than half of the heap was cancelled -> compacted away.
        assert len(sim._queue) == 3
        assert sim.pending_events == 3
        fired = []
        for handle in keep:
            handle.callback = lambda: fired.append(1)
        sim.run_until(6.0)
        assert len(fired) == 3


class TestTypedEvents:
    def test_registered_handler_receives_payload(self):
        sim = Simulator()
        seen = []
        kind = sim.register_handler(lambda a, b: seen.append((sim.now, a, b)))
        sim.schedule_event(2.0, kind, "payload", 7)
        sim.schedule_event(1.0, kind, "first")
        sim.run_until(5.0)
        assert seen == [(1.0, "first", None), (2.0, "payload", 7)]

    def test_typed_and_callback_events_share_tie_order(self):
        sim = Simulator()
        fired = []
        kind = sim.register_handler(lambda a, b: fired.append(a))
        sim.schedule(1.0, lambda: fired.append("cb1"))
        sim.schedule_event(1.0, kind, "typed1")
        sim.schedule(1.0, lambda: fired.append("cb2"))
        sim.schedule_event(1.0, kind, "typed2")
        sim.run_until(1.0)
        assert fired == ["cb1", "typed1", "cb2", "typed2"]

    def test_typed_event_rejects_negative_delay(self):
        sim = Simulator()
        kind = sim.register_handler(lambda a, b: None)
        with pytest.raises(SimulationError):
            sim.schedule_event(-0.5, kind)
        with pytest.raises(SimulationError):
            sim.schedule_event(float("nan"), kind)

    def test_step_dispatches_typed_events(self):
        sim = Simulator()
        seen = []
        kind = sim.register_handler(lambda a, b: seen.append(a))
        sim.schedule_event(1.0, kind, "x")
        assert sim.step()
        assert seen == ["x"]
        assert sim.processed_events == 1


class TestSelfScheduling:
    def test_recurring_event(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            if sim.now < 4.5:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_step_returns_false_on_empty(self):
        assert not Simulator().step()

    def test_run_all_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run_all(max_events=100)

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.processed_events == 5
