"""The experiments-as-campaigns refactor is pinned to goldens.

``tests/golden/campaign_expansion.json`` holds the exact ScenarioSpec
lists the pre-campaign figure drivers built at their default protocols;
``tests/golden/campaign_exec_small.json`` holds small fixed-seed
execution results captured from those drivers.  Together they pin the
acceptance criterion: campaign definitions reproduce the pre-refactor
driver outputs bit-identically for fixed seeds.
"""

import json
from pathlib import Path

import pytest

from repro.apps import fpd as fpd_app
from repro.apps import vld as vld_app
from repro.experiments import (
    baselines,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    robustness,
    table2,
)
from repro.model.performance import PerformanceModel
from repro.scenarios.registry import create_policy
from repro.scenarios.spec import WORKLOADS

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def expansion_golden():
    return json.loads((GOLDEN / "campaign_expansion.json").read_text())


@pytest.fixture(scope="module")
def exec_golden():
    return json.loads((GOLDEN / "campaign_exec_small.json").read_text())


def baselines_campaign(application, workload_params):
    workload = WORKLOADS[application](**workload_params)
    topology = workload.build()
    model = PerformanceModel.from_topology(topology)
    candidates = {}
    for name, (policy_name, params) in baselines.candidate_policies(22).items():
        policy = create_policy(policy_name, topology, params)
        candidates[name] = policy.initial_allocation(model)
    return baselines.campaign(
        application,
        candidates,
        workload_params=workload_params,
        duration=300.0,
        warmup=60.0,
        seed=37,
    )


def default_campaigns():
    """Every campaign definition at the protocol the goldens captured."""
    return {
        "fig6-vld": fig6.campaign(
            "vld", vld_app.FIG6_CONFIGS, vld_app.RECOMMENDED,
            duration=600.0, warmup=60.0, seed=11, hop_latency=0.002, kmax=22,
        ),
        "fig6-fpd": fig6.campaign(
            "fpd", fpd_app.FIG6_CONFIGS, fpd_app.RECOMMENDED,
            duration=600.0, warmup=60.0, seed=13, hop_latency=None, kmax=22,
            workload_params={"scale": 1.0},
        ),
        "fig7-vld": fig7.campaign(
            "vld", vld_app.FIG6_CONFIGS,
            duration=600.0, warmup=60.0, seed=11, hop_latency=0.002,
        ),
        "fig7-fpd": fig7.campaign(
            "fpd", fpd_app.FIG6_CONFIGS,
            duration=600.0, warmup=60.0, seed=13, hop_latency=None,
            workload_params={"scale": 1.0},
        ),
        "fig8": fig8.campaign(
            list(fig8.FIG8_TOTAL_CPU),
            duration=300.0, warmup=30.0, seed=17, hop_latency=0.004,
            arrival_rate=20.0,
        ),
        "fig9-vld": fig9.campaign(
            "vld", list(vld_app.FIG9_INITIAL),
            enable_at=390.0, duration=810.0, bucket=30.0, seed=19,
            hop_latency=0.002,
        ),
        "fig9-fpd": fig9.campaign(
            "fpd", list(fpd_app.FIG9_INITIAL),
            enable_at=390.0, duration=810.0, bucket=30.0, seed=23,
            hop_latency=None, workload_params={"scale": 0.5},
        ),
        "fig10": fig10.campaign(
            (
                fig10.experiment_point(
                    "ExpA", tmax=1.8, initial_machines=4,
                    initial_spec=vld_app.RECOMMENDED_K17, seed=29,
                ),
                fig10.experiment_point(
                    "ExpB", tmax=6.0, initial_machines=5,
                    initial_spec=vld_app.RECOMMENDED, seed=31,
                ),
            ),
            enable_at=390.0, duration=810.0, bucket=30.0, hop_latency=0.002,
        ),
        "table2": table2.campaign(),
        "baselines-vld": baselines_campaign("vld", {}),
        "baselines-fpd": baselines_campaign("fpd", {"scale": 0.5}),
    }


class TestExpansionGoldens:
    """Campaign expansion == the spec lists the old drivers hand-built."""

    @pytest.mark.parametrize(
        "key",
        [
            "fig6-vld", "fig6-fpd", "fig7-vld", "fig7-fpd", "fig8",
            "fig9-vld", "fig9-fpd", "fig10", "table2",
            "baselines-vld", "baselines-fpd",
        ],
    )
    def test_expansion_matches_pre_refactor_specs(self, key, expansion_golden):
        campaign = default_campaigns()[key]
        got = [cell.spec.to_dict() for cell in campaign.expand()]
        assert got == expansion_golden[key]

    def test_campaigns_round_trip_through_json(self):
        for key, campaign in default_campaigns().items():
            rebuilt = type(campaign).from_json(campaign.to_json())
            assert [c.spec.to_dict() for c in rebuilt.expand()] == [
                c.spec.to_dict() for c in campaign.expand()
            ], key


class TestExecutionGoldens:
    """Small fixed-seed runs == the pre-refactor drivers' outputs."""

    def test_fig8(self, exec_golden):
        result = fig8.run(duration=60.0, warmup=10.0)
        got = [
            {
                "total_cpu": p.total_cpu,
                "estimated": p.estimated,
                "measured": p.measured,
            }
            for p in result.points
        ]
        assert got == exec_golden["fig8-small"]

    def test_baselines_vld(self, exec_golden):
        result = baselines.compare("vld", duration=60.0, warmup=10.0)
        got = [
            {
                "allocator": row.allocator,
                "spec": row.spec,
                "model_sojourn": row.model_sojourn,
                "measured_sojourn": row.measured_sojourn,
            }
            for row in result.rows
        ]
        assert got == exec_golden["baselines-vld-small"]

    def test_robustness(self, exec_golden):
        result = robustness.run(duration=150.0, seed=41)
        got = [
            {
                "arrival": p.arrival,
                "service": p.service,
                "estimated": p.estimated,
                "measured": p.measured,
                "ranking_preserved": p.ranking_preserved,
            }
            for p in result.points
        ]
        assert got == exec_golden["robustness-small"]

    def test_fig6_vld(self, exec_golden):
        result = fig6.run_vld(duration=60.0, warmup=10.0)
        got = {
            "rows": [
                {
                    "spec": row.spec,
                    "mean_sojourn": row.mean_sojourn,
                    "std_sojourn": row.std_sojourn,
                    "completed_trees": row.completed_trees,
                    "is_recommended": row.is_recommended,
                }
                for row in result.rows
            ],
            "drs_recommendation": result.drs_recommendation,
        }
        assert got == exec_golden["fig6-vld-small"]

    def test_fig9_vld(self, exec_golden):
        result = fig9.run_vld(enable_at=60.0, duration=150.0, bucket=30.0)
        got = [
            {
                "initial_spec": c.initial_spec,
                "final_spec": c.final_spec,
                "buckets": [list(b) for b in c.buckets],
                "rebalanced_at": c.rebalanced_at,
            }
            for c in result.curves
        ]
        assert got == exec_golden["fig9-vld-small"]

    def test_fig10_exp_a(self, exec_golden):
        result = fig10.run_exp_a(enable_at=60.0, duration=180.0, bucket=30.0)
        got = {
            "final_machines": result.final_machines,
            "final_spec": result.final_spec,
            "buckets": [list(b) for b in result.buckets],
            "scaled_at": result.scaled_at,
        }
        assert got == exec_golden["fig10-expa-small"]
