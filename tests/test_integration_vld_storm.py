"""End-to-end integration: the real VLD pipeline on the Storm facade.

Runs actual frames through actual SIFT-like extraction, matching and
aggregation bolts on :class:`LocalCluster`, then checks that the
measured load profile feeds DRS correctly — the full integration path
of paper Sec. IV/V minus the JVMs.
"""

import numpy as np
import pytest

from repro.apps.sift import (
    extract_features,
    generate_frame,
    make_logo_library,
    match_features,
)
from repro.storm import Bolt, LocalCluster, Spout, StormTopologyBuilder


class FrameSpout(Spout):
    def __init__(self, count: int, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self._remaining = count
        self._frame_id = 0

    def next_tuple(self):
        if self._remaining <= 0:
            return None
        self._remaining -= 1
        self._frame_id += 1
        return (self._frame_id, generate_frame(self._rng, 48, 64))


class SiftBolt(Bolt):
    def execute(self, value, collector):
        frame_id, frame = value
        features = extract_features(frame, max_features=12, seed=frame_id)
        for row in range(features.shape[0]):
            collector.emit((frame_id, features[row]))


class MatcherBolt(Bolt):
    def __init__(self, library, features_per_logo):
        self._library = library
        self._per_logo = features_per_logo

    def execute(self, value, collector):
        frame_id, descriptor = value
        matches = match_features(
            descriptor.reshape(1, -1),
            self._library,
            features_per_logo=self._per_logo,
            distance_threshold=1.3,
        )
        for _, logo_id in matches:
            collector.emit((frame_id, logo_id))


class AggregatorBolt(Bolt):
    def __init__(self, min_matches: int = 2):
        self._min_matches = min_matches
        self._pairs = {}

    def execute(self, value, collector):
        frame_id, logo_id = value
        key = (frame_id, logo_id)
        self._pairs[key] = self._pairs.get(key, 0) + 1
        if self._pairs[key] == self._min_matches:
            collector.emit(
                {"frame": frame_id, "logo": logo_id, "detected": True}
            )


@pytest.fixture(scope="module")
def cluster_result():
    library = make_logo_library(n_logos=4, features_per_logo=8, seed=2)
    builder = StormTopologyBuilder("vld_real")
    builder.set_spout("frames", FrameSpout(count=40, seed=5))
    builder.set_bolt("sift", SiftBolt(), sources=["frames"])
    builder.set_bolt(
        "matcher", MatcherBolt(library, features_per_logo=8), sources=["sift"]
    )
    builder.set_bolt("aggregator", AggregatorBolt(), sources=["matcher"])
    return LocalCluster(builder, kmax=22).run(max_tuples=40)


class TestRealVLDPipeline:
    def test_all_frames_processed(self, cluster_result):
        assert cluster_result.external_tuples == 40
        assert cluster_result.processed["sift"] == 40

    def test_fanout_through_pipeline(self, cluster_result):
        """SIFT emits several features per frame; the matcher must have
        processed the expanded stream."""
        assert cluster_result.processed["matcher"] > 40

    def test_detections_structured(self, cluster_result):
        for detection in cluster_result.outputs:
            assert detection["detected"] is True
            assert 1 <= detection["frame"] <= 40

    def test_measured_rates_reflect_stage_costs(self, cluster_result):
        """SIFT is the expensive stage: its measured service rate must be
        far below the aggregator's (which only counts dict updates)."""
        mu = cluster_result.service_rates
        assert mu["sift"] < mu["aggregator"]

    def test_drs_recommendation_available(self, cluster_result):
        recommendation = cluster_result.recommendation
        assert recommendation is not None
        assert recommendation.total == 22
        # The expensive SIFT stage earns a meaningful share of the budget.
        assert recommendation["sift"] >= 1
        assert cluster_result.estimated_sojourn > 0

    def test_arrival_rates_scale_with_fanout(self, cluster_result):
        lam = cluster_result.arrival_rates
        assert lam["matcher"] > lam["sift"]
        assert lam["aggregator"] <= lam["matcher"]
