"""Tests for the sliding-window MFP miner (real analytics correctness)."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.patterns import (
    SlidingWindowMFP,
    candidate_itemsets,
)


def brute_force_frequent(window, threshold, max_size):
    """Reference implementation: count subsets directly."""
    from collections import Counter

    counts = Counter()
    for transaction in window:
        items = sorted(set(transaction))
        for size in range(1, min(max_size, len(items)) + 1):
            for combo in combinations(items, size):
                counts[frozenset(combo)] += 1
    return {s for s, c in counts.items() if c >= threshold}


class TestCandidateItemsets:
    def test_singletons_and_pairs(self):
        result = candidate_itemsets(["a", "b"], max_size=2)
        assert set(result) == {
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"a", "b"}),
        }

    def test_size_cap(self):
        result = candidate_itemsets(["a", "b", "c"], max_size=1)
        assert all(len(s) == 1 for s in result)

    def test_duplicate_items_deduplicated(self):
        result = candidate_itemsets(["a", "a"], max_size=2)
        assert result == [frozenset({"a"})]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            candidate_itemsets(["a"], max_size=0)


class TestSlidingWindowMFP:
    def test_simple_frequency(self):
        miner = SlidingWindowMFP(window_size=10, threshold=2, max_itemset_size=2)
        miner.add(["a", "b"])
        assert miner.occurrence_count(["a"]) == 1
        assert not miner.frequent_itemsets()
        miner.add(["a", "c"])
        assert miner.occurrence_count(["a"]) == 2
        assert frozenset({"a"}) in miner.frequent_itemsets()

    def test_state_change_notifications(self):
        miner = SlidingWindowMFP(window_size=10, threshold=2)
        assert miner.add(["a"]) == []
        changes = miner.add(["a"])
        assert len(changes) == 1
        assert changes[0].itemset == frozenset({"a"})
        assert changes[0].became_frequent
        assert not changes[0].was_frequent

    def test_window_eviction(self):
        miner = SlidingWindowMFP(window_size=2, threshold=2)
        miner.add(["a"])
        miner.add(["a"])  # 'a' frequent now
        assert frozenset({"a"}) in miner.frequent_itemsets()
        changes = miner.add(["b"])  # evicts first 'a'
        dropped = [c for c in changes if not c.became_frequent]
        assert any(c.itemset == frozenset({"a"}) for c in dropped)
        assert frozenset({"a"}) not in miner.frequent_itemsets()

    def test_explicit_removal(self):
        miner = SlidingWindowMFP(window_size=10, threshold=1)
        miner.add(["a"])
        assert frozenset({"a"}) in miner.frequent_itemsets()
        changes = miner.remove_oldest()
        assert any(not c.became_frequent for c in changes)
        assert miner.current_window_length == 0

    def test_remove_from_empty_is_noop(self):
        miner = SlidingWindowMFP(window_size=5, threshold=1)
        assert miner.remove_oldest() == []

    def test_maximality(self):
        miner = SlidingWindowMFP(window_size=10, threshold=2, max_itemset_size=2)
        miner.add(["a", "b"])
        miner.add(["a", "b"])
        # {a}, {b}, {a,b} all frequent; only {a,b} is maximal.
        assert miner.maximal_frequent_patterns() == {frozenset({"a", "b"})}

    def test_paper_mfp_definition(self):
        """A frequent itemset whose superset is also frequent is not MFP."""
        miner = SlidingWindowMFP(window_size=10, threshold=2, max_itemset_size=3)
        miner.add(["x", "y", "z"])
        miner.add(["x", "y", "z"])
        miner.add(["x"])
        mfps = miner.maximal_frequent_patterns()
        assert frozenset({"x", "y", "z"}) in mfps
        assert frozenset({"x"}) not in mfps

    def test_matches_brute_force(self):
        transactions = [
            ["a", "b"],
            ["b", "c"],
            ["a", "b", "c"],
            ["a"],
            ["b", "c"],
        ]
        miner = SlidingWindowMFP(window_size=10, threshold=2, max_itemset_size=2)
        for t in transactions:
            miner.add(t)
        expected = brute_force_frequent(transactions, 2, 2)
        assert miner.frequent_itemsets() == expected


@settings(max_examples=40, deadline=None)
@given(
    transactions=st.lists(
        st.lists(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=30,
    ),
    window_size=st.integers(min_value=1, max_value=15),
    threshold=st.integers(min_value=1, max_value=4),
)
def test_incremental_matches_brute_force(transactions, window_size, threshold):
    """Property: incremental counts over a sliding window always equal a
    from-scratch recount of the window contents."""
    miner = SlidingWindowMFP(
        window_size=window_size, threshold=threshold, max_itemset_size=2
    )
    for t in transactions:
        miner.add(t)
    window = transactions[-window_size:]
    expected = brute_force_frequent(window, threshold, 2)
    assert miner.frequent_itemsets() == expected


@settings(max_examples=30, deadline=None)
@given(
    transactions=st.lists(
        st.lists(
            st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3
        ),
        min_size=1,
        max_size=20,
    )
)
def test_add_remove_roundtrip_empties_state(transactions):
    """Adding then removing everything leaves no counts behind."""
    miner = SlidingWindowMFP(window_size=100, threshold=1, max_itemset_size=3)
    for t in transactions:
        miner.add(t)
    for _ in transactions:
        miner.remove_oldest()
    assert miner.current_window_length == 0
    assert not miner.frequent_itemsets()
    assert miner.occurrence_count(["a"]) == 0
