"""Tests for the DRS controller decision logic."""

import pytest

from repro.config import ClusterSpec, DRSConfig, OptimizationGoal
from repro.exceptions import SchedulingError
from repro.scheduler import Allocation, ControllerAction, DRSController
from repro.scheduler.controller import LoadSnapshot


VLD_NAMES = ["sift", "matcher", "aggregator"]
VLD_LAMS = [13.0, 130.0, 39.0]
VLD_MUS = [1.75, 17.5, 150.0]


def snapshot(measured=None, lams=None, mus=None):
    return LoadSnapshot(
        arrival_rates=lams or VLD_LAMS,
        service_rates=mus or VLD_MUS,
        external_rate=13.0,
        measured_sojourn=measured,
    )


def kmax_controller(kmax=22, threshold=0.05):
    config = DRSConfig(
        goal=OptimizationGoal.MIN_SOJOURN,
        kmax=kmax,
        rebalance_threshold=threshold,
    )
    return DRSController(VLD_NAMES, config)


def tmax_controller(tmax, **kwargs):
    config = DRSConfig(
        goal=OptimizationGoal.MIN_RESOURCE,
        tmax=tmax,
        cluster=ClusterSpec(slots_per_machine=5, reserved_executors=3),
        **kwargs,
    )
    return DRSController(VLD_NAMES, config)


class TestMinSojournMode:
    def test_recommends_paper_optimum_from_bad_start(self):
        controller = kmax_controller()
        current = Allocation(VLD_NAMES, [8, 12, 2])
        decision = controller.update(snapshot(), current)
        assert decision.action is ControllerAction.REBALANCE
        assert decision.target_allocation.spec() == "10:11:1"

    def test_no_change_when_already_optimal(self):
        controller = kmax_controller()
        current = Allocation(VLD_NAMES, [10, 11, 1])
        decision = controller.update(snapshot(), current)
        assert decision.action is ControllerAction.NONE
        assert decision.target_allocation == current

    def test_infeasible_load_yields_none(self):
        controller = kmax_controller(kmax=5)
        current = Allocation(VLD_NAMES, [2, 2, 1])
        decision = controller.update(snapshot(), current)
        assert decision.action is ControllerAction.NONE
        assert "infeasible" in decision.reason

    def test_snapshot_length_validated(self):
        controller = kmax_controller()
        bad = LoadSnapshot(
            arrival_rates=[1.0], service_rates=[1.0], external_rate=1.0
        )
        with pytest.raises(SchedulingError):
            controller.update(bad, Allocation(VLD_NAMES, [10, 11, 1]))


class TestMinResourceMode:
    def test_requires_machine_count(self):
        controller = tmax_controller(2.0)
        with pytest.raises(SchedulingError, match="current_machines"):
            controller.update(snapshot(), Allocation(VLD_NAMES, [8, 8, 1]))

    def test_scale_out_when_violating(self):
        """ExpA: Tmax tight, 4 machines / 8:8:1 -> add a machine."""
        controller = tmax_controller(1.8)
        current = Allocation(VLD_NAMES, [8, 8, 1])
        decision = controller.update(
            snapshot(measured=2.5), current, current_machines=4
        )
        assert decision.action is ControllerAction.SCALE_OUT
        assert decision.target_machines == 5
        assert decision.target_allocation.total == 22

    def test_scale_in_when_overprovisioned(self):
        """ExpB: Tmax loose, 5 machines / 10:11:1 -> drop a machine."""
        controller = tmax_controller(6.0)
        current = Allocation(VLD_NAMES, [10, 11, 1])
        decision = controller.update(
            snapshot(measured=1.2), current, current_machines=5
        )
        assert decision.action is ControllerAction.SCALE_IN
        assert decision.target_machines == 4
        assert decision.target_allocation.total == 17

    def test_no_action_when_sized_right(self):
        controller = tmax_controller(2.4)
        current = Allocation(VLD_NAMES, [10, 11, 1])
        decision = controller.update(
            snapshot(measured=1.3), current, current_machines=5
        )
        assert decision.action is ControllerAction.NONE

    def test_violation_gate_needs_both_signals(self):
        """Measured spike alone (model disagrees) must not scale out."""
        controller = tmax_controller(2.0)
        current = Allocation(VLD_NAMES, [10, 11, 1])  # model E[T] ~ 1.26
        decision = controller.update(
            snapshot(measured=5.0), current, current_machines=5
        )
        assert decision.action is not ControllerAction.SCALE_OUT

    def test_scale_in_blocked_without_safety_margin(self):
        """Scale-in requires the smaller pool to beat safety * Tmax."""
        controller = tmax_controller(2.9, scale_in_safety=0.8)
        # E[T](8:8:1) ~ 2.73 > 0.8 * 2.9 = 2.32 -> no scale-in.
        current = Allocation(VLD_NAMES, [10, 11, 1])
        decision = controller.update(
            snapshot(measured=1.3), current, current_machines=5
        )
        assert decision.action is not ControllerAction.SCALE_IN

    def test_repack_on_bad_placement(self):
        """Violation with enough machines -> rebalance, not scale-out."""
        controller = tmax_controller(2.0)
        # Bad placement wastes the 22 executors: 16:5:1 starves matcher
        # (a_m = 7.43 -> k=5 is unstable -> E[T] = inf -> corrected > tmax).
        current = Allocation(VLD_NAMES, [16, 5, 1])
        decision = controller.update(
            snapshot(measured=9.0), current, current_machines=5
        )
        assert decision.action is ControllerAction.REBALANCE
        assert decision.target_allocation.spec() == "10:11:1"


class TestBias:
    def test_bias_tracks_underestimation(self):
        controller = kmax_controller()
        current = Allocation(VLD_NAMES, [10, 11, 1])
        assert controller.bias == pytest.approx(1.0)
        for _ in range(8):
            controller.update(snapshot(measured=4.0), current)
        # Model estimate ~1.26, measured 4.0 -> bias climbs well above 1.
        assert controller.bias > 2.0

    def test_bias_floors_at_one(self):
        controller = kmax_controller()
        current = Allocation(VLD_NAMES, [10, 11, 1])
        for _ in range(8):
            controller.update(snapshot(measured=0.1), current)
        assert controller.bias == pytest.approx(1.0)

    def test_bias_ignored_without_measurement(self):
        controller = kmax_controller()
        current = Allocation(VLD_NAMES, [10, 11, 1])
        controller.update(snapshot(measured=None), current)
        assert controller.bias == pytest.approx(1.0)


class TestConstruction:
    def test_requires_operators(self):
        config = DRSConfig(goal=OptimizationGoal.MIN_SOJOURN, kmax=5)
        with pytest.raises(SchedulingError):
            DRSController([], config)

    def test_repr_mentions_goal(self):
        controller = kmax_controller()
        assert "min_sojourn" in repr(controller)
