"""Tests for the sharded campaign executor and the compacted
(segmented) result-store backend."""

import json

import pytest

from repro.campaigns.runner import (
    ESTIMATED_RECORD_BYTES,
    CampaignRunner,
)
from repro.campaigns.segstore import SegmentedResultStore, compact_store
from repro.campaigns.shard import CLAIMS_DIR, ShardedCampaignRunner
from repro.campaigns.spec import CampaignSpec, scenario_hash
from repro.campaigns.store import ResultStore
from repro.exceptions import ConfigurationError
from repro.experiments import report
from repro.scenarios.runner import AppliedAction, ReplicationResult
from repro.scenarios.spec import ScenarioSpec

BASE = {
    "workload": "synthetic",
    "workload_params": {
        "total_cpu": 0.03,
        "arrival_rate": 20.0,
        "hop_latency": 0.004,
    },
    "policy": "none",
    "initial_allocation": "10:10:10",
    "duration": 40.0,
    "warmup": 5.0,
    "replications": 2,
    "seed": 17,
}


def small_campaign(**overrides) -> CampaignSpec:
    raw = {
        "name": "camp",
        "base": dict(BASE),
        "axes": [
            {
                "name": "alloc",
                "field": "initial_allocation",
                "values": ["8:8:8", "10:10:10"],
            },
        ],
    }
    raw.update(overrides)
    return CampaignSpec.from_dict(raw)


def make_result(index=0, seed=17, mean=1.0) -> ReplicationResult:
    return ReplicationResult(
        index=index,
        seed=seed,
        duration=10.0,
        external_tuples=100,
        completed_trees=99,
        dropped_tuples=1,
        dropped_trees=0,
        rebalances=2,
        mean_sojourn=mean,
        std_sojourn=0.1,
        p95_sojourn=2.0 * mean,
        final_allocation="1:1",
        final_machines=3,
        actions=(AppliedAction(5.0, "rebalance", "1:1", None),),
        timeline=((0.0, 0.5, 3), (10.0, None, 0)),
        recommendation="1:1",
    )


def sample_spec() -> ScenarioSpec:
    return ScenarioSpec.from_dict({**BASE, "name": "one", "replications": 1})


class TestSegmentedStore:
    def test_round_trip(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        store = SegmentedResultStore(tmp_path, segment="w0")
        result = make_result(seed=5)
        store.put(spec, digest, 5, result, campaign="c", cell="l")
        assert store.load(digest, 5) == result
        assert store.has(digest, 5)
        assert store.count(digest) == 1
        # One segment file, no per-replication files.
        assert [p.name for p in (tmp_path / "segments").glob("*.ndjson")] == [
            "w0.ndjson"
        ]
        assert not (tmp_path / digest[:2]).exists()

    def test_other_writers_visible_after_refresh(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        writer = SegmentedResultStore(tmp_path, segment="w0")
        writer.put(spec, digest, 5, make_result(seed=5))
        reader = SegmentedResultStore(tmp_path, segment="w1")
        assert reader.load(digest, 5) is not None  # indexed on open
        writer.put(spec, digest, 6, make_result(seed=6))
        assert reader.load(digest, 6) is None  # written after open...
        reader.refresh()
        assert reader.load(digest, 6) is not None  # ...visible on rescan

    def test_classic_layout_still_readable(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        classic = ResultStore(tmp_path)
        classic.put(spec, digest, 7, make_result(seed=7))
        segmented = SegmentedResultStore(tmp_path)
        assert segmented.load(digest, 7) is not None
        # And mixed layouts iterate merged, in seed order.
        segmented.put(spec, digest, 3, make_result(seed=3))
        assert [seed for seed, _ in segmented.iter_records(digest)] == [3, 7]

    def test_torn_trailing_line_skipped(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        store = SegmentedResultStore(tmp_path, segment="w0")
        store.put(spec, digest, 5, make_result(seed=5))
        store.close()
        with open(store.segment_path, "a") as handle:
            handle.write('{"version": 1, "spec_hash": "' + digest)  # torn
        fresh = SegmentedResultStore(tmp_path, segment="w1")
        assert fresh.load(digest, 5) is not None  # intact line survives
        assert fresh.segment_record_count() == 1

    def test_malformed_segment_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentedResultStore(tmp_path, segment="../evil")

    def test_provenance_travels_in_segment(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        store = SegmentedResultStore(tmp_path, segment="w0")
        store.put(spec, digest, 5, make_result(seed=5))
        store.put(spec, digest, 6, make_result(seed=6))
        store.close()
        lines = [
            json.loads(line)
            for line in store.segment_path.read_text().splitlines()
        ]
        specs = [line for line in lines if line.get("kind") == "spec"]
        assert len(specs) == 1  # once per hash, not per record
        assert specs[0]["spec"] == spec.to_dict()


class TestCompactStore:
    def test_compact_migrates_and_removes(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        classic = ResultStore(tmp_path)
        for seed in (3, 5):
            classic.put(spec, digest, seed, make_result(seed=seed))
        stats = compact_store(tmp_path)
        assert stats["migrated"] == 2
        assert stats["skipped"] == 0
        # Buckets are gone, segments hold everything.
        assert not (tmp_path / digest[:2]).exists()
        store = SegmentedResultStore(tmp_path)
        assert [seed for seed, _ in store.iter_records(digest)] == [3, 5]

    def test_compact_is_idempotent(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        ResultStore(tmp_path).put(spec, digest, 3, make_result(seed=3))
        assert compact_store(tmp_path)["migrated"] == 1
        again = compact_store(tmp_path)
        assert again["migrated"] == 0
        assert SegmentedResultStore(tmp_path).load(digest, 3) is not None

    def test_compact_skips_unreadable_records(self, tmp_path):
        spec = sample_spec()
        digest = scenario_hash(spec)
        classic = ResultStore(tmp_path)
        classic.put(spec, digest, 3, make_result(seed=3))
        classic.record_path(digest, 9).write_text("{torn")
        stats = compact_store(tmp_path)
        assert stats["migrated"] == 1
        assert stats["skipped"] == 1


class TestShardedRunner:
    def test_requires_segmented_store(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardedCampaignRunner(ResultStore(tmp_path), shards=2)
        with pytest.raises(ConfigurationError):
            ShardedCampaignRunner(
                SegmentedResultStore(tmp_path), shards=0
            )

    def test_full_run_then_resume_computes_zero(self, tmp_path):
        campaign = small_campaign()
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        runner = ShardedCampaignRunner(store, shards=2)
        first = runner.run(campaign)
        assert first.computed == 4
        assert first.reused == 0
        second = runner.run(campaign)
        assert second.computed == 0
        assert second.reused == 4
        # Both runs merged to identical per-cell summaries.
        assert [c.summary.to_dict() for c in first.cells] == [
            c.summary.to_dict() for c in second.cells
        ]

    def test_sharded_matches_unsharded(self, tmp_path):
        campaign = small_campaign()
        sharded_store = SegmentedResultStore(
            tmp_path / "sharded", segment="coordinator"
        )
        sharded = ShardedCampaignRunner(sharded_store, shards=2).run(campaign)
        plain = CampaignRunner(ResultStore(tmp_path / "plain")).run(campaign)
        assert [c.summary.to_dict() for c in sharded.cells] == [
            c.summary.to_dict() for c in plain.cells
        ]

    def test_interrupted_run_resumes_only_missing(self, tmp_path):
        # Simulate an interrupt: a prior run landed half the results
        # (one cell of two) before dying, leaving stale claim files.
        campaign = small_campaign()
        half = CampaignSpec.from_dict(
            {
                "name": "camp",
                "base": dict(BASE),
                "axes": [
                    {
                        "name": "alloc",
                        "field": "initial_allocation",
                        "values": ["8:8:8"],
                    },
                ],
            }
        )
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        ShardedCampaignRunner(store, shards=2).run(half)
        claims = tmp_path / CLAIMS_DIR
        (claims / "stale_claim_from_dead_run").write_text("999")
        result = ShardedCampaignRunner(store, shards=2).run(campaign)
        # Only the missing cell's replications were computed; the stale
        # claim neither blocked nor duplicated work.
        assert result.computed == 2
        assert result.reused == 2
        assert not (claims / "stale_claim_from_dead_run").exists()

    def test_claims_match_executed_jobs(self, tmp_path):
        campaign = small_campaign()
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        result = ShardedCampaignRunner(store, shards=2).run(campaign)
        claims = list((tmp_path / CLAIMS_DIR).iterdir())
        assert len(claims) == result.computed == 4


class TestPlanReport:
    def test_plan_reports_axes_cells_and_size(self, tmp_path):
        campaign = small_campaign()
        runner = CampaignRunner(ResultStore(tmp_path))
        plan = runner.plan(campaign)
        assert plan.axes == (("alloc", 2),)
        assert plan.cells == 2
        assert plan.total == 4
        assert plan.estimated_store_bytes == 4 * ESTIMATED_RECORD_BYTES
        rendered = report.render_campaign_plan(campaign.name, plan)
        assert "grid: 2(alloc) = 2 cells" in rendered
        assert "estimated new store size" in rendered

    def test_cached_jobs_do_not_count_toward_size(self, tmp_path):
        campaign = small_campaign()
        store = SegmentedResultStore(tmp_path, segment="coordinator")
        ShardedCampaignRunner(store, shards=1).run(campaign)
        store.refresh()
        plan = CampaignRunner(store).plan(campaign)
        assert plan.cached == 4
        assert plan.estimated_store_bytes == 0
        rendered = report.render_campaign_plan(campaign.name, plan)
        assert "estimated new store size" not in rendered
