"""Tests for the Erlang M/M/k core (paper Eq. 1-2) with hypothesis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import erlang


class TestErlangB:
    def test_single_server_formula(self):
        # B(1, a) = a / (1 + a)
        assert erlang.erlang_b(1, 2.0) == pytest.approx(2.0 / 3.0)

    def test_zero_load(self):
        assert erlang.erlang_b(5, 0.0) == 0.0

    def test_zero_servers_full_blocking(self):
        assert erlang.erlang_b(0, 1.0) == 1.0

    def test_textbook_value(self):
        # Known value: B(5, 3) ~= 0.11005
        assert erlang.erlang_b(5, 3.0) == pytest.approx(0.110054, rel=1e-4)

    def test_large_k_stable(self):
        # The naive factorial formula overflows here; the recurrence must not.
        value = erlang.erlang_b(10000, 9000.0)
        assert 0.0 <= value <= 1.0

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            erlang.erlang_b(-1, 1.0)


class TestErlangC:
    def test_textbook_value(self):
        # Known value: C(5, 3) ~= 0.23624
        assert erlang.erlang_c(5, 3.0) == pytest.approx(0.23624, rel=1e-3)

    def test_saturated_returns_one(self):
        assert erlang.erlang_c(2, 2.0) == 1.0
        assert erlang.erlang_c(2, 5.0) == 1.0

    def test_zero_load(self):
        assert erlang.erlang_c(3, 0.0) == 0.0

    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang.erlang_c(1, 0.7) == pytest.approx(0.7)


class TestExpectedSojournTime:
    def test_mm1_closed_form(self):
        # M/M/1: E[T] = 1 / (mu - lam)
        assert erlang.expected_sojourn_time(3.0, 4.0, 1) == pytest.approx(1.0)

    def test_saturated_is_infinite(self):
        assert math.isinf(erlang.expected_sojourn_time(4.0, 4.0, 1))
        assert math.isinf(erlang.expected_sojourn_time(5.0, 1.0, 4))

    def test_exact_integer_load_is_infinite(self):
        # k == lam/mu exactly: rho == 1, unstable (paper's strict inequality).
        assert math.isinf(erlang.expected_sojourn_time(4.0, 2.0, 2))

    def test_zero_arrivals_service_only(self):
        assert erlang.expected_sojourn_time(0.0, 2.0, 3) == pytest.approx(0.5)

    def test_matches_paper_equation_form(self):
        """Cross-check the recurrence against the paper's explicit Eq. 1-2
        (factorial form) for a small case."""
        lam, mu, k = 10.0, 3.0, 5
        a = lam / mu
        rho = lam / (mu * k)
        # Eq. (2): normalisation term pi_0.
        pi0 = 1.0 / (
            sum(a**l / math.factorial(l) for l in range(k))
            + a**k / (math.factorial(k) * (1 - rho))
        )
        # Eq. (1).
        expected = (a**k * pi0) / (
            math.factorial(k) * (1 - rho) ** 2 * mu * k
        ) + 1.0 / mu
        assert erlang.expected_sojourn_time(lam, mu, k) == pytest.approx(
            expected, rel=1e-12
        )


class TestMinServers:
    def test_fractional_load(self):
        assert erlang.min_servers(10.0, 3.0) == 4  # a = 3.33

    def test_exact_integer_load_needs_one_more(self):
        assert erlang.min_servers(9.0, 3.0) == 4  # a = 3 exactly

    def test_zero_arrivals(self):
        assert erlang.min_servers(0.0, 5.0) == 1

    def test_tiny_load(self):
        assert erlang.min_servers(0.1, 5.0) == 1


class TestMarginalBenefit:
    def test_positive_for_loaded_operator(self):
        assert erlang.marginal_benefit(10.0, 3.0, 5) > 0

    def test_zero_for_idle_operator(self):
        assert erlang.marginal_benefit(0.0, 3.0, 5) == 0.0

    def test_infinite_at_saturation(self):
        assert math.isinf(erlang.marginal_benefit(10.0, 3.0, 3))


@settings(max_examples=200, deadline=None)
@given(
    lam=st.floats(min_value=0.1, max_value=500.0),
    mu=st.floats(min_value=0.1, max_value=100.0),
    extra=st.integers(min_value=0, max_value=30),
)
def test_sojourn_monotone_decreasing_in_k(lam, mu, extra):
    """More processors never increase the expected sojourn time."""
    k = erlang.min_servers(lam, mu) + extra
    t_k = erlang.expected_sojourn_time(lam, mu, k)
    t_k1 = erlang.expected_sojourn_time(lam, mu, k + 1)
    assert t_k1 <= t_k + 1e-12


@settings(max_examples=200, deadline=None)
@given(
    lam=st.floats(min_value=0.1, max_value=500.0),
    mu=st.floats(min_value=0.1, max_value=100.0),
    extra=st.integers(min_value=0, max_value=30),
)
def test_sojourn_convex_in_k(lam, mu, extra):
    """E[T](k) is convex in k — the keystone of Theorem 1 (Inequality 5)."""
    k = erlang.min_servers(lam, mu) + extra
    t0 = erlang.expected_sojourn_time(lam, mu, k)
    t1 = erlang.expected_sojourn_time(lam, mu, k + 1)
    t2 = erlang.expected_sojourn_time(lam, mu, k + 2)
    # Diminishing marginal benefit: (t0 - t1) >= (t1 - t2).
    assert (t0 - t1) >= (t1 - t2) - 1e-12


@settings(max_examples=200, deadline=None)
@given(
    lam=st.floats(min_value=0.1, max_value=500.0),
    mu=st.floats(min_value=0.1, max_value=100.0),
    extra=st.integers(min_value=0, max_value=20),
)
def test_sojourn_bounded_below_by_service_time(lam, mu, extra):
    """E[T] >= 1/mu always (service is part of the sojourn)."""
    k = erlang.min_servers(lam, mu) + extra
    assert erlang.expected_sojourn_time(lam, mu, k) >= 1.0 / mu - 1e-12


@settings(max_examples=100, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=200),
    a=st.floats(min_value=0.0, max_value=150.0),
)
def test_erlang_probabilities_in_unit_interval(k, a):
    assert 0.0 <= erlang.erlang_b(k, a) <= 1.0
    assert 0.0 <= erlang.erlang_c(k, a) <= 1.0


@settings(max_examples=100, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=100),
    a=st.floats(min_value=0.01, max_value=80.0),
)
def test_erlang_c_at_least_b(k, a):
    """C(k,a) >= B(k,a) — queueing is at least as likely as blocking."""
    assert erlang.erlang_c(k, a) >= erlang.erlang_b(k, a) - 1e-12
