"""Tests for scenario specs: validation and JSON round-trips."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios.spec import RatePhase, ScenarioSpec


def full_spec() -> ScenarioSpec:
    """A spec exercising every optional field."""
    return ScenarioSpec(
        name="everything",
        workload="vld",
        policy="drs.min_resource",
        policy_params={"tmax": 1.8, "rebalance_threshold": 0.12},
        workload_params={"scale": 1.0},
        initial_allocation="8:8:1",
        duration=810.0,
        warmup=60.0,
        enable_at=390.0,
        min_action_gap=150.0,
        replications=4,
        seed=29,
        rate_phases=(
            RatePhase(start=0.0, rate_multiplier=1.0),
            RatePhase(start=300.0, rate_multiplier=1.25),
        ),
        hop_latency=0.002,
        queue_discipline="jsq",
        timeline_bucket=30.0,
        measurement={"alpha": 0.85},
        cluster={"slots_per_machine": 5, "reserved_executors": 3},
        initial_machines=4,
        recommend_kmax=22,
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = full_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = full_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_serializable(self):
        json.dumps(full_spec().to_dict())

    def test_round_trip_preserves_rate_phases(self):
        restored = ScenarioSpec.from_dict(full_spec().to_dict())
        assert restored.rate_phases == (
            RatePhase(start=0.0, rate_multiplier=1.0),
            RatePhase(start=300.0, rate_multiplier=1.25),
        )

    def test_round_trip_preserves_policy_params(self):
        restored = ScenarioSpec.from_json(full_spec().to_json())
        assert restored.policy_params == {
            "tmax": 1.8,
            "rebalance_threshold": 0.12,
        }

    def test_minimal_spec_round_trips(self):
        spec = ScenarioSpec(
            name="minimal", workload="vld", policy="none",
            initial_allocation="10:11:1", duration=60.0,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_rate_phases_accepted_as_dicts(self):
        spec = ScenarioSpec(
            name="phases", workload="vld", policy="none", duration=60.0,
            initial_allocation="10:11:1",
            rate_phases=({"start": 0.0, "rate_multiplier": 2.0},),
        )
        assert spec.rate_phases == (RatePhase(start=0.0, rate_multiplier=2.0),)


class TestValidation:
    def test_unknown_key_rejected(self):
        raw = full_spec().to_dict()
        raw["durationn"] = 1.0
        with pytest.raises(ConfigurationError, match="durationn"):
            ScenarioSpec.from_dict(raw)

    def test_missing_required_keys(self):
        with pytest.raises(ConfigurationError, match="workload"):
            ScenarioSpec.from_dict({"name": "x", "policy": "none"})

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            ScenarioSpec(name="x", workload="nope", policy="none", duration=1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="duration"):
            ScenarioSpec(name="x", workload="vld", policy="none")

    def test_overhead_kind_allows_zero_duration(self):
        spec = ScenarioSpec(
            name="x", workload="vld", policy="none", kind="overhead"
        )
        assert spec.duration == 0.0

    def test_bad_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ScenarioSpec(
                name="x", workload="vld", policy="none", kind="nope",
                duration=1.0,
            )

    def test_replications_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="replications"):
            ScenarioSpec(
                name="x", workload="vld", policy="none", duration=1.0,
                replications=0,
            )

    def test_rate_phases_must_increase(self):
        with pytest.raises(ConfigurationError, match="increasing"):
            ScenarioSpec(
                name="x", workload="vld", policy="none", duration=1.0,
                rate_phases=(
                    RatePhase(start=10.0, rate_multiplier=1.0),
                    RatePhase(start=10.0, rate_multiplier=2.0),
                ),
            )

    def test_rate_phase_multiplier_positive(self):
        with pytest.raises(ConfigurationError, match="rate_multiplier"):
            RatePhase(start=0.0, rate_multiplier=0.0)

    def test_rate_phase_unknown_key(self):
        with pytest.raises(ConfigurationError, match="ratee"):
            RatePhase.from_dict({"start": 0.0, "ratee": 1.0})

    def test_invalid_json(self):
        with pytest.raises(ConfigurationError, match="invalid scenario JSON"):
            ScenarioSpec.from_json("{not json")

    def test_json_must_be_object(self):
        with pytest.raises(ConfigurationError, match="object"):
            ScenarioSpec.from_json("[1, 2]")

    def test_bad_workload_params(self):
        spec = ScenarioSpec(
            name="x", workload="vld", policy="none", duration=1.0,
            workload_params={"not_a_field": 1},
        )
        with pytest.raises(ConfigurationError, match="workload_params"):
            spec.build_workload()
