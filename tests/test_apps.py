"""Tests for the application workload models (VLD, FPD, synthetic)."""

import pytest

from repro.apps import FPDWorkload, SyntheticChainWorkload, VLDWorkload
from repro.apps import fpd as fpd_app
from repro.apps import vld as vld_app
from repro.apps.synthetic import FIG8_TOTAL_CPU
from repro.model import PerformanceModel
from repro.scheduler import assign_processors


class TestVLDWorkload:
    def test_paper_recommendation_at_22(self):
        model = PerformanceModel.from_topology(VLDWorkload().build())
        assert assign_processors(model, 22).spec() == vld_app.RECOMMENDED

    def test_paper_recommendation_at_17(self):
        model = PerformanceModel.from_topology(VLDWorkload().build())
        assert assign_processors(model, 17).spec() == vld_app.RECOMMENDED_K17

    def test_external_rate_is_mean_frame_rate(self):
        assert VLDWorkload().external_rate == pytest.approx(13.0)

    def test_all_fig6_configs_stable(self):
        model = PerformanceModel.from_topology(VLDWorkload().build())
        for allocation in VLDWorkload().fig6_allocations():
            value = model.expected_sojourn(list(allocation.vector))
            assert value < float("inf"), allocation.spec()

    def test_recommended_best_among_fig6_by_model(self):
        workload = VLDWorkload()
        model = PerformanceModel.from_topology(workload.build())
        values = {
            a.spec(): model.expected_sojourn(list(a.vector))
            for a in workload.fig6_allocations()
        }
        assert min(values, key=values.get) == vld_app.RECOMMENDED

    def test_scaling_preserves_optimum(self):
        scaled = VLDWorkload(scale=0.5)
        model = PerformanceModel.from_topology(scaled.build())
        assert assign_processors(model, 22).spec() == vld_app.RECOMMENDED

    def test_scaling_preserves_offered_loads(self):
        base = PerformanceModel.from_topology(VLDWorkload().build())
        scaled = PerformanceModel.from_topology(VLDWorkload(scale=0.25).build())
        for b_load, s_load in zip(base.network.loads, scaled.network.loads):
            assert (
                b_load.arrival_rate / b_load.service_rate
            ) == pytest.approx(
                s_load.arrival_rate / s_load.service_rate, rel=1e-9
            )

    def test_rejects_bad_match_fraction(self):
        with pytest.raises(ValueError):
            VLDWorkload(match_fraction=0.0)

    def test_allocation_parser(self):
        allocation = VLDWorkload().allocation("10:11:1")
        assert allocation["sift"] == 10


class TestFPDWorkload:
    def test_paper_recommendation_at_22(self):
        model = PerformanceModel.from_topology(FPDWorkload().build())
        assert assign_processors(model, 22).spec() == fpd_app.RECOMMENDED

    def test_loop_present(self):
        topology = FPDWorkload().build()
        assert topology.has_cycle()

    def test_loop_amplifies_detector_rate(self):
        workload = FPDWorkload()
        model = PerformanceModel.from_topology(workload.build())
        rates = dict(zip(model.operator_names, model.network.arrival_rates))
        base = workload.external_rate * workload.candidates_per_event
        assert rates["detector"] == pytest.approx(
            base / (1.0 - workload.loop_gain), rel=1e-9
        )

    def test_two_spouts_sum_to_external_rate(self):
        workload = FPDWorkload()
        assert workload.external_rate == pytest.approx(640.0)
        topology = workload.build()
        assert topology.external_rate == pytest.approx(640.0)

    def test_all_fig6_configs_stable(self):
        workload = FPDWorkload()
        model = PerformanceModel.from_topology(workload.build())
        for allocation in workload.fig6_allocations():
            assert model.expected_sojourn(list(allocation.vector)) < float(
                "inf"
            ), allocation.spec()

    def test_recommended_best_among_fig6_by_model(self):
        workload = FPDWorkload()
        model = PerformanceModel.from_topology(workload.build())
        values = {
            a.spec(): model.expected_sojourn(list(a.vector))
            for a in workload.fig6_allocations()
        }
        assert min(values, key=values.get) == fpd_app.RECOMMENDED

    def test_scaling_preserves_optimum(self):
        model = PerformanceModel.from_topology(FPDWorkload(scale=0.25).build())
        assert assign_processors(model, 22).spec() == fpd_app.RECOMMENDED

    def test_rejects_amplifying_loop(self):
        with pytest.raises(ValueError):
            FPDWorkload(loop_gain=1.0)


class TestSyntheticChain:
    def test_cpu_split_three_ways(self):
        workload = SyntheticChainWorkload(total_cpu=0.03)
        assert workload.per_bolt_cpu == pytest.approx(0.01)

    def test_model_estimate_close_to_total_cpu_at_low_load(self):
        workload = SyntheticChainWorkload(total_cpu=0.03, arrival_rate=5.0)
        model = PerformanceModel.from_topology(workload.build())
        estimate = model.expected_sojourn(list(workload.allocation().vector))
        # Low utilisation: E[T] ~ total service time.
        assert estimate == pytest.approx(0.03, rel=0.05)

    def test_paper_workloads_all_stable(self):
        for total_cpu in FIG8_TOTAL_CPU:
            workload = SyntheticChainWorkload(total_cpu=total_cpu)
            model = PerformanceModel.from_topology(workload.build())
            assert model.expected_sojourn([10, 10, 10]) < float("inf")

    def test_unstable_workload_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            SyntheticChainWorkload(
                total_cpu=3.0, arrival_rate=20.0, executors_per_bolt=10
            )
