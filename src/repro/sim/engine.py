"""The discrete-event engine: a time-ordered callback queue.

Minimal by design — the hot loop is ``heappop``, advance the clock, call
the callback.  Events scheduled at equal times fire in scheduling order
(a monotonic sequence number breaks ties), which keeps runs
deterministic under a fixed RNG seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional

from repro.exceptions import SimulationError


class EventHandle:
    """Handle to a scheduled event; supports O(1) cancellation."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True
        self.callback = None  # free references early


class Simulator:
    """Event loop with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run_until(10.0)
    """

    def __init__(self):
        self._now = 0.0
        self._queue = []  # (time, seq, handle)
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled ones not yet popped)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now or math.isnan(time):
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, next(self._seq), handle))
        return handle

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            time, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            callback = handle.callback
            handle.callback = None
            self._processed += 1
            callback()
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run events up to and including time ``horizon``.

        The clock is left at ``horizon`` even if the queue drains early,
        so periodic measurements and experiment bookkeeping line up.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        while self._queue:
            time, _, handle = self._queue[0]
            if time > horizon:
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            callback = handle.callback
            handle.callback = None
            self._processed += 1
            callback()
        self._now = horizon

    def run_all(self, *, max_events: int = 50_000_000) -> None:
        """Drain the queue completely (with a runaway guard)."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely an unstable"
                    " feedback loop or a self-rescheduling event"
                )

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6g}, pending={len(self._queue)},"
            f" processed={self._processed})"
        )
