"""The discrete-event engine: a time-ordered typed-event queue.

Minimal by design — the hot loop is ``heappop``, advance the clock,
dispatch.  Events scheduled at equal times fire in scheduling order (a
monotonic sequence number breaks ties), which keeps runs deterministic
under a fixed RNG seed.

Two scheduling surfaces share one queue (and one tie-breaking sequence):

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — the
  general callback API.  Each call allocates an :class:`EventHandle`
  supporting O(1) cancellation; this is the right surface for *rare*
  events (rebalance resumes, controller actions, tests).
- :meth:`Simulator.schedule_event` — the allocation-free hot path.  A
  component registers a handler once (:meth:`Simulator.register_handler`
  returns an integer *kind*) and then schedules plain
  ``(time, seq, kind, a, b)`` records; the loop dispatches by kind
  through the handler table.  No per-event closure, no handle object.

Schedulers
----------
The near-term structure is always a binary heap (callers may push
``(time, seq, ...)`` records into ``_queue`` directly — the topology
runtime inlines exactly that).  Above a pending-event threshold the
engine *spills* far-future events into a calendar ladder: coarse time
buckets keyed off a fixed origin/width, poured back bucket-by-bucket as
the clock approaches them.  The heap then stays small, so every push
and pop costs ``O(log threshold)`` instead of ``O(log pending)``.

Because the total order is ``(time, seq)`` and the drain refuses to
dispatch a heap entry at or beyond the earliest remaining bucket, the
dispatch sequence is *bit-identical* to the pure heap's — the ladder is
a throughput optimisation, never a semantic one.  ``scheduler="heap"``
pins the pure reference path (golden suites run there), ``"calendar"``
forces aggressive spilling, and the default ``"auto"`` engages the
ladder only past :data:`SPILL_THRESHOLD` pending events.

Cancelled handles are counted and excluded from :attr:`pending_events`;
when more than half of the queued entries are cancelled the structures
are compacted in place.  Compaction subtracts the entries it actually
removed (rather than zeroing the counter), so a drain that has already
consumed part of a cancelled backlog cannot trigger a second O(n) pass
over the same, already-clean backlog.
"""

from __future__ import annotations

import heapq
import math
import sys
from typing import Callable, Dict, List, Optional

from repro.exceptions import SimulationError

#: Kind 1 is the handle-based callback surface; registered handlers
#: start at 2 (kind 0 is reserved).
_KIND_HANDLE = 1

#: Pending-event count above which ``scheduler="auto"`` spills far
#: events into the calendar ladder.  Chosen well above every figure
#: reproduction's steady-state pending count (hundreds), so the
#: reference workloads never leave the pure heap path.
SPILL_THRESHOLD = 4096

#: Bucket count per spill: the spilled span is divided into this many
#: calendar buckets.  Coarse on purpose — a poured bucket is heapified,
#: so skewed spans degrade gracefully back into heap behaviour.
_SPILL_BUCKETS = 256

_SCHEDULERS = ("auto", "heap", "calendar")


class EventHandle:
    """Handle to a scheduled event; supports O(1) cancellation."""

    __slots__ = ("time", "callback", "cancelled", "_sim")

    def __init__(self, time: float, callback: Callable[[], None], sim=None):
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self.callback is None:  # already fired or already cancelled
            self.cancelled = True
            return
        self.cancelled = True
        self.callback = None  # free references early
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()


class Simulator:
    """Event loop with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run_until(10.0)

    ``scheduler`` selects the queue strategy: ``"auto"`` (default)
    spills to the calendar ladder above ``spill_threshold`` pending
    events, ``"heap"`` pins the pure binary-heap reference path, and
    ``"calendar"`` forces an aggressive (low-threshold) ladder.  All
    three dispatch the exact same event sequence.
    """

    def __init__(
        self,
        *,
        scheduler: str = "auto",
        spill_threshold: int = SPILL_THRESHOLD,
    ):
        if scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"scheduler must be one of {_SCHEDULERS}, got {scheduler!r}"
            )
        if spill_threshold < 16:
            raise SimulationError("spill_threshold must be >= 16")
        self._now = 0.0
        self._queue = []  # (time, seq, kind, a, b)
        self._seq = 0
        self._processed = 0
        self._cancelled = 0
        self._scheduler = scheduler
        if scheduler == "heap":
            # One compare against maxsize disables spilling entirely.
            self._spill_threshold = sys.maxsize
        elif scheduler == "calendar":
            self._spill_threshold = min(spill_threshold, 64)
        else:
            self._spill_threshold = spill_threshold
        # Calendar ladder: far-future events in coarse buckets.  The
        # boundary is the earliest remaining bucket's start time; the
        # drain never dispatches a heap entry at or past it.
        self._ladder: Dict[int, list] = {}
        self._ladder_keys: List[int] = []  # heap of bucket indices
        self._ladder_count = 0
        self._origin = 0.0
        self._width = 1.0
        self._boundary = math.inf
        # Raised after a no-op spill (tail all at one timestamp) so a
        # degenerate backlog cannot re-trigger the O(n log n) partition
        # on every subsequent push.
        self._spill_block = 0
        # Handler table indexed by kind; slots 0/1 are the callback and
        # handle surfaces, dispatched inline by the loop.
        self._handlers: List[Optional[Callable]] = [None, None]  # kinds 0/1

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def scheduler(self) -> str:
        """The scheduler strategy this simulator was built with."""
        return self._scheduler

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Events still queued (heap + ladder) and not cancelled."""
        return len(self._queue) + self._ladder_count - self._cancelled

    @property
    def spilled_events(self) -> int:
        """Events currently parked in the calendar ladder."""
        return self._ladder_count

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def register_handler(self, handler: Callable) -> int:
        """Register a typed-event handler; returns its *kind* id.

        The handler is called as ``handler(a, b)`` with the two payload
        slots of every :meth:`schedule_event` record of that kind.
        """
        self._handlers.append(handler)
        return len(self._handlers) - 1

    def schedule_event(self, delay: float, kind: int, a=None, b=None) -> None:
        """Allocation-free scheduling of a typed event ``delay`` from now.

        The hot path of the simulator: one heap tuple, no handle, no
        closure.  Events of unknown kinds fail at dispatch time.
        """
        if not delay >= 0.0:  # catches all negative delays and NaN
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        heapq.heappush(queue, (time, seq, kind, a, b))
        if len(queue) > self._spill_threshold:
            self._spill()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now or math.isnan(time):
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        handle = EventHandle(time, callback, self)
        seq = self._seq
        self._seq = seq + 1
        queue = self._queue
        heapq.heappush(queue, (time, seq, _KIND_HANDLE, handle, None))
        if len(queue) > self._spill_threshold:
            self._spill()
        return handle

    # ------------------------------------------------------------------
    # calendar ladder
    # ------------------------------------------------------------------
    def _spill(self) -> None:
        """Move far-future heap entries into the calendar ladder.

        Keeps the soonest ``spill_threshold // 2`` entries (by time) in
        the heap; everything later lands in coarse buckets.  No-op when
        the tail shares one timestamp (nothing to separate).
        """
        queue = self._queue
        if len(queue) <= self._spill_block:
            return
        keep = self._spill_threshold // 2
        times = sorted(entry[0] for entry in queue)
        cutoff = times[keep]
        last = times[-1]
        if not cutoff < last:  # degenerate: tail is one timestamp
            self._spill_block = len(queue) * 2
            return
        if self._ladder_count == 0:
            # (Re-)anchor bucket geometry on the spilled span.
            self._origin = cutoff
            self._width = (last - cutoff) / _SPILL_BUCKETS
        origin = self._origin
        width = self._width
        floor = max(cutoff, origin)
        ladder = self._ladder
        keys = self._ladder_keys
        kept = []
        moved = 0
        for entry in queue:
            t = entry[0]
            if t < floor:
                kept.append(entry)
                continue
            index = int((t - origin) / width)
            bucket = ladder.get(index)
            if bucket is None:
                ladder[index] = [entry]
                heapq.heappush(keys, index)
            else:
                bucket.append(entry)
            moved += 1
        if not moved:
            self._spill_block = len(queue) * 2
            return
        self._spill_block = 0
        queue[:] = kept  # in place: loop-local aliases stay valid
        heapq.heapify(queue)
        self._ladder_count += moved
        self._boundary = origin + keys[0] * width

    def _pour(self) -> None:
        """Merge the earliest bucket back into the heap and advance the
        boundary to the next remaining bucket (or infinity)."""
        keys = self._ladder_keys
        index = heapq.heappop(keys)
        bucket = self._ladder.pop(index)
        queue = self._queue
        if bucket:
            if len(bucket) * 4 < len(queue):
                push = heapq.heappush
                for entry in bucket:
                    push(queue, entry)
            else:
                queue.extend(bucket)
                heapq.heapify(queue)
            self._ladder_count -= len(bucket)
        self._boundary = (
            self._origin + keys[0] * self._width if keys else math.inf
        )

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Account a cancellation; compact when more than half of the
        pending entries are dead weight."""
        self._cancelled += 1
        if self._cancelled > 8 and (
            self._cancelled * 2 > len(self._queue) + self._ladder_count
        ):
            removed = self._compact()
            # Subtract what compaction actually removed instead of
            # zeroing the counter: entries of this backlog that an
            # in-progress drain already popped are no longer anywhere,
            # and a blind reset would let the next cancellation trigger
            # a second O(n) pass over the same, already-clean backlog.
            self._cancelled -= removed
            if self._cancelled < 0:
                self._cancelled = 0

    def _compact(self) -> int:
        """Drop cancelled handle entries from the heap and the ladder;
        returns how many entries were removed."""
        queue = self._queue
        before = len(queue) + self._ladder_count
        queue[:] = [
            entry
            for entry in queue
            if not (entry[2] == _KIND_HANDLE and entry[3].cancelled)
        ]
        heapq.heapify(queue)
        if self._ladder_count:
            for index, bucket in self._ladder.items():
                bucket[:] = [
                    entry
                    for entry in bucket
                    if not (entry[2] == _KIND_HANDLE and entry[3].cancelled)
                ]
            self._ladder_count = sum(
                len(bucket) for bucket in self._ladder.values()
            )
        return before - (len(queue) + self._ladder_count)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        queue = self._queue
        handlers = self._handlers
        while True:
            if self._ladder_count and (
                not queue or queue[0][0] >= self._boundary
            ):
                self._pour()
                continue
            if not queue:
                return False
            time, _, kind, a, b = heapq.heappop(queue)
            if kind >= 2:
                self._now = time
                self._processed += 1
                handlers[kind](a, b)
                return True
            if a.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            callback = a.callback
            a.callback = None
            self._processed += 1
            callback()
            return True

    def run_until(self, horizon: float) -> None:
        """Run events up to and including time ``horizon``.

        The clock is left at ``horizon`` even if the queue drains early,
        so periodic measurements and experiment bookkeeping line up.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        queue = self._queue
        handlers = self._handlers
        heappop = heapq.heappop
        spill_at = self._spill_threshold
        boundary = self._boundary
        while True:
            if not queue:
                if boundary <= horizon:
                    self._pour()
                    boundary = self._boundary
                    continue
                break
            entry = queue[0]
            time = entry[0]
            if time >= boundary:
                # The ladder holds an earlier (or tie-earlier) event.
                self._pour()
                boundary = self._boundary
                continue
            if time > horizon:
                break
            heappop(queue)
            kind = entry[2]
            if kind >= 2:
                self._now = time
                self._processed += 1
                handlers[kind](entry[3], entry[4])
            else:
                handle = entry[3]
                if handle.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = time
                callback = handle.callback
                handle.callback = None
                self._processed += 1
                callback()
            if len(queue) > spill_at:
                self._spill()
                boundary = self._boundary
        self._now = horizon

    def run_all(self, *, max_events: int = 50_000_000) -> None:
        """Drain the queue completely (with a runaway guard)."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely an unstable"
                    " feedback loop or a self-rescheduling event"
                )

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6g}, pending={self.pending_events},"
            f" processed={self._processed})"
        )
