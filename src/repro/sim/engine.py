"""The discrete-event engine: a time-ordered typed-event queue.

Minimal by design — the hot loop is ``heappop``, advance the clock,
dispatch.  Events scheduled at equal times fire in scheduling order (a
monotonic sequence number breaks ties), which keeps runs deterministic
under a fixed RNG seed.

Two scheduling surfaces share one queue (and one tie-breaking sequence):

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — the
  general callback API.  Each call allocates an :class:`EventHandle`
  supporting O(1) cancellation; this is the right surface for *rare*
  events (rebalance resumes, controller actions, tests).
- :meth:`Simulator.schedule_event` — the allocation-free hot path.  A
  component registers a handler once (:meth:`Simulator.register_handler`
  returns an integer *kind*) and then schedules plain
  ``(time, seq, kind, a, b)`` records; the loop dispatches by kind
  through the handler table.  No per-event closure, no handle object.

Cancelled handles are counted and excluded from :attr:`pending_events`;
when more than half of the queued entries are cancelled the heap is
compacted in place, so a workload that schedules-and-cancels (timeouts,
watchdogs) cannot grow the queue without bound.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional

from repro.exceptions import SimulationError

#: Kind 1 is the handle-based callback surface; registered handlers
#: start at 2 (kind 0 is reserved).
_KIND_HANDLE = 1


class EventHandle:
    """Handle to a scheduled event; supports O(1) cancellation."""

    __slots__ = ("time", "callback", "cancelled", "_sim")

    def __init__(self, time: float, callback: Callable[[], None], sim=None):
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self.callback is None:  # already fired or already cancelled
            self.cancelled = True
            return
        self.cancelled = True
        self.callback = None  # free references early
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()


class Simulator:
    """Event loop with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fired at", sim.now))
        sim.run_until(10.0)
    """

    def __init__(self):
        self._now = 0.0
        self._queue = []  # (time, seq, kind, a, b)
        self._seq = 0
        self._processed = 0
        self._cancelled = 0
        # Handler table indexed by kind; slots 0/1 are the callback and
        # handle surfaces, dispatched inline by the loop.
        self._handlers: List[Optional[Callable]] = [None, None]  # kinds 0/1

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Events still queued and not cancelled."""
        return len(self._queue) - self._cancelled

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def register_handler(self, handler: Callable) -> int:
        """Register a typed-event handler; returns its *kind* id.

        The handler is called as ``handler(a, b)`` with the two payload
        slots of every :meth:`schedule_event` record of that kind.
        """
        self._handlers.append(handler)
        return len(self._handlers) - 1

    def schedule_event(self, delay: float, kind: int, a=None, b=None) -> None:
        """Allocation-free scheduling of a typed event ``delay`` from now.

        The hot path of the simulator: one heap tuple, no handle, no
        closure.  Events of unknown kinds fail at dispatch time.
        """
        if not delay >= 0.0:  # catches all negative delays and NaN
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, kind, a, b))

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now or math.isnan(time):
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        handle = EventHandle(time, callback, self)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, _KIND_HANDLE, handle, None))
        return handle

    def _note_cancelled(self) -> None:
        """Account a cancellation; compact the heap when more than half
        of it is dead weight."""
        self._cancelled += 1
        if self._cancelled > 8 and self._cancelled * 2 > len(self._queue):
            # In-place so loop-local aliases of the queue stay valid.
            self._queue[:] = [
                entry
                for entry in self._queue
                if not (entry[2] == _KIND_HANDLE and entry[3].cancelled)
            ]
            heapq.heapify(self._queue)
            self._cancelled = 0

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        queue = self._queue
        handlers = self._handlers
        while queue:
            time, _, kind, a, b = heapq.heappop(queue)
            if kind >= 2:
                self._now = time
                self._processed += 1
                handlers[kind](a, b)
                return True
            if a.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            callback = a.callback
            a.callback = None
            self._processed += 1
            callback()
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run events up to and including time ``horizon``.

        The clock is left at ``horizon`` even if the queue drains early,
        so periodic measurements and experiment bookkeeping line up.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        queue = self._queue
        handlers = self._handlers
        heappop = heapq.heappop
        while queue:
            entry = queue[0]
            time = entry[0]
            if time > horizon:
                break
            heappop(queue)
            kind = entry[2]
            if kind >= 2:
                self._now = time
                self._processed += 1
                handlers[kind](entry[3], entry[4])
            else:
                handle = entry[3]
                if handle.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = time
                callback = handle.callback
                handle.callback = None
                self._processed += 1
                callback()
        self._now = horizon

    def run_all(self, *, max_events: int = 50_000_000) -> None:
        """Drain the queue completely (with a runaway guard)."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely an unstable"
                    " feedback loop or a self-rescheduling event"
                )

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6g}, pending={self.pending_events},"
            f" processed={self._processed})"
        )
