"""Topology runtime: executes a topology on the discrete-event engine.

This is the simulated CSP layer.  It reproduces the execution behaviour
of a Storm topology that matters to DRS:

- **spouts** emit external tuples according to their arrival processes;
- **bolts** run ``k_i`` parallel executors; each tuple's processing time
  is drawn from the operator's service-time distribution;
- **routing** follows per-edge groupings.  Three queue disciplines are
  supported: ``"jsq"`` (default — per-executor queues, shuffle-grouped
  tuples join the shortest queue; approximates a load-balanced real
  deployment, under which the M/M/k model is accurate), ``"hashed"``
  (each shuffle tuple goes to a uniformly random executor queue — the
  worst-case "tuples are hashed to processors" deviation the paper
  notes) and ``"shared"`` (idealised M/M/k — one queue per operator,
  any idle executor takes the head).  Key-based groupings (fields,
  global, broadcast) route identically under jsq and hashed;
- **tuple trees** are tracked acker-style so the *total sojourn time*
  (arrival of the external tuple until every derived tuple is processed)
  is measured exactly as the paper defines it;
- **hop latency** adds a per-emission network/framework delay the
  performance model deliberately ignores — the knob behind the Fig. 8
  underestimation study;
- **rebalancing** pauses all bolts for a cost-model-determined duration
  while arrivals keep buffering, then resumes with the new allocation —
  reproducing the latency spikes of Fig. 9/10.

The DRS measurer is wired into the hot path; a measurement tick fires
every ``Tm`` simulated seconds and the resulting report is passed to the
``on_measurement`` hook (where the live controller sits).
"""

from __future__ import annotations

import copy
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import MeasurementConfig
from repro.exceptions import SchedulingError, SimulationError
from repro.measurement.measurer import Measurer, MeasurementReport
from repro.measurement.metrics import WelfordAccumulator
from repro.measurement.sojourn import TupleTreeTracker
from repro.randomness.arrival import DeterministicProcess, PhasedArrivalProcess
from repro.randomness.distributions import Distribution
from repro.scheduler.allocation import Allocation
from repro.sim.engine import Simulator
from repro.sim.rebalancing import RebalanceCostModel
from repro.topology.graph import Edge, Topology
from repro.topology.grouping import ShuffleGrouping
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class RuntimeOptions:
    """Tunables of the simulated CSP layer.

    ``hop_latency`` is the fixed per-emission transport delay (seconds);
    ``hop_latency_distribution`` overrides it with a random one.
    ``queue_limit`` bounds each operator's total queued tuples; beyond
    it tuples are dropped and their trees abandoned (the "errors when
    the queue reaches its size limit" failure mode of the paper's
    introduction).
    """

    queue_discipline: str = "jsq"
    hop_latency: float = 0.0
    hop_latency_distribution: Optional[Distribution] = None
    queue_limit: Optional[int] = None
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    rebalance_cost: RebalanceCostModel = field(default_factory=RebalanceCostModel)
    timeline_bucket: float = 60.0
    seed: int = 7
    #: Piecewise-constant external-rate schedule applied to every spout:
    #: ``((start_time, rate_multiplier), ...)``.  ``None`` leaves the
    #: workload's own arrival processes untouched.
    arrival_rate_phases: Optional[Tuple[Tuple[float, float], ...]] = None

    def __post_init__(self):
        if self.queue_discipline not in ("jsq", "hashed", "shared"):
            raise SimulationError(
                f"queue_discipline must be 'jsq', 'hashed' or 'shared',"
                f" got {self.queue_discipline!r}"
            )
        if self.hop_latency < 0:
            raise SimulationError("hop_latency must be >= 0")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise SimulationError("queue_limit must be >= 1 when set")
        if self.timeline_bucket <= 0:
            raise SimulationError("timeline_bucket must be > 0")
        if self.arrival_rate_phases is not None:
            try:
                PhasedArrivalProcess(
                    DeterministicProcess(1.0), self.arrival_rate_phases
                )
            except ValueError as exc:
                raise SimulationError(f"bad arrival_rate_phases: {exc}") from None


@dataclass
class RunStats:
    """Aggregated results of a run (or of a time window of one)."""

    duration: float
    external_tuples: int
    completed_trees: int
    dropped_tuples: int
    dropped_trees: int
    mean_sojourn: Optional[float]
    std_sojourn: Optional[float]
    p95_sojourn: Optional[float]
    per_operator_processed: Dict[str, int]
    per_operator_wait: Dict[str, Optional[float]]
    per_operator_service: Dict[str, Optional[float]]
    rebalances: int

    @property
    def completion_ratio(self) -> float:
        if self.external_tuples == 0:
            return 1.0
        return self.completed_trees / self.external_tuples


class _Executor:
    """One executor: a queue plus a busy flag."""

    __slots__ = ("queue", "busy")

    def __init__(self):
        self.queue: deque = deque()
        self.busy = False


class _OperatorRuntime:
    """Mutable per-operator execution state."""

    def __init__(self, name: str, service: Distribution, discipline: str):
        self.name = name
        self.service = service
        self.discipline = discipline
        self.executors: List[_Executor] = []
        self.shared_queue: deque = deque()
        self.held: deque = deque()  # buffer used while paused
        self.processed = 0
        # Per-stage observability: time spent waiting in this operator's
        # queues and in service (validated against M/M/k theory in tests).
        self.wait_stats = WelfordAccumulator()
        self.service_stats = WelfordAccumulator()

    @property
    def parallelism(self) -> int:
        return len(self.executors)

    def queued_total(self) -> int:
        total = len(self.shared_queue) + len(self.held)
        for executor in self.executors:
            total += len(executor.queue)
        return total

    def resize(self, k: int) -> List[dict]:
        """Replace executors with ``k`` fresh ones; returns displaced
        payloads (enqueue timestamps are dropped — the wait across a
        rebalance is re-measured from re-insertion)."""
        displaced: List[dict] = []
        for executor in self.executors:
            displaced.extend(entry[0] for entry in executor.queue)
            executor.queue.clear()
        displaced.extend(entry[0] for entry in self.shared_queue)
        self.shared_queue.clear()
        self.executors = [_Executor() for _ in range(k)]
        return displaced


class TopologyRuntime:
    """Drives one topology through simulated time.

    Typical use::

        sim = Simulator()
        runtime = TopologyRuntime(sim, topology, allocation, options)
        runtime.start()
        sim.run_until(600.0)
        stats = runtime.stats()
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        allocation: Allocation,
        options: Optional[RuntimeOptions] = None,
    ):
        self._sim = simulator
        self._topology = topology
        self._options = options or RuntimeOptions()
        if tuple(allocation.names) != topology.operator_names:
            raise SchedulingError(
                "allocation operators do not match the topology: "
                f"{allocation.names} vs {topology.operator_names}"
            )
        rng_factory = RngFactory(self._options.seed)
        self._route_rng = rng_factory.stream("routing")
        self._hop_rng = rng_factory.stream("hops")
        self._service_rngs = {
            name: rng_factory.stream("service", name)
            for name in topology.operator_names
        }
        self._spout_rngs = {
            name: rng_factory.stream("spout", name) for name in topology.spouts
        }
        # Arrival processes can be stateful (rate-modulated, MMPP, trace
        # replay); deep-copy them so several runtimes can share one
        # Topology object without leaking clock state across runs.  An
        # ``arrival_rate_phases`` schedule wraps each copy so scenario
        # specs can modulate the external load without a custom workload.
        self._arrival_processes = {}
        for name, spout in topology.spouts.items():
            process = copy.deepcopy(spout.arrivals)
            if self._options.arrival_rate_phases is not None:
                process = PhasedArrivalProcess(
                    process, self._options.arrival_rate_phases
                )
            self._arrival_processes[name] = process
        self._fanout_rng = rng_factory.stream("fanout")

        self._operators: Dict[str, _OperatorRuntime] = {}
        for name in topology.operator_names:
            operator = topology.operator(name)
            runtime = _OperatorRuntime(
                name, operator.service_time, self._options.queue_discipline
            )
            runtime.executors = [_Executor() for _ in range(allocation[name])]
            self._operators[name] = runtime

        self._measurer = Measurer(
            topology.operator_names, self._options.measurement
        )
        self._tracker = TupleTreeTracker(on_complete=self._on_tree_complete)
        self._allocation = allocation
        self._paused = False
        self._started = False
        self._root_counter = 0
        self._external_tuples = 0
        self._dropped_tuples = 0
        self._rebalances = 0
        self._completions: List[Tuple[float, float]] = []  # (time, sojourn)
        self._reports: List[MeasurementReport] = []
        self.on_measurement: Optional[Callable[[MeasurementReport], None]] = None
        # Payloads are shared per tree: {"root": id} — enough for shuffle
        # and root-hashing fields groupings.
        self._payload_cache: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def options(self) -> RuntimeOptions:
        return self._options

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    @property
    def measurer(self) -> Measurer:
        return self._measurer

    @property
    def tracker(self) -> TupleTreeTracker:
        return self._tracker

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def reports(self) -> List[MeasurementReport]:
        """All measurement reports pulled so far."""
        return list(self._reports)

    @property
    def completions(self) -> List[Tuple[float, float]]:
        """(completion_time, sojourn) of every completed tree."""
        return list(self._completions)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first spout arrivals and the measurement tick."""
        if self._started:
            raise SimulationError("runtime already started")
        self._started = True
        for spout_name, spout in self._topology.spouts.items():
            rng = self._spout_rngs[spout_name]
            gap = self._arrival_processes[spout_name].next_gap(
                self._sim.now, rng
            )
            self._sim.schedule(gap, self._make_spout_event(spout_name))
        self._sim.schedule(
            self._options.measurement.pull_interval, self._measurement_tick
        )

    def apply_allocation(
        self,
        new_allocation: Allocation,
        *,
        machines_added: int = 0,
        machines_removed: int = 0,
    ) -> float:
        """Rebalance to ``new_allocation``; returns the pause duration.

        The topology pauses (bolts stop starting work; arrivals keep
        buffering) for the cost-model duration, then resumes with the
        new executor counts and all buffered tuples redistributed.
        """
        if tuple(new_allocation.names) != self._topology.operator_names:
            raise SchedulingError("allocation does not match the topology")
        if self._paused:
            raise SimulationError("rebalance already in progress")
        stateful_moved = sum(
            abs(delta)
            for name, delta in new_allocation.moves_from(self._allocation).items()
            if self._topology.operator(name).stateful
        )
        pause = self._options.rebalance_cost.pause_duration(
            machines_added=machines_added,
            machines_removed=machines_removed,
            stateful_executors_moved=stateful_moved,
        )
        self._rebalances += 1
        self._paused = True
        # Move all queued tuples into per-operator holding buffers.
        for runtime in self._operators.values():
            runtime.held.extend(runtime.resize(0))

        def resume() -> None:
            self._allocation = new_allocation
            for name, runtime in self._operators.items():
                runtime.executors = [
                    _Executor() for _ in range(new_allocation[name])
                ]
            self._paused = False
            for name, runtime in self._operators.items():
                held = list(runtime.held)
                runtime.held.clear()
                for payload in held:
                    self._route_to_operator(name, payload, count_arrival=False)
            # Old smoothed metrics describe the previous configuration.
            self._measurer.reset_smoothing()

        self._sim.schedule(pause, resume)
        return pause

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self, *, warmup: float = 0.0) -> RunStats:
        """Aggregate results, ignoring completions before ``warmup``."""
        window = [s for t, s in self._completions if t >= warmup]
        acc = WelfordAccumulator()
        for sojourn in window:
            acc.add(sojourn)
        p95 = None
        if window:
            ordered = sorted(window)
            index = max(0, int(math.ceil(0.95 * len(ordered))) - 1)
            p95 = ordered[index]
        return RunStats(
            duration=self._sim.now,
            external_tuples=self._external_tuples,
            completed_trees=self._tracker.completed,
            dropped_tuples=self._dropped_tuples,
            dropped_trees=self._tracker.dropped,
            mean_sojourn=acc.mean if acc.count else None,
            std_sojourn=acc.std if acc.count else None,
            p95_sojourn=p95,
            per_operator_processed={
                name: runtime.processed
                for name, runtime in self._operators.items()
            },
            per_operator_wait={
                name: (
                    runtime.wait_stats.mean if runtime.wait_stats.count else None
                )
                for name, runtime in self._operators.items()
            },
            per_operator_service={
                name: (
                    runtime.service_stats.mean
                    if runtime.service_stats.count
                    else None
                )
                for name, runtime in self._operators.items()
            },
            rebalances=self._rebalances,
        )

    def timeline(self) -> List[Tuple[float, Optional[float], int]]:
        """Per-bucket mean sojourn: [(bucket_start, mean, count), ...].

        Buckets of ``options.timeline_bucket`` seconds — the minute-by-
        minute curves of Fig. 9/10.
        """
        bucket = self._options.timeline_bucket
        if not self._completions:
            return []
        horizon = self._sim.now
        n_buckets = int(math.ceil(horizon / bucket)) or 1
        sums = [0.0] * n_buckets
        counts = [0] * n_buckets
        for t, sojourn in self._completions:
            index = min(n_buckets - 1, int(t / bucket))
            sums[index] += sojourn
            counts[index] += 1
        return [
            (i * bucket, (sums[i] / counts[i]) if counts[i] else None, counts[i])
            for i in range(n_buckets)
        ]

    def check_conservation(self) -> None:
        """Every tracked tree is completed, in flight, or dropped."""
        accounted = self._tracker.completed + self._tracker.in_flight
        accounted += self._tracker.dropped
        if accounted != self._external_tuples:
            raise SimulationError(
                f"conservation violated: {self._external_tuples} external"
                f" tuples but {accounted} accounted for"
            )

    # ------------------------------------------------------------------
    # spout side
    # ------------------------------------------------------------------
    def _make_spout_event(self, spout_name: str) -> Callable[[], None]:
        def fire() -> None:
            self._emit_external(spout_name)
            rng = self._spout_rngs[spout_name]
            gap = self._arrival_processes[spout_name].next_gap(
                self._sim.now, rng
            )
            self._sim.schedule(gap, fire)

        return fire

    def _emit_external(self, spout_name: str) -> None:
        now = self._sim.now
        root_id = self._root_counter
        self._root_counter += 1
        self._external_tuples += 1
        self._tracker.register_root(root_id, now)
        payload = {"root": root_id}
        self._payload_cache[root_id] = payload
        for edge in self._topology.out_edges(spout_name):
            count = self._sample_count(edge)
            if count > 0:
                self._tracker.add_pending(root_id, count)
                for _ in range(count):
                    self._dispatch(edge, payload, external=True)
        # The root "tuple" itself needs no processing once emitted.
        self._tracker.complete_one(root_id, now)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _sample_count(self, edge: Edge) -> int:
        if edge.fanout is not None:
            value = edge.fanout.sample(self._fanout_rng)
        else:
            value = edge.gain
        if value < 0:
            return 0
        base = int(value)
        fraction = value - base
        if fraction > 0 and self._fanout_rng.random() < fraction:
            base += 1
        return base

    def _dispatch(self, edge: Edge, payload: dict, *, external: bool = False) -> None:
        """Send one tuple along ``edge``, after any hop latency."""
        delay = self._hop_delay()
        target = edge.target
        self._measurer.record_arrival(target, external=external)
        if delay <= 0:
            self._route_to_operator(target, payload, edge=edge)
        else:
            self._sim.schedule(
                delay,
                lambda: self._route_to_operator(target, payload, edge=edge),
            )

    def _hop_delay(self) -> float:
        dist = self._options.hop_latency_distribution
        if dist is not None:
            return dist.sample(self._hop_rng)
        return self._options.hop_latency

    def _route_to_operator(
        self,
        operator_name: str,
        payload: dict,
        edge: Optional[Edge] = None,
        count_arrival: bool = False,
    ) -> None:
        """Place a tuple into the operator's queue structure."""
        if count_arrival:
            self._measurer.record_arrival(operator_name)
        runtime = self._operators[operator_name]
        limit = self._options.queue_limit
        if limit is not None and runtime.queued_total() >= limit:
            self._drop(payload)
            return
        now = self._sim.now
        if self._paused:
            runtime.held.append(payload)
            return
        if runtime.discipline == "shared":
            runtime.shared_queue.append((payload, now))
            self._kick_shared(runtime)
            return
        # Per-executor queues: the grouping picks the executor(s).  Under
        # "jsq" a shuffle-grouped (or redistributed) tuple goes to the
        # least-loaded executor instead of a random one — the behaviour a
        # load-balanced real deployment approximates, and the setting
        # under which the M/M/k model is accurate.  Key-based groupings
        # (fields/global/broadcast) are always honoured exactly.
        if not runtime.executors:
            indices: Sequence[int] = ()
        else:
            grouping = edge.grouping if edge is not None else None
            free_choice = grouping is None or isinstance(grouping, ShuffleGrouping)
            if free_choice and runtime.discipline == "jsq":
                indices = (self._shortest_queue_index(runtime),)
            elif free_choice:
                indices = (self._route_rng.randrange(len(runtime.executors)),)
            else:
                indices = grouping.select_tasks(
                    payload, len(runtime.executors), self._route_rng
                )
        if not indices:
            self._drop(payload)
            return
        if len(indices) > 1:
            # Replication (broadcast): each copy is an extra pending tuple.
            self._tracker.add_pending(payload["root"], len(indices) - 1)
        for index in indices:
            executor = runtime.executors[index]
            executor.queue.append((payload, now))
            if not executor.busy:
                self._start_service(runtime, executor)

    def _shortest_queue_index(self, runtime: _OperatorRuntime) -> int:
        best_index = 0
        best_load = math.inf
        for index, executor in enumerate(runtime.executors):
            load = len(executor.queue) + (1 if executor.busy else 0)
            if load < best_load:
                best_load = load
                best_index = index
                if load == 0:
                    break
        return best_index

    def _drop(self, payload: dict) -> None:
        self._dropped_tuples += 1
        root = payload["root"]
        # Abandon the whole tree: a dropped intermediate result means the
        # external tuple can never be fully processed.
        self._tracker.drop_tree(root)
        self._payload_cache.pop(root, None)

    # ------------------------------------------------------------------
    # bolt side
    # ------------------------------------------------------------------
    def _kick_shared(self, runtime: _OperatorRuntime) -> None:
        if self._paused or not runtime.shared_queue:
            return
        for executor in runtime.executors:
            if not runtime.shared_queue:
                break
            if not executor.busy:
                executor.queue.append(runtime.shared_queue.popleft())
                self._start_service(runtime, executor)

    def _start_service(self, runtime: _OperatorRuntime, executor: _Executor) -> None:
        if self._paused or executor.busy or not executor.queue:
            return
        executor.busy = True
        payload, enqueued_at = executor.queue.popleft()
        runtime.wait_stats.add(self._sim.now - enqueued_at)
        duration = runtime.service.sample(self._service_rngs[runtime.name])
        runtime.service_stats.add(duration)
        self._sim.schedule(
            duration,
            lambda: self._finish_service(runtime, executor, payload, duration),
        )

    def _finish_service(
        self,
        runtime: _OperatorRuntime,
        executor: _Executor,
        payload: dict,
        duration: float,
    ) -> None:
        now = self._sim.now
        runtime.processed += 1
        self._measurer.record_service(runtime.name, duration)
        root = payload["root"]
        for edge in self._topology.out_edges(runtime.name):
            count = self._sample_count(edge)
            if count > 0:
                self._tracker.add_pending(root, count)
                for _ in range(count):
                    self._dispatch(edge, payload)
        self._tracker.complete_one(root, now)
        executor.busy = False
        if runtime.discipline == "shared":
            self._kick_shared(runtime)
        self._start_service(runtime, executor)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _on_tree_complete(self, root_id: int, arrival: float, sojourn: float) -> None:
        self._measurer.record_sojourn(sojourn)
        self._completions.append((self._sim.now, sojourn))
        self._payload_cache.pop(root_id, None)

    def _measurement_tick(self) -> None:
        report = self._measurer.pull(self._sim.now)
        self._reports.append(report)
        if self.on_measurement is not None:
            self.on_measurement(report)
        self._sim.schedule(
            self._options.measurement.pull_interval, self._measurement_tick
        )

    def __repr__(self) -> str:
        return (
            f"TopologyRuntime({self._topology.name!r},"
            f" allocation={self._allocation.spec()},"
            f" t={self._sim.now:.3f})"
        )
