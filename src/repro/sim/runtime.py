"""Topology runtime: executes a topology on the discrete-event engine.

This is the simulated CSP layer.  It reproduces the execution behaviour
of a Storm topology that matters to DRS:

- **spouts** emit external tuples according to their arrival processes;
- **bolts** run ``k_i`` parallel executors; each tuple's processing time
  is drawn from the operator's service-time distribution;
- **routing** follows per-edge groupings.  Three queue disciplines are
  supported: ``"jsq"`` (default — per-executor queues, shuffle-grouped
  tuples join the shortest queue; approximates a load-balanced real
  deployment, under which the M/M/k model is accurate), ``"hashed"``
  (each shuffle tuple goes to a uniformly random executor queue — the
  worst-case "tuples are hashed to processors" deviation the paper
  notes) and ``"shared"`` (idealised M/M/k — one queue per operator,
  any idle executor takes the head).  Key-based groupings (fields,
  global, broadcast) route identically under jsq and hashed;
- **tuple trees** are tracked acker-style so the *total sojourn time*
  (arrival of the external tuple until every derived tuple is processed)
  is measured exactly as the paper defines it;
- **hop latency** adds a per-emission network/framework delay the
  performance model deliberately ignores — the knob behind the Fig. 8
  underestimation study;
- **rebalancing** pauses all bolts for a cost-model-determined duration
  while arrivals keep buffering, then resumes with the new allocation —
  reproducing the latency spikes of Fig. 9/10.

The DRS measurer is wired into the hot path; a measurement tick fires
every ``Tm`` simulated seconds and the resulting report is passed to the
``on_measurement`` hook (where the live controller sits).

Hot-path design (ISSUE 2)
-------------------------
Every tuple movement goes through typed events (``Simulator.schedule_event``)
dispatched by kind — no per-event closures or handles.  Routing state is
precomputed once per runtime:

- ``_Route`` records carry the target operator runtime, the resolved
  grouping (``None`` for free-choice/shuffle), the deterministic-gain
  integer/fraction split and prebound measurement recorders, so an
  emission costs no dict lookups and no temporary objects;
- each operator keeps an O(1) ``queued`` counter (the ``queue_limit``
  test used to re-scan every executor queue per routed tuple);
- ``jsq`` operators with at least ``_JSQ_HEAP_MIN`` executors maintain a
  lazy min-heap of ``(load, index)`` pairs: every load change pushes the
  fresh pair and stale tops are discarded on query, giving O(log k)
  shortest-queue selection with *identical* tie-breaking to the linear
  scan (lowest index among minimum load);
- all of it preserves the RNG draw order and event tie-breaking of the
  original implementation byte-for-byte — pinned by the golden
  determinism suite (``tests/test_golden_determinism.py``).
"""

from __future__ import annotations

import copy
import heapq
import math
from bisect import bisect_left
from math import log as _log
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # runtime import stays lazy: workloads sits above sim
    from repro.workloads.models import ArrivalModel

from repro.config import MeasurementConfig
from repro.exceptions import SchedulingError, SimulationError
from repro.measurement.measurer import Measurer, MeasurementReport
from repro.measurement.metrics import WelfordAccumulator
from repro.measurement.sojourn import TupleTreeTracker
from repro.randomness.arrival import DeterministicProcess, PhasedArrivalProcess
from repro.randomness.distributions import Distribution
from repro.randomness.distributions import Exponential as ExponentialDistribution
from repro.scheduler.allocation import Allocation
from repro.sim.engine import Simulator
from repro.sim.rebalancing import RebalanceCostModel
from repro.topology.graph import Topology
from repro.topology.grouping import ShuffleGrouping
from repro.utils.rng import RngFactory

#: Below this executor count the early-exit linear scan beats the lazy
#: heap's constant factors (measured on the hot-path benchmark; at high
#: utilisation the scan loses its early exit and the heap wins from
#: medium parallelism up); both produce identical selections.
_JSQ_HEAP_MIN = 16

#: A churn transition that fires during a rebalance pause retries after
#: this many simulated seconds (the pause has already torn every
#: executor down; the transition applies once the resume rebuilds them).
_CHURN_RETRY = 1.0

# Module-level aliases: a LOAD_GLOBAL beats the attribute chain in the
# per-tuple loops below.
_heappush = heapq.heappush
_heappop = heapq.heappop


def _mean_transfer(matrix, sources, targets) -> float:
    """Mean link cost over every ``source × target`` machine pair.

    Routes carry one expected transfer delay rather than sampling the
    pair per tuple: the per-edge cost stays a single attribute read on
    the emission hot path and the mean is exact for the uniform
    executor choice the router makes.
    """
    total = 0.0
    for source in sources:
        row = matrix[source]
        for target in targets:
            total += row[target]
    return total / (len(sources) * len(targets))


@dataclass(frozen=True)
class RuntimeOptions:
    """Tunables of the simulated CSP layer.

    ``hop_latency`` is the fixed per-emission transport delay (seconds);
    ``hop_latency_distribution`` overrides it with a random one.  Both
    are **legacy** knobs: they model the network as one global constant.
    New code should describe the substrate with a ``platform`` block
    instead (per-link latencies/bandwidths, machine speeds, churn); the
    legacy knobs keep working unchanged — and stay byte-identical — for
    every existing spec, but gain no new features.
    ``queue_limit`` bounds each operator's total queued tuples; beyond
    it tuples are dropped and their trees abandoned (the "errors when
    the queue reaches its size limit" failure mode of the paper's
    introduction).  ``backpressure`` changes what a full queue means:
    instead of dropping, the full operator *signals upstream* — its
    predecessors stop starting new work and sources pause — so nothing
    is lost and the pressure propagates to the edge of the topology
    (blocked time is surfaced in :class:`RunStats`).  ``closed_loop``
    replaces the open-loop spouts entirely with a finite client
    population that waits for completions (think time, per-client
    outstanding cap, optional latency-aware admission control).
    """

    queue_discipline: str = "jsq"
    hop_latency: float = 0.0
    hop_latency_distribution: Optional[Distribution] = None
    queue_limit: Optional[int] = None
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    rebalance_cost: RebalanceCostModel = field(default_factory=RebalanceCostModel)
    timeline_bucket: float = 60.0
    seed: int = 7
    #: Piecewise-constant external-rate schedule applied to every spout:
    #: ``((start_time, rate_multiplier), ...)``.  ``None`` leaves the
    #: workload's own arrival processes untouched.
    arrival_rate_phases: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Arrival model *replacing* each spout's own process — any object
    #: with ``build(base_process) -> ArrivalProcess`` (in practice a
    #: :class:`~repro.workloads.models.ArrivalModel`; the dependency is
    #: duck-typed because workloads sits above sim in the layering).
    #: The model receives the spout's nominal process (for its mean
    #: rate) and builds a fresh process per spout.  Composes with
    #: ``arrival_rate_phases``: phases wrap the model's output.
    arrival_model: Optional["ArrivalModel"] = None
    #: Event-queue strategy handed to the :class:`Simulator` built for
    #: this run: ``"auto"`` (ladder past the spill threshold), ``"heap"``
    #: (pure reference path, golden-pinned), or ``"calendar"`` (force the
    #: ladder).  All three dispatch bit-identical event sequences.
    scheduler: str = "auto"
    #: Batch service/spout random draws through numpy block generation
    #: (:class:`~repro.randomness.batched.BatchedDraws`).  Bit-exact —
    #: the replayed stream is identical to the scalar path — so results
    #: are unchanged; only the draw cost is amortised.
    batched_draws: bool = False
    #: Execution substrate — any object with
    #: ``bind(topology, allocation) -> binding`` (in practice a
    #: :class:`~repro.platform.spec.PlatformSpec`; the dependency is
    #: duck-typed because repro.platform sits above sim in the
    #: layering).  The binding supplies per-executor machines/speeds,
    #: the machine-pair transfer matrix and the churn process.  ``None``
    #: keeps the legacy hop-constant path byte-for-byte.  Mutually
    #: exclusive with the deprecated ``hop_latency`` /
    #: ``hop_latency_distribution`` knobs: per-edge transfer times come
    #: from the platform's links.
    platform: Optional[Any] = None
    #: Closed-loop client population *replacing* each spout's arrival
    #: process — any object with ``think_gap(rng) -> float`` plus
    #: ``clients`` / ``max_outstanding`` attributes (in practice a
    #: :class:`~repro.workloads.closed_loop.ClosedLoopSource`; the
    #: dependency is duck-typed because workloads sits above sim in the
    #: layering).  Mutually exclusive with ``arrival_model`` and
    #: ``arrival_rate_phases``: a reacting population *is* the load.
    closed_loop: Optional[Any] = None
    #: A full queue (``queue_limit`` reached) pauses its upstream
    #: producers instead of dropping tuples.  Requires ``queue_limit``;
    #: default ``False`` keeps the drop path byte-for-byte.
    backpressure: bool = False

    def __post_init__(self):
        if self.scheduler not in ("auto", "heap", "calendar"):
            raise SimulationError(
                f"scheduler must be 'auto', 'heap' or 'calendar',"
                f" got {self.scheduler!r}"
            )
        if self.queue_discipline not in ("jsq", "hashed", "shared"):
            raise SimulationError(
                f"queue_discipline must be 'jsq', 'hashed' or 'shared',"
                f" got {self.queue_discipline!r}"
            )
        if self.hop_latency < 0:
            raise SimulationError("hop_latency must be >= 0")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise SimulationError("queue_limit must be >= 1 when set")
        if self.timeline_bucket <= 0:
            raise SimulationError("timeline_bucket must be > 0")
        if self.arrival_rate_phases is not None:
            try:
                PhasedArrivalProcess(
                    DeterministicProcess(1.0), self.arrival_rate_phases
                )
            except ValueError as exc:
                raise SimulationError(f"bad arrival_rate_phases: {exc}") from None
        if self.arrival_model is not None and not callable(
            getattr(self.arrival_model, "build", None)
        ):
            # Duck-typed on purpose: repro.workloads sits *above* the
            # simulator in the layer diagram, so this module must not
            # import it.  The scenario runner turns plain-dict specs
            # into ArrivalModel objects before they reach here.
            raise SimulationError(
                "arrival_model must provide a build(base_process) method"
                " (e.g. a repro.workloads ArrivalModel); got"
                f" {self.arrival_model!r}"
            )
        if self.platform is not None:
            if not callable(getattr(self.platform, "bind", None)):
                # Duck-typed for the same layering reason as
                # arrival_model: repro.platform sits above the simulator.
                raise SimulationError(
                    "platform must provide a bind(topology, allocation)"
                    " method (e.g. a repro.platform PlatformSpec); got"
                    f" {self.platform!r}"
                )
            if self.hop_latency != 0.0 or self.hop_latency_distribution is not None:
                raise SimulationError(
                    "hop_latency/hop_latency_distribution and platform are"
                    " mutually exclusive: per-edge transfer times come from"
                    " the platform's links"
                )
        if self.backpressure and self.queue_limit is None:
            raise SimulationError(
                "backpressure requires queue_limit: without a bound there"
                " is no 'full' signal to propagate upstream"
            )
        if self.closed_loop is not None:
            if not callable(
                getattr(self.closed_loop, "think_gap", None)
            ) or not isinstance(
                getattr(self.closed_loop, "clients", None), int
            ) or not isinstance(
                getattr(self.closed_loop, "max_outstanding", None), int
            ):
                # Duck-typed for the same layering reason as
                # arrival_model: repro.workloads sits above the simulator.
                raise SimulationError(
                    "closed_loop must provide a think_gap(rng) method and"
                    " integer clients/max_outstanding attributes (e.g. a"
                    " repro.workloads ClosedLoopSource); got"
                    f" {self.closed_loop!r}"
                )
            if (
                self.arrival_model is not None
                or self.arrival_rate_phases is not None
            ):
                raise SimulationError(
                    "closed_loop replaces the spout arrival process"
                    " entirely; it is mutually exclusive with"
                    " arrival_model and arrival_rate_phases"
                )


@dataclass
class RunStats:
    """Aggregated results of a run (or of a time window of one).

    The trailing fields cover the reactive-load machinery and default
    to their open-loop values: ``blocked_time`` is the total simulated
    time sources spent paused by backpressure, ``admission_rejected``
    counts closed-loop requests turned away by the admission
    controller, and ``issued_requests`` is the number of requests
    clients attempted (``None`` for open-loop runs, where arrivals are
    never rejected and ``external_tuples`` is the whole story).
    """

    duration: float
    external_tuples: int
    completed_trees: int
    dropped_tuples: int
    dropped_trees: int
    mean_sojourn: Optional[float]
    std_sojourn: Optional[float]
    p95_sojourn: Optional[float]
    per_operator_processed: Dict[str, int]
    per_operator_wait: Dict[str, Optional[float]]
    per_operator_service: Dict[str, Optional[float]]
    rebalances: int
    blocked_time: float = 0.0
    admission_rejected: int = 0
    issued_requests: Optional[int] = None

    @property
    def completion_ratio(self) -> float:
        if self.external_tuples == 0:
            return 1.0
        return self.completed_trees / self.external_tuples


class _Executor:
    """One executor: a queue, a busy flag, and (for the jsq heap) its
    index and cached load ``len(queue) + busy``.  ``payload`` /
    ``duration`` hold the in-service tuple between the start and finish
    events (one tuple in service at a time).  Under a platform,
    ``machine`` / ``speed`` pin the executor to its host (service draws
    divide by the speed) and ``dead`` marks an executor whose machine
    failed mid-service: its pending finish event drops the tuple."""

    __slots__ = (
        "queue",
        "busy",
        "index",
        "load",
        "payload",
        "duration",
        "machine",
        "speed",
        "dead",
    )

    def __init__(self, index: int = 0):
        self.queue: deque = deque()
        self.busy = False
        self.index = index
        self.load = 0
        self.payload = None
        self.duration = 0.0
        self.machine = 0
        self.speed = 1.0
        self.dead = False


class _Route:
    """Precomputed per-edge routing record (built once per runtime).

    ``sel`` is ``None`` for free-choice edges (shuffle / no grouping) and
    the grouping object otherwise; ``base``/``frac`` are the integer and
    fractional parts of a deterministic gain (``fanout is None``);
    ``arrivals`` is the target operator's measurement counter, updated
    inline by the emission loop; ``transfer`` is the per-edge transport
    delay under a platform (placement-mean link cost; 0.0 and unread on
    the legacy path)."""

    __slots__ = (
        "edge",
        "op",
        "sel",
        "fanout",
        "base",
        "frac",
        "arrivals",
        "transfer",
    )

    def __init__(self, edge, op, measurer: Measurer):
        self.edge = edge
        self.op = op
        grouping = edge.grouping
        free_choice = grouping is None or isinstance(grouping, ShuffleGrouping)
        self.sel = None if free_choice else grouping
        self.fanout = edge.fanout
        gain = edge.gain
        base = int(gain)
        self.base = base
        self.frac = gain - base
        self.arrivals = measurer.arrival_counter(edge.target)
        self.transfer = 0.0


class _SpoutSource:
    """Per-spout emission state: prebound arrival process, RNG stream
    and outgoing routes.  ``blocked_since`` is the time this source was
    paused by backpressure (``None`` while flowing)."""

    __slots__ = ("name", "rng", "next_gap", "routes", "blocked_since")

    def __init__(self, name, rng, process, routes):
        self.name = name
        self.rng = rng
        self.next_gap = process.next_gap
        self.routes = routes
        self.blocked_since: Optional[float] = None


class _ClientState:
    """One closed-loop client: how many requests it has in flight, and
    why it is not issuing right now (``waiting`` = at its outstanding
    cap, ``blocked_since`` = paused by backpressure since that time)."""

    __slots__ = ("source", "outstanding", "waiting", "blocked_since")

    def __init__(self, source: _SpoutSource):
        self.source = source
        self.outstanding = 0
        self.waiting = False
        self.blocked_since: Optional[float] = None


class _OperatorRuntime:
    """Mutable per-operator execution state."""

    __slots__ = (
        "name",
        "service",
        "discipline",
        "shared",
        "jsq",
        "executors",
        "jsq_heap",
        "jsq_rebuild",
        "shared_queue",
        "held",
        "queued",
        "processed",
        "wait_stats",
        "service_stats",
        "out_routes",
        "sample_service",
        "service_rng",
        "service_acc",
        "service_random",
        "service_rate",
        "full",
        "bp_preds",
    )

    def __init__(self, name: str, service: Distribution, discipline: str):
        self.name = name
        self.service = service
        self.discipline = discipline
        self.shared = discipline == "shared"
        self.jsq = discipline == "jsq"
        self.executors: List[_Executor] = []
        self.jsq_heap: Optional[List[Tuple[int, int]]] = None
        self.shared_queue: deque = deque()
        self.held: deque = deque()  # buffer used while paused
        self.queued = 0  # len(shared_queue) + len(held) + sum executor queues
        self.processed = 0
        # Per-stage observability: time spent waiting in this operator's
        # queues and in service (validated against M/M/k theory in tests).
        self.wait_stats = WelfordAccumulator()
        self.service_stats = WelfordAccumulator()
        # Hot-path bindings filled in by TopologyRuntime.__init__.
        self.out_routes: Tuple[_Route, ...] = ()
        self.sample_service = service.sample
        self.service_rng = None
        self.service_acc = None  # the measurer's SampledAccumulator
        # Exponential services (the overwhelmingly common case) are drawn
        # inline as ``-log(1.0 - rng.random()) / rate`` — the exact
        # ``random.Random.expovariate`` formula (Python 3.10–3.12) on the
        # same stream, minus two interpreter frames per draw.
        self.service_random: Optional[Callable[[], float]] = None
        self.service_rate = 0.0
        # Backpressure state: ``full`` marks queued >= queue_limit;
        # ``bp_preds`` are the upstream operator runtimes to wake when
        # this queue drains (both unused unless backpressure is on).
        self.full = False
        self.bp_preds: Tuple["_OperatorRuntime", ...] = ()

    @property
    def parallelism(self) -> int:
        return len(self.executors)

    def queued_total(self) -> int:
        """Tuples queued at this operator — O(1) (maintained counter)."""
        return self.queued

    def set_executors(self, k: int) -> None:
        """Install ``k`` fresh executors (and a fresh jsq heap when the
        parallelism warrants one)."""
        self.executors = [_Executor(i) for i in range(k)]
        if self.jsq and k >= _JSQ_HEAP_MIN:
            self.jsq_heap = [(0, i) for i in range(k)]  # sorted == heapified
            # Compact stale pairs when the heap outgrows this bound.
            self.jsq_rebuild = max(64, 8 * k)
        else:
            self.jsq_heap = None
            self.jsq_rebuild = 0

    def resize(self, k: int) -> List[dict]:
        """Replace executors with ``k`` fresh ones; returns displaced
        payloads (enqueue timestamps are dropped — the wait across a
        rebalance is re-measured from re-insertion)."""
        displaced: List[dict] = []
        for executor in self.executors:
            displaced.extend(entry[0] for entry in executor.queue)
            executor.queue.clear()
        displaced.extend(entry[0] for entry in self.shared_queue)
        self.shared_queue.clear()
        self.queued -= len(displaced)
        self.set_executors(k)
        return displaced


class TopologyRuntime:
    """Drives one topology through simulated time.

    Typical use::

        sim = Simulator()
        runtime = TopologyRuntime(sim, topology, allocation, options)
        runtime.start()
        sim.run_until(600.0)
        stats = runtime.stats()
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        allocation: Allocation,
        options: Optional[RuntimeOptions] = None,
    ):
        self._sim = simulator
        self._topology = topology
        self._options = options or RuntimeOptions()
        if tuple(allocation.names) != topology.operator_names:
            raise SchedulingError(
                "allocation operators do not match the topology: "
                f"{allocation.names} vs {topology.operator_names}"
            )
        rng_factory = RngFactory(self._options.seed)
        self._route_rng = rng_factory.stream("routing")
        self._hop_rng = rng_factory.stream("hops")
        self._service_rngs = {
            name: rng_factory.stream("service", name)
            for name in topology.operator_names
        }
        self._spout_rngs = {
            name: rng_factory.stream("spout", name) for name in topology.spouts
        }
        if self._options.batched_draws:
            # Exact-replay block batching on the hot streams (service
            # draws and arrival gaps).  Routing/hop/fanout streams stay
            # scalar: they draw rarely and mix method types, where the
            # fallback re-sync would cost more than it saves.
            from repro.randomness.batched import BatchedDraws

            self._service_rngs = {
                name: BatchedDraws(rng)
                for name, rng in self._service_rngs.items()
            }
            self._spout_rngs = {
                name: BatchedDraws(rng)
                for name, rng in self._spout_rngs.items()
            }
        # Arrival processes can be stateful (rate-modulated, MMPP, trace
        # replay); deep-copy them so several runtimes can share one
        # Topology object without leaking clock state across runs.  An
        # ``arrival_model`` replaces each spout's process (the model
        # reads the nominal mean rate and builds a fresh process per
        # spout); an ``arrival_rate_phases`` schedule then wraps the
        # result, so specs can modulate load without a custom workload.
        self._arrival_processes = {}
        for name, spout in topology.spouts.items():
            if self._options.arrival_model is not None:
                process = self._options.arrival_model.build(spout.arrivals)
            else:
                process = copy.deepcopy(spout.arrivals)
            if self._options.arrival_rate_phases is not None:
                process = PhasedArrivalProcess(
                    process, self._options.arrival_rate_phases
                )
            self._arrival_processes[name] = process
        self._fanout_rng = rng_factory.stream("fanout")

        self._operators: Dict[str, _OperatorRuntime] = {}
        for name in topology.operator_names:
            operator = topology.operator(name)
            runtime = _OperatorRuntime(
                name, operator.service_time, self._options.queue_discipline
            )
            runtime.set_executors(allocation[name])
            self._operators[name] = runtime

        self._measurer = Measurer(
            topology.operator_names, self._options.measurement
        )
        self._external_counter = self._measurer.external_counter()
        for name, runtime in self._operators.items():
            runtime.service_acc = self._measurer.service_accumulator(name)
            runtime.service_rng = self._service_rngs[name]
            service_dist = topology.operator(name).service_time
            if type(service_dist) is ExponentialDistribution:
                runtime.service_random = runtime.service_rng.random
                runtime.service_rate = service_dist.rate
            runtime.out_routes = tuple(
                _Route(edge, self._operators[edge.target], self._measurer)
                for edge in topology.out_edges(name)
            )
        self._spout_sources: List[_SpoutSource] = [
            _SpoutSource(
                name,
                self._spout_rngs[name],
                self._arrival_processes[name],
                tuple(
                    _Route(edge, self._operators[edge.target], self._measurer)
                    for edge in topology.out_edges(name)
                ),
            )
            for name in topology.spouts
        ]

        self._tracker = TupleTreeTracker(on_complete=self._on_tree_complete)
        # The tracker never reassigns its root table; cache it (and the
        # tree-size bound) to skip two attribute hops per event.
        self._roots = self._tracker._roots
        self._max_tree_size = self._tracker._max_tree_size
        self._allocation = allocation
        self._paused = False
        self._started = False
        self._root_counter = 0
        self._external_tuples = 0
        self._dropped_tuples = 0
        self._rebalances = 0
        # Parallel completion arrays (times are nondecreasing): cheaper
        # to append than tuple pairs, and ``stats()`` can bisect warmups.
        self._completion_times: List[float] = []
        self._completion_sojourns: List[float] = []
        self._stats_cache: Dict[Tuple[float, int], tuple] = {}
        self._reports: List[MeasurementReport] = []
        self.on_measurement: Optional[Callable[[MeasurementReport], None]] = None

        # Platform layer: bind placement, per-edge transfer delays,
        # machine speeds and the churn process.  ``None`` leaves the
        # legacy hop-constant path untouched byte-for-byte (the golden
        # suite pins this; the ``platform_off`` benchmark row bounds the
        # guard's overhead).
        self._platform = None
        self._patterns: Dict[str, Tuple[int, ...]] = {}
        self._machine_up: List[bool] = []
        self._churn_rng = None
        self._kind_node = -1
        #: ``(time, machine_name, "down"|"up")`` churn transitions applied.
        self.node_events: List[Tuple[float, str, str]] = []
        if self._options.platform is not None:
            binding = self._options.platform.bind(topology, allocation)
            self._platform = binding
            self._machine_up = [True] * len(binding.machine_names)
            self._patterns = binding.patterns_for(allocation)
            for name, op_runtime in self._operators.items():
                self._pin_executors(op_runtime, self._patterns[name])
            self._refresh_transfers()
            self._churn_rng = rng_factory.stream("churn")
            self._kind_node = simulator.register_handler(self._on_node_event)

        # Closed-loop clients and backpressure (both off by default; the
        # default path stays byte-for-byte, pinned by the golden suite).
        self._cl = self._options.closed_loop
        self._bp = self._options.backpressure
        # Admission knobs are optional on duck-typed sources.
        self._cl_admission = getattr(self._cl, "admission_latency", None)
        self._cl_alpha = getattr(self._cl, "admission_alpha", 0.2)
        self._cl_clients: List[_ClientState] = []
        if self._cl is not None:
            for source in self._spout_sources:
                for _ in range(self._cl.clients):
                    self._cl_clients.append(_ClientState(source))
        self._cl_roots: Dict[int, _ClientState] = {}
        self._latency_ewma: Optional[float] = None
        self._issued_requests = 0
        self._admission_rejected = 0
        self._blocked_time = 0.0
        #: Sources/clients currently paused by backpressure, FIFO.
        self._bp_waiters: List[Any] = []
        if self._bp:
            preds: Dict[str, List[_OperatorRuntime]] = {
                name: [] for name in self._operators
            }
            for name, op_runtime in self._operators.items():
                for route in op_runtime.out_routes:
                    preds[route.op.name].append(op_runtime)
            for name, op_runtime in self._operators.items():
                op_runtime.bp_preds = tuple(preds[name])

        # Hot-path constants, prebound RNG methods and typed-event kinds.
        self._het = self._platform is not None
        self._queue_limit = self._options.queue_limit
        # Free-choice deliveries skip the generic _deliver path entirely
        # while unpaused (the queue-limit test is O(1) inline); kept in
        # sync by apply_allocation.  Backpressure needs every delivery
        # on the generic path, where full-queue marking lives.
        self._fast = not self._bp
        self._hop_dist = self._options.hop_latency_distribution
        self._hop_const = self._options.hop_latency
        self._pull_interval = self._options.measurement.pull_interval
        self._fanout_random = self._fanout_rng.random
        self._route_randrange = self._route_rng.randrange
        self._kind_spout = simulator.register_handler(self._on_spout)
        self._kind_hop = simulator.register_handler(self._on_hop)
        self._kind_finish = simulator.register_handler(self._on_finish)
        self._kind_tick = simulator.register_handler(self._on_tick)
        self._kind_client = simulator.register_handler(self._on_client)

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def options(self) -> RuntimeOptions:
        return self._options

    @property
    def allocation(self) -> Allocation:
        return self._allocation

    @property
    def measurer(self) -> Measurer:
        return self._measurer

    @property
    def tracker(self) -> TupleTreeTracker:
        return self._tracker

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def reports(self) -> List[MeasurementReport]:
        """All measurement reports pulled so far."""
        return list(self._reports)

    @property
    def completions(self) -> List[Tuple[float, float]]:
        """(completion_time, sojourn) of every completed tree."""
        return list(zip(self._completion_times, self._completion_sojourns))

    @property
    def issued_requests(self) -> int:
        """Closed-loop requests attempted (admitted + rejected)."""
        return self._issued_requests

    @property
    def admission_rejected(self) -> int:
        """Closed-loop requests refused by the admission controller."""
        return self._admission_rejected

    @property
    def blocked_time(self) -> float:
        """Total simulated time sources/clients spent backpressure-paused.

        Includes the still-open blocked intervals of currently paused
        sources, so the value is exact at any point mid-run.
        """
        blocked = self._blocked_time
        if self._bp_waiters:
            now = self._sim.now
            for waiter in self._bp_waiters:
                since = waiter.blocked_since
                if since is not None:
                    blocked += now - since
        return blocked

    @property
    def client_outstanding(self) -> Tuple[int, ...]:
        """Per-client in-flight request counts (closed-loop runs only)."""
        return tuple(client.outstanding for client in self._cl_clients)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first spout arrivals and the measurement tick."""
        if self._started:
            raise SimulationError("runtime already started")
        self._started = True
        sim = self._sim
        if self._cl is None:
            for source in self._spout_sources:
                gap = source.next_gap(sim.now, source.rng)
                sim.schedule_event(gap, self._kind_spout, source)
        else:
            # Closed loop: every client starts thinking; its first
            # request arrives after one think interval (drawn from the
            # spout's RNG stream, in client order, so runs stay
            # deterministic per seed).
            for client in self._cl_clients:
                gap = self._cl.think_gap(client.source.rng)
                sim.schedule_event(gap, self._kind_client, client)
        sim.schedule_event(self._pull_interval, self._kind_tick)
        if self._platform is not None:
            seeds = self._platform.failure.initial_events(
                self._platform.machine_names, self._churn_rng
            )
            for delay, machine, goes_down in seeds:
                sim.schedule_event(
                    delay, self._kind_node, machine, 1 if goes_down else 0
                )

    def apply_allocation(
        self,
        new_allocation: Allocation,
        *,
        machines_added: int = 0,
        machines_removed: int = 0,
    ) -> float:
        """Rebalance to ``new_allocation``; returns the pause duration.

        The topology pauses (bolts stop starting work; arrivals keep
        buffering) for the cost-model duration, then resumes with the
        new executor counts and all buffered tuples redistributed.
        """
        if tuple(new_allocation.names) != self._topology.operator_names:
            raise SchedulingError("allocation does not match the topology")
        if self._paused:
            raise SimulationError("rebalance already in progress")
        stateful_moved = sum(
            abs(delta)
            for name, delta in new_allocation.moves_from(self._allocation).items()
            if self._topology.operator(name).stateful
        )
        pause = self._options.rebalance_cost.pause_duration(
            machines_added=machines_added,
            machines_removed=machines_removed,
            stateful_executors_moved=stateful_moved,
        )
        self._rebalances += 1
        self._paused = True
        self._fast = False
        # Move all queued tuples into per-operator holding buffers.
        for runtime in self._operators.values():
            displaced = runtime.resize(0)
            runtime.held.extend(displaced)
            runtime.queued += len(displaced)

        def resume() -> None:
            self._allocation = new_allocation
            for name, runtime in self._operators.items():
                runtime.set_executors(new_allocation[name])
            if self._platform is not None:
                self._patterns = self._platform.patterns_for(new_allocation)
                for name, runtime in self._operators.items():
                    pattern = self._alive_pattern(name)
                    if len(pattern) != len(runtime.executors):
                        runtime.set_executors(len(pattern))
                    self._pin_executors(runtime, pattern)
                self._refresh_transfers()
            self._paused = False
            self._fast = not self._bp
            for runtime in self._operators.values():
                held = list(runtime.held)
                runtime.held.clear()
                runtime.queued -= len(held)
                for payload in held:
                    self._deliver(runtime, payload, None)
            if self._bp:
                # Queue depths moved arbitrarily during redistribution;
                # re-derive every full flag and wake what drained.
                self._bp_sync()
            # Old smoothed metrics describe the previous configuration.
            self._measurer.reset_smoothing()

        self._sim.schedule(pause, resume)
        return pause

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self, *, warmup: float = 0.0) -> RunStats:
        """Aggregate results, ignoring completions before ``warmup``."""
        mean, std, p95 = self._window_summary(warmup)
        return RunStats(
            duration=self._sim.now,
            external_tuples=self._external_tuples,
            completed_trees=self._tracker.completed,
            dropped_tuples=self._dropped_tuples,
            dropped_trees=self._tracker.dropped,
            mean_sojourn=mean,
            std_sojourn=std,
            p95_sojourn=p95,
            per_operator_processed={
                name: runtime.processed
                for name, runtime in self._operators.items()
            },
            per_operator_wait={
                name: (
                    runtime.wait_stats.mean if runtime.wait_stats.count else None
                )
                for name, runtime in self._operators.items()
            },
            per_operator_service={
                name: (
                    runtime.service_stats.mean
                    if runtime.service_stats.count
                    else None
                )
                for name, runtime in self._operators.items()
            },
            rebalances=self._rebalances,
            blocked_time=self.blocked_time,
            admission_rejected=self._admission_rejected,
            issued_requests=(
                self._issued_requests if self._cl is not None else None
            ),
        )

    def _window_summary(self, warmup: float) -> tuple:
        """(mean, std, p95) of the completions with ``t >= warmup``.

        Completion times are nondecreasing, so the warmup cut is a
        bisect instead of a full scan; p95 is selected with
        ``heapq.nlargest`` instead of a full sort; and the result is
        cached per ``(warmup, completion_count)`` so per-window report
        rendering does not re-sort an unchanged window on every call.
        """
        times = self._completion_times
        key = (warmup, len(times))
        cached = self._stats_cache.get(key)
        if cached is not None:
            return cached
        sojourns = self._completion_sojourns
        lo = bisect_left(times, warmup) if warmup > 0.0 else 0
        window = sojourns[lo:]
        acc = WelfordAccumulator()
        for sojourn in window:
            acc.add(sojourn)
        p95 = None
        if window:
            index = max(0, int(math.ceil(0.95 * len(window))) - 1)
            # The index-th smallest == the (n - index)-th largest; for a
            # p95 that's a selection of ~5% of the window, much cheaper
            # than sorting all of it.
            p95 = heapq.nlargest(len(window) - index, window)[-1]
        result = (
            acc.mean if acc.count else None,
            acc.std if acc.count else None,
            p95,
        )
        if len(self._stats_cache) >= 64:
            self._stats_cache.clear()
        self._stats_cache[key] = result
        return result

    def recent_p95(self, window: float) -> Optional[float]:
        """p95 sojourn over the completions of the last ``window`` seconds.

        The recency signal behind latency-target feedback policies
        (``slo_feedback``): completed-tree statistics over the whole run
        lag the present, while a trailing window tracks it.  ``None``
        until something completes inside the window.
        """
        if window <= 0:
            raise SimulationError("recent_p95 window must be > 0")
        cut = self._sim.now - window
        return self._window_summary(cut if cut > 0.0 else 0.0)[2]

    def timeline(self) -> List[Tuple[float, Optional[float], int]]:
        """Per-bucket mean sojourn: [(bucket_start, mean, count), ...].

        Buckets of ``options.timeline_bucket`` seconds — the minute-by-
        minute curves of Fig. 9/10.
        """
        bucket = self._options.timeline_bucket
        if not self._completion_times:
            return []
        horizon = self._sim.now
        n_buckets = int(math.ceil(horizon / bucket)) or 1
        sums = [0.0] * n_buckets
        counts = [0] * n_buckets
        last = n_buckets - 1
        for t, sojourn in zip(self._completion_times, self._completion_sojourns):
            index = min(last, int(t / bucket))
            sums[index] += sojourn
            counts[index] += 1
        return [
            (i * bucket, (sums[i] / counts[i]) if counts[i] else None, counts[i])
            for i in range(n_buckets)
        ]

    def check_conservation(self) -> None:
        """Every tracked tree is completed, in flight, or dropped.

        Closed-loop runs add two identities: every issued request was
        either admitted (became an external tuple) or rejected, and the
        clients' in-flight counts agree with the root table.
        """
        accounted = self._tracker.completed + self._tracker.in_flight
        accounted += self._tracker.dropped
        if accounted != self._external_tuples:
            raise SimulationError(
                f"conservation violated: {self._external_tuples} external"
                f" tuples but {accounted} accounted for"
            )
        if self._cl is not None:
            admitted = self._issued_requests - self._admission_rejected
            if admitted != self._external_tuples:
                raise SimulationError(
                    f"closed-loop conservation violated:"
                    f" {self._issued_requests} issued -"
                    f" {self._admission_rejected} rejected !="
                    f" {self._external_tuples} external tuples"
                )
            outstanding = sum(c.outstanding for c in self._cl_clients)
            if outstanding != len(self._cl_roots):
                raise SimulationError(
                    f"closed-loop conservation violated: clients hold"
                    f" {outstanding} outstanding requests but"
                    f" {len(self._cl_roots)} roots are mapped"
                )

    # ------------------------------------------------------------------
    # typed-event handlers (the hot path)
    #
    # The emission pipeline (gain sampling, arrival counting, hop delay,
    # free-choice delivery, service start, finish-event push) is fully
    # inlined in ``_emit_tuples`` — one interpreter frame per processed
    # tuple.  Inlining means: direct counter and Welford-accumulator
    # updates (same arithmetic as their methods), direct tuple-tree
    # bookkeeping (same semantics as TupleTreeTracker
    # add_pending/complete_one) and direct event-heap pushes (same
    # validation and sequence numbering as ``Simulator.schedule_event``).
    # The RNG draw order matches the original _sample_count/_dispatch
    # factoring exactly: fanout draw, then per-copy hop/routing draws.
    # Any change here must keep tests/test_golden_determinism.py green
    # without regenerating its fixtures.
    # ------------------------------------------------------------------
    def _emit_tuples(self, routes, payload, root, now, external: bool) -> None:
        """Emit one processed tuple's downstream copies along ``routes``.

        One frame per processed tuple: fanout sampling, tree
        bookkeeping, hop delay, free-choice delivery and service start
        are all inlined below."""
        sim = self._sim
        tracker = self._tracker
        roots = self._roots
        fast = self._fast
        limit = self._queue_limit
        ext_counter = self._external_counter if external else None
        frandom = self._fanout_random
        hop_dist = self._hop_dist
        hop_const = self._hop_const
        het = self._het
        kind_finish = self._kind_finish
        state = roots.get(root)
        for route in routes:
            fanout = route.fanout
            if fanout is None:
                count = route.base
                frac = route.frac
                if frac > 0 and frandom() < frac:
                    count += 1
            else:
                value = fanout.sample(self._fanout_rng)
                if value < 0:
                    count = 0
                else:
                    count = int(value)
                    frac = value - count
                    if frac > 0 and frandom() < frac:
                        count += 1
            if count <= 0:
                continue
            # inline TupleTreeTracker.add_pending (count >= 1 here)
            if state is not None:
                state[1] += count
                size = state[2] + count
                state[2] = size
                if size > self._max_tree_size:
                    # An exploding tree means an unstable feedback loop;
                    # drop it and count the drop so callers can alert.
                    if roots.pop(root, None) is not None:
                        tracker._dropped += 1
                        if self._cl is not None:
                            self._cl_release(root)
                    state = None
            arrivals = route.arrivals
            op = route.op
            sel = route.sel
            for _ in range(count):
                arrivals._count += 1
                if ext_counter is not None:
                    ext_counter._count += 1
                if het:
                    delay = route.transfer
                    if delay > 0.0:
                        sim.schedule_event(delay, self._kind_hop, route, payload)
                        continue
                elif hop_dist is not None:
                    delay = hop_dist.sample(self._hop_rng)
                    if delay > 0:
                        sim.schedule_event(delay, self._kind_hop, route, payload)
                        continue
                elif hop_const > 0:
                    sim.schedule_event(hop_const, self._kind_hop, route, payload)
                    continue
                # -- delivery (zero hop delay) ------------------------
                if sel is not None or not fast or op.shared:
                    self._deliver(op, payload, sel)
                    continue
                if limit is not None and op.queued >= limit:
                    self._drop(payload)
                    continue
                executors = op.executors
                n_ex = len(executors)
                if n_ex == 0:
                    self._drop(payload)
                    continue
                jheap = op.jsq_heap
                if jheap is not None:
                    while True:
                        load, index = jheap[0]
                        executor = executors[index]
                        if executor.load == load:
                            break
                        _heappop(jheap)
                    load += 1
                    executor.load = load
                    _heappush(jheap, (load, index))
                    if len(jheap) > op.jsq_rebuild:
                        jheap[:] = sorted(
                            (ex.load, i) for i, ex in enumerate(executors)
                        )
                elif op.jsq:
                    best_index = 0
                    best_load = math.inf
                    for index, executor in enumerate(executors):
                        load = len(executor.queue) + (1 if executor.busy else 0)
                        if load < best_load:
                            best_load = load
                            best_index = index
                            if load == 0:
                                break
                    executor = executors[best_index]
                else:  # hashed
                    executor = executors[self._route_randrange(n_ex)]
                if executor.busy:
                    executor.queue.append((payload, now))
                    op.queued += 1
                    continue
                # -- service start on an idle executor ----------------
                # (skipping the enqueue/dequeue round-trip; the queue
                # wait is exactly 0.0, as now - now was in _begin_service)
                executor.busy = True
                ws = op.wait_stats
                n = ws._n + 1
                ws._n = n
                delta = 0.0 - ws._mean
                mean = ws._mean + delta / n
                ws._mean = mean
                ws._m2 += delta * (0.0 - mean)
                if 0.0 < ws._min:
                    ws._min = 0.0
                if 0.0 > ws._max:
                    ws._max = 0.0
                srandom = op.service_random
                if srandom is not None:  # inline expovariate
                    duration = -_log(1.0 - srandom()) / op.service_rate
                else:
                    duration = op.sample_service(op.service_rng)
                if het:
                    duration /= executor.speed
                ss = op.service_stats
                n = ss._n + 1
                ss._n = n
                delta = duration - ss._mean
                mean = ss._mean + delta / n
                ss._mean = mean
                ss._m2 += delta * (duration - mean)
                if duration < ss._min:
                    ss._min = duration
                if duration > ss._max:
                    ss._max = duration
                executor.payload = payload
                executor.duration = duration
                # inline Simulator.schedule_event
                if not duration >= 0.0:  # negative or NaN service time
                    raise SimulationError(
                        f"cannot schedule into the past: delay={duration}"
                    )
                time = now + duration
                seq = sim._seq
                sim._seq = seq + 1
                _heappush(sim._queue, (time, seq, kind_finish, op, executor))

    def _on_spout(self, source: _SpoutSource, _unused) -> None:
        """One external arrival: emit its tuple tree roots, then
        schedule the next arrival of this spout."""
        sim = self._sim
        now = sim._now
        if self._bp and self._routes_full(source.routes):
            # A downstream queue is full: pause the source.  The next
            # arrival is *not* scheduled — the deferred emission (and
            # the gap after it) resume when the queue drains.
            source.blocked_since = now
            self._bp_waiters.append(source)
            return
        root_id = self._root_counter
        self._root_counter = root_id + 1
        self._external_tuples += 1
        tracker = self._tracker
        tracker.register_root(root_id, now)
        payload = {"root": root_id}
        self._emit_tuples(source.routes, payload, root_id, now, True)
        # The root "tuple" itself needs no processing once emitted.
        tracker.complete_one(root_id, now)
        gap = source.next_gap(sim._now, source.rng)
        sim.schedule_event(gap, self._kind_spout, source)

    def _on_hop(self, route: _Route, payload: dict) -> None:
        """A tuple arrives at its target after a non-zero hop delay."""
        self._deliver(route.op, payload, route.sel)

    # ------------------------------------------------------------------
    # closed-loop clients
    # ------------------------------------------------------------------
    def _on_client(self, client: _ClientState, _unused) -> None:
        """A client finished thinking: try to issue its next request."""
        self._client_try_issue(client)

    def _client_try_issue(self, client: _ClientState) -> None:
        """Issue now, or park the client on whatever is in the way.

        A client at its outstanding cap waits for one of its requests
        to come back (``waiting``); under backpressure a client whose
        spout routes hit a full queue pauses with the other waiters.
        Parked clients have no pending think event — the release path
        issues for them directly.
        """
        if client.outstanding >= self._cl.max_outstanding:
            client.waiting = True
            return
        if self._bp and self._routes_full(client.source.routes):
            client.blocked_since = self._sim._now
            self._bp_waiters.append(client)
            return
        self._client_issue(client)

    def _client_issue(self, client: _ClientState) -> None:
        """Emit one request (or reject it) and schedule the next think.

        The admission controller consults the sojourn EWMA *before*
        emitting: while smoothed latency exceeds the threshold the
        request is counted as rejected and never enters the topology —
        the client simply thinks again (a fast retry-after).
        """
        sim = self._sim
        now = sim._now
        cl = self._cl
        source = client.source
        self._issued_requests += 1
        admit_at = self._cl_admission
        if (
            admit_at is not None
            and self._latency_ewma is not None
            and self._latency_ewma > admit_at
        ):
            self._admission_rejected += 1
        else:
            root_id = self._root_counter
            self._root_counter = root_id + 1
            self._external_tuples += 1
            tracker = self._tracker
            tracker.register_root(root_id, now)
            # Map the root (and bump outstanding) *before* emitting:
            # a queue-limit drop during emission must release the
            # client through the same idempotent path as a completion.
            self._cl_roots[root_id] = client
            client.outstanding += 1
            payload = {"root": root_id}
            self._emit_tuples(source.routes, payload, root_id, now, True)
            tracker.complete_one(root_id, now)
        gap = cl.think_gap(source.rng)
        sim.schedule_event(gap, self._kind_client, client)

    def _cl_release(self, root: int) -> None:
        """A root left the system (completed or dropped): free its
        client's slot and, if the client was waiting on the cap, issue
        its held request immediately.  Idempotent per root."""
        client = self._cl_roots.pop(root, None)
        if client is None:
            return
        client.outstanding -= 1
        if client.waiting:
            client.waiting = False
            self._client_try_issue(client)

    def _on_finish(self, op: _OperatorRuntime, executor: _Executor) -> None:
        """Service completion: emit downstream tuples, then pull the
        executor's next queued tuple (or the shared queue's head)."""
        if executor.dead:
            # The machine went down mid-service: the in-flight tuple is
            # lost.  (Queued tuples were already redistributed by the
            # node_down handler; only the in-service payload dies here.)
            executor.dead = False
            payload = executor.payload
            executor.payload = None
            executor.busy = False
            if payload is not None:
                self._drop(payload)
            return
        sim = self._sim
        now = sim._now
        op.processed += 1
        duration = executor.duration
        # inline SampledAccumulator.offer (the measurer's service channel)
        acc = op.service_acc
        phase = acc._phase + 1
        if phase >= acc._every:
            acc._phase = 0
            acc._sum += duration
            acc._sum_squares += duration * duration
            acc._n += 1
        else:
            acc._phase = phase
        payload = executor.payload
        executor.payload = None
        root = payload["root"]
        roots = self._roots
        routes = op.out_routes
        if routes:
            self._emit_tuples(routes, payload, root, now, False)
        # inline TupleTreeTracker.complete_one (refreshed get: a queue
        # drop during emission may have removed the tree)
        state = roots.get(root)
        if state is not None:
            pending = state[1] - 1
            if pending > 0:
                state[1] = pending
            elif pending == 0:
                arrival = state[0]
                del roots[root]
                self._tracker._completed += 1
                self._on_tree_complete(root, arrival, now - arrival)
            else:
                state[1] = pending
                self._tracker.complete_one(root, now)  # raises the error
        executor.busy = False
        jheap = op.jsq_heap
        if jheap is not None:
            load = executor.load - 1
            executor.load = load
            index = executor.index
            executors = op.executors
            # Guard against executors orphaned by a rebalance resize:
            # their finish events still fire, but they no longer belong
            # to the (new) heap.
            if index < len(executors) and executors[index] is executor:
                _heappush(jheap, (load, index))
        if op.shared:
            self._kick_shared(op)
            return
        if self._paused or executor.busy:
            return
        if self._bp and not self._bp_can_serve(op):
            # A successor queue is full: leave the executor idle; the
            # successor's drain wakes this operator's predecessor side.
            return
        queue = executor.queue
        if not queue:
            return
        # -- restart on the next queued tuple (inline _begin_service) --
        executor.busy = True
        head_payload, enqueued_at = queue.popleft()
        op.queued -= 1
        ws = op.wait_stats
        value = now - enqueued_at
        n = ws._n + 1
        ws._n = n
        delta = value - ws._mean
        mean = ws._mean + delta / n
        ws._mean = mean
        ws._m2 += delta * (value - mean)
        if value < ws._min:
            ws._min = value
        if value > ws._max:
            ws._max = value
        srandom = op.service_random
        if srandom is not None:  # inline expovariate
            duration = -_log(1.0 - srandom()) / op.service_rate
        else:
            duration = op.sample_service(op.service_rng)
        if self._het:
            duration /= executor.speed
        ss = op.service_stats
        n = ss._n + 1
        ss._n = n
        delta = duration - ss._mean
        mean = ss._mean + delta / n
        ss._mean = mean
        ss._m2 += delta * (duration - mean)
        if duration < ss._min:
            ss._min = duration
        if duration > ss._max:
            ss._max = duration
        executor.payload = head_payload
        executor.duration = duration
        if not duration >= 0.0:  # negative or NaN service time
            raise SimulationError(
                f"cannot schedule into the past: delay={duration}"
            )
        time = now + duration
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._queue, (time, seq, self._kind_finish, op, executor))
        if self._bp and op.full and op.queued < self._queue_limit:
            op.full = False
            self._bp_release(op)

    def _on_tick(self, _a, _b) -> None:
        report = self._measurer.pull(self._sim.now)
        self._reports.append(report)
        if self.on_measurement is not None:
            self.on_measurement(report)
        self._sim.schedule_event(self._pull_interval, self._kind_tick)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _deliver(
        self,
        op: _OperatorRuntime,
        payload: dict,
        grouping,
    ) -> None:
        """Place a tuple into ``op``'s queue structure.

        ``grouping`` is ``None`` for free-choice tuples (shuffle edges
        and rebalance redistribution) and the grouping object otherwise.
        """
        limit = self._queue_limit
        if limit is not None and op.queued >= limit:
            if self._bp:
                # Backpressure: never drop.  Tuples already in flight
                # (emitted before the queue filled) still land — the
                # limit is a signal line, not a hard wall — and the
                # full flag pauses everything upstream.
                op.full = True
            else:
                self._drop(payload)
                return
        elif self._bp and limit is not None and op.queued == limit - 1:
            op.full = True  # this enqueue reaches the limit
        if self._paused:
            op.held.append(payload)
            op.queued += 1
            return
        now = self._sim.now
        can_start = not self._bp or self._bp_can_serve(op)
        if op.shared:
            op.shared_queue.append((payload, now))
            op.queued += 1
            if can_start:
                self._kick_shared(op)
            return
        executors = op.executors
        n = len(executors)
        if n == 0:
            self._drop(payload)
            return
        # Per-executor queues: the grouping picks the executor(s).  Under
        # "jsq" a shuffle-grouped (or redistributed) tuple goes to the
        # least-loaded executor instead of a random one — the behaviour a
        # load-balanced real deployment approximates, and the setting
        # under which the M/M/k model is accurate.  Key-based groupings
        # (fields/global/broadcast) are always honoured exactly.
        if grouping is None:
            jheap = op.jsq_heap
            if jheap is not None:
                # Lazy min-heap: pop stale (load, index) pairs until the
                # top matches its executor's current load.  Because every
                # load change pushes a fresh pair, the heap always holds
                # each executor's current pair, so the first valid top is
                # the scan's answer: minimum load, lowest index on ties.
                heappop = heapq.heappop
                while True:
                    load, index = jheap[0]
                    executor = executors[index]
                    if executor.load == load:
                        break
                    heappop(jheap)
                executor.queue.append((payload, now))
                op.queued += 1
                load += 1
                executor.load = load
                heapq.heappush(jheap, (load, index))
                if len(jheap) > op.jsq_rebuild:
                    # Rare compaction: drop stale pairs (a sorted list of
                    # the current pairs is already a valid heap).
                    jheap[:] = sorted(
                        (ex.load, i) for i, ex in enumerate(executors)
                    )
                if can_start and not executor.busy:
                    self._begin_service(op, executor)
                return
            if op.jsq:
                best_index = 0
                best_load = math.inf
                for index, executor in enumerate(executors):
                    load = len(executor.queue) + (1 if executor.busy else 0)
                    if load < best_load:
                        best_load = load
                        best_index = index
                        if load == 0:
                            break
                executor = executors[best_index]
            else:  # hashed
                executor = executors[self._route_rng.randrange(n)]
            executor.queue.append((payload, now))
            op.queued += 1
            if can_start and not executor.busy:
                self._begin_service(op, executor)
            return
        indices = grouping.select_tasks(payload, n, self._route_rng)
        if not indices:
            self._drop(payload)
            return
        copies = len(indices)
        if copies > 1:
            # Replication (broadcast): each copy is an extra pending tuple.
            self._tracker.add_pending(payload["root"], copies - 1)
        jheap = op.jsq_heap
        for index in indices:
            executor = executors[index]
            executor.queue.append((payload, now))
            op.queued += 1
            if jheap is not None:
                load = executor.load + 1
                executor.load = load
                heapq.heappush(jheap, (load, index))
                if len(jheap) > op.jsq_rebuild:
                    jheap[:] = sorted(
                        (ex.load, i) for i, ex in enumerate(executors)
                    )
            if can_start and not executor.busy:
                self._begin_service(op, executor)

    def _drop(self, payload: dict) -> None:
        self._dropped_tuples += 1
        # Abandon the whole tree: a dropped intermediate result means the
        # external tuple can never be fully processed.
        root = payload["root"]
        self._tracker.drop_tree(root)
        if self._cl is not None:
            self._cl_release(root)

    # ------------------------------------------------------------------
    # bolt side
    # ------------------------------------------------------------------
    def _kick_shared(self, op: _OperatorRuntime) -> None:
        if self._paused:
            return
        if self._bp and not self._bp_can_serve(op):
            return
        shared_queue = op.shared_queue
        if not shared_queue:
            return
        for executor in op.executors:
            if not shared_queue:
                break
            if not executor.busy:
                # shared pop and executor append cancel out in `queued`;
                # _begin_service accounts the service pop.
                executor.queue.append(shared_queue.popleft())
                self._begin_service(op, executor)

    def _begin_service(self, op: _OperatorRuntime, executor: _Executor) -> None:
        """Start serving the executor's queue head.  Callers guarantee
        the executor is idle, its queue non-empty, and the runtime not
        paused (the checks the old guarded ``_start_service`` re-did on
        every call)."""
        executor.busy = True
        payload, enqueued_at = executor.queue.popleft()
        op.queued -= 1
        sim = self._sim
        op.wait_stats.add(sim._now - enqueued_at)
        srandom = op.service_random
        if srandom is not None:  # inline expovariate
            duration = -_log(1.0 - srandom()) / op.service_rate
        else:
            duration = op.sample_service(op.service_rng)
        if self._het:
            duration /= executor.speed
        op.service_stats.add(duration)
        executor.payload = payload
        executor.duration = duration
        sim.schedule_event(duration, self._kind_finish, op, executor)
        if self._bp and op.full and op.queued < self._queue_limit:
            op.full = False
            self._bp_release(op)

    # ------------------------------------------------------------------
    # backpressure: full-queue signalling and upstream wake-ups
    # ------------------------------------------------------------------
    def _bp_can_serve(self, op: _OperatorRuntime) -> bool:
        """False while any successor queue of ``op`` is full: starting
        another service would emit straight into the congestion."""
        for route in op.out_routes:
            if route.op.full:
                return False
        return True

    def _routes_full(self, routes: Tuple[_Route, ...]) -> bool:
        """True when any emission target of these routes is full."""
        for route in routes:
            if route.op.full:
                return True
        return False

    def _bp_release(self, op: _OperatorRuntime) -> None:
        """``op``'s queue just drained below the limit: restart idle
        predecessor executors and retry paused sources/clients.

        Processing order (predecessors in precomputed tuple order, then
        waiters FIFO) is deterministic; a waiter whose targets refilled
        meanwhile re-parks with its original blocked timestamp.
        """
        for pred in op.bp_preds:
            if not self._bp_can_serve(pred):
                continue  # still gated by another full successor
            if pred.shared:
                self._kick_shared(pred)
                continue
            for executor in pred.executors:
                if not executor.busy and executor.queue:
                    self._begin_service(pred, executor)
        if self._bp_waiters:
            waiters = self._bp_waiters
            self._bp_waiters = []
            for waiter in waiters:
                self._bp_retry(waiter)

    def _bp_retry(self, waiter: Any) -> None:
        """Resume one paused source/client, or re-park it."""
        if self._routes_full(
            waiter.routes
            if isinstance(waiter, _SpoutSource)
            else waiter.source.routes
        ):
            self._bp_waiters.append(waiter)
            return
        now = self._sim._now
        since = waiter.blocked_since
        if since is not None:
            self._blocked_time += now - since
            waiter.blocked_since = None
        if isinstance(waiter, _SpoutSource):
            # Emit the arrival that was deferred when the source
            # paused, then resume the arrival process from now.
            source = waiter
            root_id = self._root_counter
            self._root_counter = root_id + 1
            self._external_tuples += 1
            tracker = self._tracker
            tracker.register_root(root_id, now)
            payload = {"root": root_id}
            self._emit_tuples(source.routes, payload, root_id, now, True)
            tracker.complete_one(root_id, now)
            gap = source.next_gap(now, source.rng)
            self._sim.schedule_event(gap, self._kind_spout, source)
        else:
            self._client_issue(waiter)

    def _bp_sync(self) -> None:
        """Re-derive every full flag from current queue depths (after a
        rebalance or churn resize moved tuples wholesale) and run the
        release path for queues that drained."""
        limit = self._queue_limit
        drained: List[_OperatorRuntime] = []
        for op_runtime in self._operators.values():
            full = op_runtime.queued >= limit
            if op_runtime.full and not full:
                drained.append(op_runtime)
            op_runtime.full = full
        for op_runtime in drained:
            self._bp_release(op_runtime)

    # ------------------------------------------------------------------
    # platform: placement, transfers and churn
    # ------------------------------------------------------------------
    def _pin_executors(
        self, op: _OperatorRuntime, pattern: Tuple[int, ...]
    ) -> None:
        """Bind each executor of ``op`` to its machine (index + speed).

        A busy executor keeps its ``dead`` mark: the kill must survive
        re-pinning so the in-flight tuple still dies at its finish
        event.  Idle executors can never be dead-pending.
        """
        speeds = self._platform.machine_speeds
        for executor, machine in zip(op.executors, pattern):
            executor.machine = machine
            executor.speed = speeds[machine]
            if not executor.busy:
                executor.dead = False

    def _alive_pattern(self, name: str) -> Tuple[int, ...]:
        """The operator's placement restricted to machines that are up.

        Falls back to the full pattern when every hosting machine is
        down: the operator keeps serving on the (nominally dead)
        machines — degraded realism, but routing never deadlocks.
        """
        pattern = self._patterns[name]
        up = self._machine_up
        alive = tuple(m for m in pattern if up[m])
        return alive if alive else pattern

    def _refresh_transfers(self) -> None:
        """Recompute each route's expected transfer delay.

        A route's delay is the mean link cost over the alive placement
        pairs of its source and target operators (spout routes use the
        ingress machine as source).  Recomputed after placement changes:
        start-up, rebalance, node churn.
        """
        binding = self._platform
        matrix = binding.transfer
        ingress = (binding.ingress,)
        for source in self._spout_sources:
            for route in source.routes:
                route.transfer = _mean_transfer(
                    matrix, ingress, self._alive_pattern(route.op.name)
                )
        for name, op in self._operators.items():
            sources = self._alive_pattern(name)
            for route in op.out_routes:
                route.transfer = _mean_transfer(
                    matrix, sources, self._alive_pattern(route.op.name)
                )

    def _on_node_event(self, machine: int, flag: int) -> None:
        """Apply a ``node_down`` / ``node_up`` transition for ``machine``.

        Down: executors on the machine vanish — their queued tuples are
        redelivered to survivors (or dropped by the queue-limit / no-
        survivor machinery) and any in-service tuple dies when its
        finish event fires (``executor.dead``).  Up: the machine rejoins
        and placements grow back.  During a rebalance pause the
        transition retries shortly after, mirroring how real clusters
        serialise membership changes behind a rebalance.
        """
        sim = self._sim
        down = bool(flag)
        if self._paused:
            sim.schedule_event(_CHURN_RETRY, self._kind_node, machine, flag)
            return
        up = self._machine_up
        if up[machine] == down:  # a genuine state flip
            up[machine] = not down
            self.node_events.append(
                (
                    sim._now,
                    self._platform.machine_names[machine],
                    "down" if down else "up",
                )
            )
            if down:
                for op in self._operators.values():
                    for executor in op.executors:
                        if executor.busy and executor.machine == machine:
                            executor.dead = True
            redeliveries = []
            for name, op in self._operators.items():
                if machine not in self._patterns[name]:
                    continue
                pattern = self._alive_pattern(name)
                displaced = op.resize(len(pattern))
                self._pin_executors(op, pattern)
                if displaced:
                    redeliveries.append((op, displaced))
            self._refresh_transfers()
            for op, displaced in redeliveries:
                for payload in displaced:
                    self._deliver(op, payload, None)
            if self._bp:
                self._bp_sync()
        delay = self._platform.failure.next_delay(
            machine, down, self._churn_rng
        )
        if delay is not None:
            sim.schedule_event(
                delay, self._kind_node, machine, 0 if down else 1
            )

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _on_tree_complete(self, root_id: int, arrival: float, sojourn: float) -> None:
        self._measurer.record_sojourn(sojourn)
        self._completion_times.append(self._sim.now)
        self._completion_sojourns.append(sojourn)
        if self._cl is not None:
            # Feed the admission controller's latency EWMA, then give
            # the client its slot back (possibly issuing immediately).
            alpha = self._cl_alpha
            ewma = self._latency_ewma
            self._latency_ewma = (
                sojourn
                if ewma is None
                else alpha * sojourn + (1.0 - alpha) * ewma
            )
            self._cl_release(root_id)

    def __repr__(self) -> str:
        return (
            f"TopologyRuntime({self._topology.name!r},"
            f" allocation={self._allocation.spec()},"
            f" t={self._sim.now:.3f})"
        )
