"""Rebalance cost models: Storm default vs. the authors' improved version.

Paper Appendix C: Storm's built-in re-balancing "suspends the entire
system (e.g., by shutting down all the Java Virtual Machines), modifies
the executor to operator mappings and routing, and finally resumes" —
taking 1-2 minutes.  The authors' improved mechanism re-uses JVMs and
takes "a few seconds".  Additionally (Fig. 10) the disruption is larger
when *new machines must boot* (ExpA's 4777 ms spike) than when machines
are only removed (ExpB's 1113 ms spike).

:class:`RebalanceCostModel` turns a rebalance request into a *pause
duration* during which bolts stop processing while spouts keep emitting
(tuples accumulate in queues — exactly the latency spike the paper
plots in the 14th minute).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SimulationError


class RebalanceStyle(enum.Enum):
    """Which rebalancing mechanism the CSP layer uses."""

    STORM_DEFAULT = "storm_default"  # stop-the-world JVM restart
    IMPROVED = "improved"  # the authors' JVM-reuse version
    INSTANT = "instant"  # idealised zero-cost (ablation)


@dataclass(frozen=True)
class RebalanceCostModel:
    """Computes topology pause durations for rebalance operations.

    Durations are in simulation seconds.  Defaults follow the paper:
    Storm's default takes 1-2 minutes (we use 90 s); the improved
    version takes "a few seconds" (we use 3 s); booting extra machines
    adds ``machine_boot_penalty`` per machine on top (ExpA); removing
    machines adds the smaller ``machine_stop_penalty`` (ExpB).
    """

    style: RebalanceStyle = RebalanceStyle.IMPROVED
    default_pause: float = 90.0
    improved_pause: float = 3.0
    machine_boot_penalty: float = 4.0
    machine_stop_penalty: float = 0.5
    #: Extra pause per executor moved on a *stateful* operator — the
    #: operator-state migration cost the paper defers to future work
    #: (its reference [42], "Optimal operator state migration for
    #: elastic data stream processing").
    state_migration_per_executor: float = 0.5

    def __post_init__(self):
        for name in (
            "default_pause",
            "improved_pause",
            "machine_boot_penalty",
            "machine_stop_penalty",
            "state_migration_per_executor",
        ):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be >= 0")

    def pause_duration(
        self,
        *,
        machines_added: int = 0,
        machines_removed: int = 0,
        stateful_executors_moved: int = 0,
    ) -> float:
        """Topology pause for a rebalance with the given machine changes.

        ``stateful_executors_moved`` counts executor-count deltas on
        stateful operators (their partitions must be re-hashed and the
        state records shipped; stateless operators move for free beyond
        the base pause).
        """
        if machines_added < 0 or machines_removed < 0:
            raise SimulationError("machine deltas must be >= 0")
        if stateful_executors_moved < 0:
            raise SimulationError("stateful_executors_moved must be >= 0")
        if self.style is RebalanceStyle.INSTANT:
            return 0.0
        base = (
            self.default_pause
            if self.style is RebalanceStyle.STORM_DEFAULT
            else self.improved_pause
        )
        return (
            base
            + machines_added * self.machine_boot_penalty
            + machines_removed * self.machine_stop_penalty
            + stateful_executors_moved * self.state_migration_per_executor
        )

    def __repr__(self) -> str:
        return f"RebalanceCostModel(style={self.style.value})"
