"""Discrete-event simulation of a Storm-like CSP layer.

The paper evaluates DRS on a 6-machine Storm cluster.  Without that
hardware we substitute a discrete-event simulator that reproduces the
behaviours DRS interacts with:

- machines hosting a bounded number of executor slots
  (:mod:`repro.sim.cluster`);
- spouts emitting external tuples from arrival processes, bolts pulling
  from queues and emitting downstream with per-edge fan-out, routed by
  Storm-style groupings (:mod:`repro.sim.runtime`);
- acker-style tuple-tree completion for sojourn measurement;
- rebalancing with configurable cost models — Storm's stop-the-world
  default vs. the authors' improved JVM-reuse version
  (:mod:`repro.sim.rebalancing`);
- machine provisioning with boot/stop delays
  (:mod:`repro.sim.negotiator`).

The DRS layer (measurer, optimiser, scheduler) runs unmodified on top:
it only consumes measured rates and sojourn times, exactly as it would
on a real cluster.
"""

from repro.sim.engine import Simulator, EventHandle
from repro.sim.cluster import Machine, Cluster
from repro.sim.rebalancing import RebalanceCostModel, RebalanceStyle
from repro.sim.negotiator import SimResourceNegotiator
from repro.sim.runtime import TopologyRuntime, RuntimeOptions, RunStats
from repro.sim.array_runtime import array_capable, run_array

__all__ = [
    "Simulator",
    "array_capable",
    "run_array",
    "EventHandle",
    "Machine",
    "Cluster",
    "RebalanceCostModel",
    "RebalanceStyle",
    "SimResourceNegotiator",
    "TopologyRuntime",
    "RuntimeOptions",
    "RunStats",
]
