"""Cluster model: machines with bounded executor slots.

Mirrors the paper's testbed accounting: each machine hosts at most
``slots`` executors ("we configured each of these 5 machines so that one
machine can host at most 5 executors"), some of which are reserved for
spouts and the DRS executor.  The cluster answers placement questions
(how many bolt executors fit) and tracks which machines are up, booting
or stopping — the state the negotiator manipulates.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.exceptions import NegotiationError, SimulationError


class MachineState(enum.Enum):
    """Lifecycle of a simulated machine."""

    BOOTING = "booting"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"


class Machine:
    """One physical (or virtual) machine with a fixed slot count."""

    def __init__(self, machine_id: int, slots: int):
        if slots < 1:
            raise SimulationError(f"machine needs >= 1 slot, got {slots}")
        self._id = machine_id
        self._slots = slots
        self._state = MachineState.BOOTING
        self._boot_completed_at: Optional[float] = None

    @property
    def machine_id(self) -> int:
        return self._id

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def state(self) -> MachineState:
        return self._state

    @property
    def is_running(self) -> bool:
        return self._state is MachineState.RUNNING

    def mark_running(self, now: float) -> None:
        if self._state is not MachineState.BOOTING:
            raise SimulationError(
                f"machine {self._id} cannot finish boot from {self._state}"
            )
        self._state = MachineState.RUNNING
        self._boot_completed_at = now

    def mark_stopping(self) -> None:
        if self._state is not MachineState.RUNNING:
            raise SimulationError(
                f"machine {self._id} cannot stop from {self._state}"
            )
        self._state = MachineState.STOPPING

    def mark_stopped(self) -> None:
        if self._state is not MachineState.STOPPING:
            raise SimulationError(
                f"machine {self._id} cannot finish stopping from {self._state}"
            )
        self._state = MachineState.STOPPED

    def __repr__(self) -> str:
        return f"Machine(id={self._id}, slots={self._slots}, {self._state.value})"


class Cluster:
    """The pool of machines hosting the topology's executors."""

    def __init__(self, slots_per_machine: int = 5, reserved_executors: int = 3):
        if slots_per_machine < 1:
            raise SimulationError("slots_per_machine must be >= 1")
        if reserved_executors < 0:
            raise SimulationError("reserved_executors must be >= 0")
        self._slots_per_machine = slots_per_machine
        self._reserved = reserved_executors
        self._machines: Dict[int, Machine] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def add_machine(self) -> Machine:
        """Create a machine in BOOTING state; returns it."""
        machine = Machine(self._next_id, self._slots_per_machine)
        self._machines[self._next_id] = machine
        self._next_id += 1
        return machine

    def machine(self, machine_id: int) -> Machine:
        try:
            return self._machines[machine_id]
        except KeyError:
            raise NegotiationError(f"unknown machine {machine_id}") from None

    def remove_stopped(self) -> int:
        """Garbage-collect fully stopped machines; returns count removed."""
        stopped = [
            mid
            for mid, machine in self._machines.items()
            if machine.state is MachineState.STOPPED
        ]
        for mid in stopped:
            del self._machines[mid]
        return len(stopped)

    # ------------------------------------------------------------------
    # capacity accounting
    # ------------------------------------------------------------------
    @property
    def slots_per_machine(self) -> int:
        return self._slots_per_machine

    @property
    def reserved_executors(self) -> int:
        return self._reserved

    @property
    def running_machines(self) -> List[Machine]:
        return [m for m in self._machines.values() if m.is_running]

    @property
    def num_running(self) -> int:
        return len(self.running_machines)

    @property
    def num_total(self) -> int:
        return len(self._machines)

    @property
    def bolt_capacity(self) -> int:
        """Bolt-executor slots on running machines (the runtime ``Kmax``)."""
        total = sum(m.slots for m in self.running_machines)
        return max(0, total - self._reserved)

    def can_host(self, bolt_executors: int) -> bool:
        """True iff the running machines can host this many bolt executors."""
        return bolt_executors <= self.bolt_capacity

    def placement(self, bolt_executors: int) -> Dict[int, int]:
        """Round-robin placement: ``{machine_id: executor_count}``.

        Reserved executors are packed on the first machines, matching
        the paper's dedicated nimbus/spout placement; bolts fill the
        remaining slots in machine order.
        """
        if not self.can_host(bolt_executors):
            raise NegotiationError(
                f"cannot host {bolt_executors} bolt executors on"
                f" {self.num_running} running machines"
                f" (capacity {self.bolt_capacity})"
            )
        result: Dict[int, int] = {}
        remaining_reserved = self._reserved
        remaining_bolts = bolt_executors
        for machine in sorted(self.running_machines, key=lambda m: m.machine_id):
            free = machine.slots
            take_reserved = min(free, remaining_reserved)
            remaining_reserved -= take_reserved
            free -= take_reserved
            take_bolts = min(free, remaining_bolts)
            remaining_bolts -= take_bolts
            if take_bolts > 0:
                result[machine.machine_id] = take_bolts
        return result

    def __repr__(self) -> str:
        return (
            f"Cluster(running={self.num_running}/{self.num_total},"
            f" bolt_capacity={self.bolt_capacity})"
        )
