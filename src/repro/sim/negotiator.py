"""Simulated resource negotiator (paper Appendix B, negotiator module).

The negotiator "works at an even lower layer than the resource manager
of the CSP layer.  It negotiates with the physical machines or the
cloud service provider ... e.g. launching/stopping the resource-manager
daemon process."  Here it manipulates the simulated
:class:`~repro.sim.cluster.Cluster`: booting machines takes
``machine_boot_time`` simulation seconds and stopping takes
``machine_stop_time`` — the asymmetry behind ExpA vs ExpB in Fig. 10.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import ClusterSpec
from repro.exceptions import NegotiationError
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator


class SimResourceNegotiator:
    """Adds/removes simulated machines with realistic delays.

    ``scale_to(n, on_ready)`` drives the cluster toward ``n`` running
    machines and invokes ``on_ready`` once the target is reached (after
    boot delays for scale-out; immediately after stop initiation for
    scale-in, since removed capacity is gone at once).
    """

    def __init__(self, simulator: Simulator, cluster: Cluster, spec: ClusterSpec):
        self._sim = simulator
        self._cluster = cluster
        self._spec = spec
        self._in_progress = False

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def in_progress(self) -> bool:
        """True while a scaling operation is still completing."""
        return self._in_progress

    def bootstrap(self, machines: int) -> None:
        """Start the initial machine pool instantly (time zero setup)."""
        if self._cluster.num_total != 0:
            raise NegotiationError("bootstrap requires an empty cluster")
        for _ in range(machines):
            machine = self._cluster.add_machine()
            machine.mark_running(self._sim.now)

    def scale_to(
        self,
        target_machines: int,
        on_ready: Optional[Callable[[], None]] = None,
    ) -> None:
        """Drive the running-machine count toward ``target_machines``.

        Raises :class:`NegotiationError` when the target violates the
        cluster spec bounds or another operation is in progress.
        """
        if self._in_progress:
            raise NegotiationError("another scaling operation is in progress")
        if not self._spec.min_machines <= target_machines <= self._spec.max_machines:
            raise NegotiationError(
                f"target {target_machines} outside"
                f" [{self._spec.min_machines}, {self._spec.max_machines}]"
            )
        current = self._cluster.num_running
        if target_machines == current:
            if on_ready is not None:
                on_ready()
            return
        if target_machines > current:
            self._scale_out(target_machines - current, on_ready)
        else:
            self._scale_in(current - target_machines, on_ready)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scale_out(self, count: int, on_ready: Optional[Callable[[], None]]) -> None:
        self._in_progress = True
        booting: List = [self._cluster.add_machine() for _ in range(count)]

        def finish() -> None:
            for machine in booting:
                machine.mark_running(self._sim.now)
            self._in_progress = False
            if on_ready is not None:
                on_ready()

        # Machines boot in parallel; readiness is gated on the slowest,
        # which with identical boot times is simply one boot interval.
        self._sim.schedule(self._spec.machine_boot_time, finish)

    def _scale_in(self, count: int, on_ready: Optional[Callable[[], None]]) -> None:
        self._in_progress = True
        running = sorted(
            self._cluster.running_machines,
            key=lambda m: m.machine_id,
            reverse=True,
        )
        victims = running[:count]
        for machine in victims:
            machine.mark_stopping()

        def finish() -> None:
            for machine in victims:
                machine.mark_stopped()
            self._cluster.remove_stopped()
            self._in_progress = False

        self._sim.schedule(self._spec.machine_stop_time, finish)
        # Capacity is considered released immediately: executors must have
        # been moved off before scale_in is called (the runtime rebalances
        # first, then shrinks the pool).
        if on_ready is not None:
            on_ready()

    def __repr__(self) -> str:
        return (
            f"SimResourceNegotiator(machines={self._cluster.num_running},"
            f" in_progress={self._in_progress})"
        )
