"""Array-backed fast path for homogeneous shared-queue topologies.

The object engine (:mod:`repro.sim.runtime`) dispatches one interpreter
frame per event.  For the common benchmark shape — feed-forward
topology, ``shared`` queue discipline, exponential/deterministic
arrivals and services, deterministic edge gains, no hop latency, no
queue limit, no controller — the whole run can instead be computed as a
*station sweep*: generate every spout arrival up front as a numpy
array, then push the tuple population through the operators in
topological order, vectorising the FCFS shared-queue recurrence per
station.  Queue waits, service totals and tuple-tree completions live
in preallocated arrays; no per-tuple Python objects exist at all.

Contract
--------
``run_array`` is *opt-in* (callers ask for it explicitly) and *gated*
(:func:`array_capable` names the first unsupported feature, and
``run_array`` raises on it).  Results are validated two ways in
``tests/test_array_runtime.py``:

- **statistically** against the object engine on the fidelity smoke
  shapes — mean and p95 sojourn within confidence intervals (the RNG
  transform is numpy's SIMD ``log``, so draws are equidistributed with
  the scalar path but not bit-identical);
- **exactly** (bit-identical counters and sojourns) on deterministic
  arrival/service cases, where both engines dispatch the same event
  order and no RNG is consumed.

The k-server recurrence: with ``C = cumsum(s)`` and one server,
``D[i] = C[i] + max_{j<=i}(arr[j] - C[j-1])`` — a vectorised
``np.maximum.accumulate``.  For ``k > 1`` servers a small heap of
server-free times walks the arrival order (O(n log k), still dozens of
times faster than per-event dispatch).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.randomness.arrival import DeterministicProcess, PoissonProcess
from repro.randomness.batched import _transplant_state
from repro.randomness.distributions import Deterministic, Exponential
from repro.sim.runtime import RunStats, RuntimeOptions
from repro.utils.rng import RngFactory


def array_capable(topology, options: RuntimeOptions) -> Optional[str]:
    """Return ``None`` when ``run_array`` supports this case, else the
    first unsupported feature (a human-readable reason)."""
    if options.queue_discipline != "shared":
        return f"queue_discipline={options.queue_discipline!r} (need 'shared')"
    if options.queue_limit is not None:
        return "queue_limit is set"
    if options.backpressure:
        return "backpressure needs the object engine's blocking semantics"
    if options.closed_loop is not None:
        return "closed-loop sources need the object engine's client states"
    if options.hop_latency != 0.0 or options.hop_latency_distribution is not None:
        return "hop latency is non-zero"
    if options.platform is not None:
        return "platform is set (links/speeds/churn need the object engine)"
    if options.arrival_model is not None:
        return "arrival_model is set"
    if options.arrival_rate_phases is not None:
        return "arrival_rate_phases is set"
    if topology.has_cycle():
        return "topology has a cycle (feedback loops need the object engine)"
    for name, spout in topology.spouts.items():
        if not isinstance(spout.arrivals, (PoissonProcess, DeterministicProcess)):
            return f"spout {name!r} arrivals {type(spout.arrivals).__name__}"
    for name in topology.operator_names:
        service = topology.operator(name).service_time
        if type(service) not in (Exponential, Deterministic):
            return f"operator {name!r} service {type(service).__name__}"
    for edge in topology.edges:
        if edge.fanout is not None:
            return f"edge {edge.source}->{edge.target} has a fanout sampler"
    return None


def _numpy_stream(factory: RngFactory, *names: str) -> np.random.RandomState:
    """A numpy ``RandomState`` positioned on the factory's named stream.

    Transplanting the MT19937 state (rather than reseeding) keeps the
    substream *identity* shared with the object engine: the array path
    consumes the same per-consumer uniforms, only through a vectorised
    transform.
    """
    state, _, _ = _transplant_state(factory.stream(*names))
    return state


def _arrival_times(spout, rs: np.random.RandomState, duration: float):
    """All arrival times of one spout in ``(0, duration]``."""
    process = spout.arrivals
    if isinstance(process, DeterministicProcess):
        gap = 1.0 / process.mean_rate
        n = int(duration / gap) + 2
        times = np.cumsum(np.full(n, gap))
        return times[times <= duration]
    rate = process.rate
    expected = rate * duration
    chunk = int(expected + 6.0 * math.sqrt(expected + 1.0)) + 16
    blocks: List[np.ndarray] = []
    total = 0.0
    while True:
        gaps = np.log1p(-rs.random_sample(chunk))
        gaps /= -rate
        blocks.append(gaps)
        total += float(gaps.sum())
        if total > duration:
            break
        chunk = max(chunk // 4, 1024)
    times = np.cumsum(np.concatenate(blocks))
    return times[times <= duration]


def _replicate(times, roots, base: int, frac: float, rs) -> Tuple:
    """Per-edge gain: each tuple emits ``base`` copies plus a Bernoulli
    ``frac`` extra — the array form of the object engine's gain split."""
    n = len(times)
    if n == 0 or (base == 0 and frac == 0.0):
        return None
    if frac > 0.0:
        counts = base + (rs.random_sample(n) < frac)
        return np.repeat(times, counts), np.repeat(roots, counts)
    if base == 1:
        return times, roots
    return np.repeat(times, base), np.repeat(roots, base)


def _serve_fcfs(arrivals, services, k: int):
    """Start times of an FCFS shared queue with ``k`` servers.

    ``arrivals`` must be sorted.  Returns ``starts`` (the departure is
    ``starts + services``).
    """
    if k == 1:
        cum = np.cumsum(services)
        shifted = np.empty_like(cum)
        shifted[0] = 0.0
        shifted[1:] = cum[:-1]
        # D[i] = C[i] + max_{j<=i}(arr[j] - C[j-1]); start = D - s.
        return shifted + np.maximum.accumulate(arrivals - shifted)
    starts = np.empty_like(arrivals)
    free = [0.0] * k
    heapq.heapify(free)
    heappushpop = heapq.heappushpop
    arr_list = arrivals.tolist()
    svc_list = services.tolist()
    for i, at in enumerate(arr_list):
        t0 = free[0]
        start = at if at >= t0 else t0
        starts[i] = start
        heappushpop(free, start + svc_list[i])
    return starts


def run_array(
    topology,
    allocation,
    options: Optional[RuntimeOptions] = None,
    *,
    duration: float,
    warmup: float = 0.0,
) -> RunStats:
    """Run the topology on the array fast path; returns :class:`RunStats`.

    Raises :class:`SimulationError` when the case is outside the gate —
    call :func:`array_capable` first to branch gracefully.
    """
    options = options or RuntimeOptions(queue_discipline="shared")
    reason = array_capable(topology, options)
    if reason is not None:
        raise SimulationError(f"array runtime does not support: {reason}")
    if warmup < 0 or warmup > duration:
        raise SimulationError(f"warmup {warmup} outside [0, {duration}]")

    factory = RngFactory(options.seed)
    fanout_rs = _numpy_stream(factory, "fanout")

    # -- spout arrivals (the tuple-tree roots) -------------------------
    spout_times: Dict[str, np.ndarray] = {}
    root_offset: Dict[str, int] = {}
    n_roots = 0
    for name, spout in topology.spouts.items():
        times = _arrival_times(spout, _numpy_stream(factory, "spout", name), duration)
        spout_times[name] = times
        root_offset[name] = n_roots
        n_roots += len(times)

    root_arrival = np.empty(n_roots)
    for name, times in spout_times.items():
        offset = root_offset[name]
        root_arrival[offset : offset + len(times)] = times
    completion = root_arrival.copy()  # roots with no surviving copies
    incomplete = np.zeros(n_roots, dtype=bool)

    # -- seed station inputs from the spouts ---------------------------
    inbox: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {
        name: [] for name in topology.operator_names
    }
    for name, times in spout_times.items():
        offset = root_offset[name]
        roots = np.arange(offset, offset + len(times))
        for edge in topology.out_edges(name):
            gain = edge.gain
            base = int(gain)
            emitted = _replicate(times, roots, base, gain - base, fanout_rs)
            if emitted is not None:
                inbox[edge.target].append(emitted)

    # -- topological station order (operators only) --------------------
    order: List[str] = []
    indegree = {name: 0 for name in topology.operator_names}
    for edge in topology.edges:
        if edge.source in indegree:
            indegree[edge.target] += 1
    ready = [name for name in topology.operator_names if indegree[name] == 0]
    while ready:
        name = ready.pop()
        order.append(name)
        for edge in topology.out_edges(name):
            indegree[edge.target] -= 1
            if indegree[edge.target] == 0:
                ready.append(edge.target)

    per_processed: Dict[str, int] = {}
    per_wait: Dict[str, Optional[float]] = {}
    per_service: Dict[str, Optional[float]] = {}

    # -- the sweep ------------------------------------------------------
    for name in order:
        chunks = inbox[name]
        inbox[name] = []  # free as we go
        if chunks:
            times = np.concatenate([c[0] for c in chunks])
            roots = np.concatenate([c[1] for c in chunks])
            sorter = np.argsort(times, kind="stable")
            times = times[sorter]
            roots = roots[sorter]
        else:
            times = np.empty(0)
            roots = np.empty(0, dtype=np.intp)
        n = len(times)
        if n == 0:
            per_processed[name] = 0
            per_wait[name] = None
            per_service[name] = None
            continue
        service_dist = topology.operator(name).service_time
        if type(service_dist) is Exponential:
            rs = _numpy_stream(factory, "service", name)
            services = np.log1p(-rs.random_sample(n))
            services /= -service_dist.rate
        else:  # Deterministic (the gate admits nothing else)
            services = np.full(n, service_dist.mean)
        starts = _serve_fcfs(times, services, allocation[name])
        departures = starts + services
        started = starts <= duration
        processed = departures <= duration
        per_processed[name] = int(processed.sum())
        if started.any():
            per_wait[name] = float((starts[started] - times[started]).mean())
            per_service[name] = float(services[started].mean())
        else:
            per_wait[name] = None
            per_service[name] = None
        # Tuples still queued or in service at the horizon leave their
        # trees unfinished; processed tuples push the tree's completion
        # time forward and emit downstream copies.
        incomplete[roots[~processed]] = True
        dep_done = departures[processed]
        roots_done = roots[processed]
        np.maximum.at(completion, roots_done, dep_done)
        for edge in topology.out_edges(name):
            gain = edge.gain
            base = int(gain)
            emitted = _replicate(dep_done, roots_done, base, gain - base, fanout_rs)
            if emitted is not None:
                inbox[edge.target].append(emitted)

    # -- tree statistics ------------------------------------------------
    done = ~incomplete
    completed_trees = int(done.sum())
    completion_times = completion[done]
    sojourns = completion_times - root_arrival[done]
    window = sojourns[completion_times >= warmup] if warmup > 0.0 else sojourns
    if len(window):
        mean = float(window.mean())
        std = float(window.std())  # population std, like Welford
        index = max(0, int(math.ceil(0.95 * len(window))) - 1)
        p95 = float(np.partition(window, index)[index])
    else:
        mean = std = p95 = None
    return RunStats(
        duration=duration,
        external_tuples=n_roots,
        completed_trees=completed_trees,
        dropped_tuples=0,
        dropped_trees=0,
        mean_sojourn=mean,
        std_sojourn=std,
        p95_sojourn=p95,
        per_operator_processed=per_processed,
        per_operator_wait=per_wait,
        per_operator_service=per_service,
        rebalances=0,
    )
