"""Work-stealing multi-process shard executor for campaigns.

The plain :class:`~repro.campaigns.runner.CampaignRunner` farms jobs
from a single coordinator process.  The sharded runner instead gives
every worker process the *full* job list and lets workers race: each
job is claimed exactly once through an exclusive-create file under
``<store>/claims/`` keyed by the job's content address
(``<spec_hash>_<seed>``), so a worker that stalls or dies simply loses
the race for the jobs it never claimed — the definition of work
stealing without a queue server.  Workers start at staggered offsets so
they collide rarely in the common case.

Results are appended to one
:class:`~repro.campaigns.segstore.SegmentedResultStore` segment per
worker (no write contention), and the coordinator re-indexes the
segments when the workers finish.

Resumability: correctness never depends on the claim files — they are
wiped at every coordinator start and only order the *current* run.  A
killed run leaves its completed records in the segments; the next run
re-plans against the store and computes only what is missing, so a
campaign interrupted after all cells landed resumes with 0 recomputed.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.campaigns.hybrid import (
    AnalyticCellEvaluator,
    record_usable,
    resolve_evaluator,
)
from repro.campaigns.runner import CampaignResult, CampaignRunner
from repro.campaigns.segstore import SegmentedResultStore
from repro.campaigns.spec import CampaignSpec
from repro.exceptions import ConfigurationError
from repro.scenarios.runner import replication_seed, run_replication
from repro.scenarios.spec import ScenarioSpec

#: Claim files live here, under the store root (shared by all workers).
CLAIMS_DIR = "claims"

#: A job shipped to workers: everything needed to run and persist one
#: replication without the coordinator (specs travel as plain dicts —
#: ScenarioSpec is picklable, but dicts keep the payload inspectable).
_WireJob = Tuple[str, int, dict, int, str]  # hash, seed, spec, index, cell


def _claim(claims: Path, spec_hash: str, seed: int) -> bool:
    """Atomically claim one job; False when another worker owns it."""
    path = claims / f"{spec_hash}_{seed}"
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.write(fd, str(os.getpid()).encode())
    os.close(fd)
    return True


def _shard_worker(
    store_root: str,
    worker_id: int,
    total_workers: int,
    campaign_name: str,
    jobs: Sequence[_WireJob],
) -> int:
    """One shard: race the full job list, claim-run-persist each win."""
    claims = Path(store_root) / CLAIMS_DIR
    executed = 0
    with SegmentedResultStore(
        store_root, segment=f"shard-{worker_id:02d}"
    ) as store:
        n = len(jobs)
        # Staggered start: worker i begins at its own stripe and wraps
        # through everyone else's — collision-free while all workers are
        # healthy, full coverage (stealing) when any worker stalls.
        offset = 0 if n == 0 else (worker_id * n) // total_workers
        for position in range(n):
            spec_hash, seed, spec_dict, index, cell = jobs[
                (offset + position) % n
            ]
            record = store.load_record(spec_hash, seed)
            if record is not None and record_usable(record, "simulated"):
                continue  # landed in a segment before this run
            # (An analytic-path record does not satisfy a simulated-path
            # job: the coordinator only ships jobs it decided must
            # simulate, so a stale analytic record is recomputed.)
            if not _claim(claims, spec_hash, seed):
                continue  # another worker owns it
            spec = ScenarioSpec.from_dict(spec_dict)
            result = run_replication(spec, index)
            store.put(
                spec,
                spec_hash,
                seed,
                result,
                campaign=campaign_name,
                cell=cell,
            )
            executed += 1
    return executed


class ShardedCampaignRunner:
    """Runs a campaign across ``shards`` claim-racing worker processes.

    Requires a :class:`SegmentedResultStore` (or a path to create one):
    per-worker segments are what make lock-free parallel persistence
    safe.  The merge/summary step is delegated to the plain
    :class:`CampaignRunner` against the refreshed store, so sharded and
    unsharded runs produce identical :class:`CampaignResult` payloads.
    """

    def __init__(
        self,
        store: SegmentedResultStore,
        *,
        shards: int = 2,
        evaluator: Optional[AnalyticCellEvaluator] = None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if not isinstance(store, SegmentedResultStore):
            raise ConfigurationError(
                "sharded execution needs a SegmentedResultStore"
            )
        self._store = store
        self._shards = shards
        self._evaluator = evaluator

    def run(self, campaign: CampaignSpec) -> CampaignResult:
        store = self._store
        store.refresh()
        cells = campaign.expand()
        if not cells:
            raise ConfigurationError(
                f"campaign {campaign.name!r} expands to no cells"
            )
        # Claims only order the current run; stale ones from a killed
        # run must not mask unfinished work.
        claims = store.root / CLAIMS_DIR
        claims.mkdir(parents=True, exist_ok=True)
        for path in claims.iterdir():
            path.unlink()

        # Path decisions happen here, in the coordinator: analytic cells
        # are answered inline into the coordinator's own segment before
        # any job is shipped, so shard workers only ever see
        # out-of-envelope (simulated-path) work.
        evaluator = resolve_evaluator(campaign.evaluation, self._evaluator)
        jobs: List[_WireJob] = []
        seen = set()
        analytic_executed = 0
        for cell in cells:
            if cell.spec.kind != "simulation":
                continue  # overhead cells are uncacheable; merge runs them
            spec_hash = cell.spec_hash
            spec_dict = cell.spec.to_dict()
            decision = (
                evaluator.decide(cell.spec) if evaluator is not None else None
            )
            if (
                campaign.evaluation == "analytic"
                and decision is not None
                and not decision.analytic_capable
            ):
                raise ConfigurationError(
                    f"evaluation 'analytic': cell {cell.label!r} cannot be"
                    f" answered analytically ({decision.reason})"
                )
            path = decision.path if decision is not None else "simulated"
            for index in range(cell.spec.replications):
                seed = replication_seed(cell.spec.seed, index)
                if (spec_hash, seed) in seen:
                    continue
                seen.add((spec_hash, seed))
                record = store.load_record(spec_hash, seed)
                if record is not None and record_usable(record, path):
                    continue
                if path == "analytic":
                    result = evaluator.evaluate(cell.spec, index)
                    store.put(
                        cell.spec,
                        spec_hash,
                        seed,
                        result,
                        campaign=campaign.name,
                        cell=cell.label,
                        path="analytic",
                        provenance=evaluator.provenance(decision),
                    )
                    analytic_executed += 1
                    continue
                jobs.append((spec_hash, seed, spec_dict, index, cell.label))

        executed = 0
        if jobs:
            workers = min(self._shards, len(jobs))
            if workers == 1:
                executed = _shard_worker(
                    str(store.root), 0, 1, campaign.name, jobs
                )
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            _shard_worker,
                            str(store.root),
                            worker_id,
                            workers,
                            campaign.name,
                            jobs,
                        )
                        for worker_id in range(workers)
                    ]
                    executed = sum(f.result() for f in futures)
            store.refresh()

        # Merge through the plain runner: every simulation job is now in
        # the store, so it loads instead of recomputing (its `computed`
        # counts only uncacheable overhead cells, its `reused` every
        # simulation job).  Restate the split so jobs executed by this
        # run's shards — and analytic answers produced above — count as
        # computed, not reused.
        merged = CampaignRunner(store, evaluator=evaluator).run(campaign)
        fresh = executed + analytic_executed
        return dataclasses.replace(
            merged,
            computed=merged.computed + fresh,
            reused=merged.reused - fresh,
            analytic=merged.analytic + analytic_executed,
        )
