"""Declarative campaigns: parameter sweeps over the scenario engine.

A *campaign* is a grid of scenarios: a base :class:`ScenarioSpec`
mapping plus ordered axes whose values patch spec fields.  Expansion is
a cartesian product, deterministic in axis order; every grid cell is a
full :class:`~repro.scenarios.spec.ScenarioSpec` the scenario engine
already knows how to execute.  Campaign results live in a
content-addressed on-disk store keyed by ``(spec hash, seed)``, so an
interrupted or re-run campaign skips every replication it has already
completed, and an incremental aggregator folds per-replication metrics
into grid-cell summaries without holding full results in memory.
"""

from repro.campaigns.aggregate import CampaignAggregator, CellAggregate
from repro.campaigns.runner import (
    CampaignCellResult,
    CampaignPlan,
    CampaignResult,
    CampaignRunner,
)
from repro.campaigns.segstore import SegmentedResultStore, compact_store
from repro.campaigns.shard import ShardedCampaignRunner
from repro.campaigns.spec import (
    AxisPoint,
    CampaignAxis,
    CampaignCell,
    CampaignSpec,
    scenario_hash,
)
from repro.campaigns.store import ResultStore

__all__ = [
    "AxisPoint",
    "CampaignAggregator",
    "CampaignAxis",
    "CampaignCell",
    "CampaignCellResult",
    "CampaignPlan",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CellAggregate",
    "ResultStore",
    "SegmentedResultStore",
    "ShardedCampaignRunner",
    "compact_store",
    "scenario_hash",
]
