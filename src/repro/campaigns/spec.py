"""Campaign descriptions: a base scenario plus axes of patches.

A :class:`CampaignSpec` is the declarative form of "run this scenario
for every combination of these parameters".  Each axis contributes one
dimension to the grid; its values are *patches* against the base
scenario mapping — either scalars applied to the axis' ``field`` (a
dotted path such as ``workload_params.total_cpu``) or explicit
multi-field patches for coordinated changes (a policy matrix entry that
sets ``policy`` *and* ``policy_params``, say).  Expansion is the
cartesian product in axis order (rightmost axis fastest, exactly like
nested for-loops), producing one named :class:`CampaignCell` per
combination::

    {
      "name": "rate-sweep",
      "base": {"workload": "synthetic", "policy": "none",
               "initial_allocation": "10:10:10", "duration": 120.0,
               "replications": 4, "seed": 17},
      "axes": [
        {"name": "rate", "field": "workload_params.arrival_rate",
         "values": [10.0, 15.0, 20.0]},
        {"name": "seed", "field": "seed", "range": [7, 10]}
      ]
    }

Cell scenario names are ``<campaign>-<label>-<label>-...`` so a cell's
identity is readable in any report.  :func:`scenario_hash` gives the
content address used by the result store: the SHA-256 of the scenario's
canonical JSON *minus* its name and replication count — two fields that
label the work without changing what one replication computes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

#: Scenario fields excluded from the content address: they rename or
#: repeat the work, they do not change what one replication computes.
_HASH_EXCLUDED = ("name", "replications")

#: How a campaign's cells are answered (``CampaignSpec.evaluation``):
#: ``simulate`` runs every replication through the discrete-event
#: engine (the default — bit-identical to pre-hybrid behaviour);
#: ``hybrid`` answers cells inside the committed model-trust envelope
#: analytically and simulates the rest; ``analytic`` requires every
#: cell to be in-envelope and errors otherwise.  Mode descriptions for
#: reports live in :mod:`repro.campaigns.hybrid`.
EVALUATION_MODES = ("simulate", "hybrid", "analytic")


def _normalize_numbers(value: Any) -> Any:
    """Collapse JSON's int/float spelling split (``60`` vs ``60.0``).

    Integral floats become ints before hashing, so a spec written with
    ``"duration": 60`` and one with ``"duration": 60.0`` — the same
    simulation — share a content address.  Ints are left untouched
    (seeds may exceed float precision).
    """
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)
    if isinstance(value, dict):
        return {k: _normalize_numbers(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize_numbers(v) for v in value]
    return value


def scenario_hash(spec: ScenarioSpec) -> str:
    """Content address of one scenario's simulation inputs.

    Two specs that differ only in ``name`` or ``replications`` hash
    identically, so re-labelled campaigns and grown replication counts
    reuse every result already in a store.  Numeric fields are
    normalized (:func:`_normalize_numbers`) so equivalent int/float
    spellings address the same results.

    >>> from repro.scenarios.spec import ScenarioSpec
    >>> a = ScenarioSpec(name="a", workload="synthetic", policy="none",
    ...                  duration=60.0, replications=2)
    >>> b = ScenarioSpec(name="b", workload="synthetic", policy="none",
    ...                  duration=60, replications=5)
    >>> scenario_hash(a) == scenario_hash(b)    # same simulation inputs
    True
    """
    payload = spec.to_dict()
    for key in _HASH_EXCLUDED:
        payload.pop(key, None)
    canonical = json.dumps(
        _normalize_numbers(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def apply_patch(raw: Dict[str, Any], dotted: str, value: Any) -> None:
    """Set ``raw[a][b]... = value`` for a dotted path ``a.b....``

    Intermediate mappings are created (or shallow-copied, so shared
    base dicts are never mutated across cells).
    """
    parts = dotted.split(".")
    if not all(parts):
        raise ConfigurationError(f"invalid field path {dotted!r}")
    target = raw
    for part in parts[:-1]:
        nested = target.get(part)
        if nested is None:
            nested = {}
        elif isinstance(nested, Mapping):
            nested = dict(nested)
        else:
            raise ConfigurationError(
                f"field path {dotted!r} descends into non-mapping {part!r}"
            )
        target[part] = nested
        target = nested
    target[parts[-1]] = value


@dataclass(frozen=True)
class AxisPoint:
    """One value of an axis: a display label plus the fields it sets."""

    label: str
    patch: Tuple[Tuple[str, Any], ...]

    def __post_init__(self):
        if not self.label:
            raise ConfigurationError("axis point label must be non-empty")
        object.__setattr__(self, "patch", tuple(self.patch))

    def to_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "set": dict(self.patch)}


def _normalize_point(axis_name: str, field_path: Optional[str], raw: Any) -> AxisPoint:
    if isinstance(raw, AxisPoint):
        return raw
    if isinstance(raw, Mapping):
        unknown = set(raw) - {"label", "value", "set"}
        if unknown:
            raise ConfigurationError(
                f"axis {axis_name!r}: unknown point keys {sorted(unknown)}"
            )
        patch: Dict[str, Any] = {}
        if "set" in raw:
            if not isinstance(raw["set"], Mapping):
                raise ConfigurationError(
                    f"axis {axis_name!r}: point 'set' must be a mapping"
                )
            patch.update(raw["set"])
        if "value" in raw:
            if field_path is None:
                raise ConfigurationError(
                    f"axis {axis_name!r} has no 'field'; points must use 'set'"
                )
            patch[field_path] = raw["value"]
        if not patch:
            raise ConfigurationError(
                f"axis {axis_name!r}: point needs a 'value' or a 'set'"
            )
        label = raw.get("label")
        if label is None:
            if "value" in raw:
                label = str(raw["value"])
            elif field_path is not None and field_path in patch:
                label = str(patch[field_path])
            else:
                raise ConfigurationError(
                    f"axis {axis_name!r}: multi-field points need a 'label'"
                )
        return AxisPoint(label=str(label), patch=tuple(patch.items()))
    # Scalar shorthand: applies to the axis field, label is its repr.
    if field_path is None:
        raise ConfigurationError(
            f"axis {axis_name!r} has no 'field'; scalar values are ambiguous"
        )
    return AxisPoint(label=str(raw), patch=((field_path, raw),))


@dataclass(frozen=True)
class CampaignAxis:
    """One grid dimension: a name, an optional default field, values."""

    name: str
    values: Tuple[AxisPoint, ...]
    field: Optional[str] = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("axis name must be non-empty")
        points = tuple(
            _normalize_point(self.name, self.field, value)
            for value in self.values
        )
        if not points:
            raise ConfigurationError(f"axis {self.name!r} has no values")
        labels = [p.label for p in points]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"axis {self.name!r} has duplicate labels: {labels}"
            )
        object.__setattr__(self, "values", points)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "values": [p.to_dict() for p in self.values],
        }
        if self.field is not None:
            payload["field"] = self.field
        return payload

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CampaignAxis":
        unknown = set(raw) - {"name", "field", "values", "range"}
        if unknown:
            raise ConfigurationError(f"unknown axis keys: {sorted(unknown)}")
        if "name" not in raw:
            raise ConfigurationError("axis missing required key 'name'")
        values: Sequence[Any]
        if "range" in raw:
            if "values" in raw:
                raise ConfigurationError(
                    f"axis {raw['name']!r}: give 'values' or 'range', not both"
                )
            bounds = list(raw["range"])
            if len(bounds) not in (2, 3) or not all(
                isinstance(b, int) and not isinstance(b, bool) for b in bounds
            ):
                raise ConfigurationError(
                    f"axis {raw['name']!r}: 'range' must be [start, stop] or"
                    " [start, stop, step] with integers"
                )
            values = list(range(*bounds))
            if not values:
                raise ConfigurationError(
                    f"axis {raw['name']!r}: empty range {bounds}"
                )
        else:
            values = list(raw.get("values", ()))
        return cls(
            name=str(raw["name"]),
            field=raw.get("field"),
            values=tuple(values),
        )


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: its coordinates and the scenario it expands to."""

    index: int
    label: str
    coords: Tuple[Tuple[str, str], ...]
    spec: ScenarioSpec

    @property
    def coordinates(self) -> Dict[str, str]:
        """Axis name -> value label for this cell."""
        return dict(self.coords)

    @cached_property
    def spec_hash(self) -> str:
        # cached: the runner consults the hash several times per cell
        # (job planning, store keys, merge, reporting) and one hash is
        # a full canonical-JSON serialization.
        return scenario_hash(self.spec)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: base scenario fields plus grid axes.

    >>> campaign = CampaignSpec.from_json('''
    ... {"name": "sweep",
    ...  "base": {"workload": "synthetic", "policy": "none",
    ...           "initial_allocation": "10:10:10", "duration": 60.0,
    ...           "arrival_model": {"kind": "mmpp2", "burst_ratio": 2.0,
    ...                             "mean_burst": 5.0, "mean_gap": 15.0}},
    ...  "axes": [{"name": "burst", "field": "arrival_model.burst_ratio",
    ...            "values": [2.0, 8.0]},
    ...           {"name": "seed", "field": "seed", "range": [7, 9]}]}
    ... ''')
    >>> cells = campaign.expand()
    >>> [cell.label for cell in cells]      # last axis fastest
    ['2.0-7', '2.0-8', '8.0-7', '8.0-8']
    >>> cells[2].spec.arrival_model["burst_ratio"]
    8.0
    >>> campaign.total_replications()
    4
    """

    name: str
    base: Dict[str, Any]
    axes: Tuple[CampaignAxis, ...] = ()
    description: str = ""
    #: See :data:`EVALUATION_MODES`; ``simulate`` is the default and is
    #: omitted from serialized specs so pre-hybrid campaign JSON and
    #: round-trips stay byte-identical.
    evaluation: str = "simulate"

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("campaign name must be non-empty")
        if self.evaluation not in EVALUATION_MODES:
            raise ConfigurationError(
                f"unknown evaluation mode {self.evaluation!r}; expected"
                f" one of {EVALUATION_MODES}"
            )
        if not isinstance(self.base, Mapping):
            raise ConfigurationError("campaign base must be a mapping")
        if "name" in self.base:
            raise ConfigurationError(
                "campaign base must not set 'name'; cell names are derived"
            )
        axes = tuple(
            a if isinstance(a, CampaignAxis) else CampaignAxis.from_dict(a)
            for a in self.axes
        )
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names: {names}")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "base", dict(self.base))

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> Tuple[CampaignCell, ...]:
        """The full grid, in nested-loop order (last axis fastest).

        Expansion is deterministic: same spec, same cells, same order —
        the property that makes campaign runs resumable and their
        summaries reproducible.
        """
        cells: List[CampaignCell] = []
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            raw = dict(self.base)
            for point in combo:
                for dotted, value in point.patch:
                    apply_patch(raw, dotted, value)
            label = "-".join(point.label for point in combo)
            raw["name"] = f"{self.name}-{label}" if label else self.name
            try:
                spec = ScenarioSpec.from_dict(raw)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"campaign {self.name!r} cell {label or '<base>'!r}: {exc}"
                ) from None
            # Two cells may expand to identical simulation inputs (two
            # allocators recommending the same allocation, say).  That
            # is allowed: they share one content address, so the runner
            # computes the work once and both cells reuse it.
            cells.append(
                CampaignCell(
                    index=index,
                    label=label or self.name,
                    coords=tuple(
                        (axis.name, point.label)
                        for axis, point in zip(self.axes, combo)
                    ),
                    spec=spec,
                )
            )
        return tuple(cells)

    def total_replications(self) -> int:
        """Grid cells x per-cell replications (one store key each)."""
        return sum(cell.spec.replications for cell in self.expand())

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "base": dict(self.base),
            "axes": [a.to_dict() for a in self.axes],
        }
        if self.description:
            payload["description"] = self.description
        if self.evaluation != "simulate":
            payload["evaluation"] = self.evaluation
        return payload

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CampaignSpec":
        unknown = set(raw) - {"name", "base", "axes", "description", "evaluation"}
        if unknown:
            raise ConfigurationError(f"unknown campaign keys: {sorted(unknown)}")
        missing = {"name", "base"} - set(raw)
        if missing:
            raise ConfigurationError(
                f"campaign spec missing required keys: {sorted(missing)}"
            )
        return cls(
            name=str(raw["name"]),
            base=dict(raw["base"]),
            axes=tuple(raw.get("axes", ())),
            description=str(raw.get("description", "")),
            evaluation=str(raw.get("evaluation", "simulate")),
        )

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid campaign JSON: {exc}") from None
        if not isinstance(raw, Mapping):
            raise ConfigurationError("campaign JSON must be an object")
        return cls.from_dict(raw)
