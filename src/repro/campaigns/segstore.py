"""Compacted, append-only segment backend for the result store.

The classic :class:`~repro.campaigns.store.ResultStore` writes one JSON
file per replication — perfect for atomic single-writer resume, fatal
for million-replication sweeps (millions of tiny files).  The
:class:`SegmentedResultStore` keeps the same content-addressed keys but
appends whole records as NDJSON lines to a handful of *segment* files
(one per writer, so shard workers never contend on a file), with an
in-memory index built by scanning the segments on open.

Crash safety is inherited from the append-only discipline: a record
line is only indexed once it parses, so a write torn by a kill leaves a
trailing partial line that the next scan skips — exactly the classic
store's "parses or does not exist" contract, without a rename per
record.

The classic per-file layout stays fully readable: reads fall back to it
for any key the segments don't hold, and :func:`compact_store` converts
an existing classic store into segments in place (``repro
store-compact``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.campaigns.store import RECORD_VERSION, ResultStore
from repro.scenarios.spec import ScenarioSpec

#: Subdirectory of the store root holding segment files.
SEGMENT_DIR = "segments"


class SegmentedResultStore(ResultStore):
    """Result store writing to one append-only NDJSON segment.

    ``segment`` names this writer's segment file (shard workers pass
    their shard id); concurrent writers using distinct segment names
    never contend.  All segments — plus the classic per-file layout —
    are visible to reads.
    """

    def __init__(self, root: os.PathLike, *, segment: str = "main"):
        super().__init__(root)
        if not segment or any(c in segment for c in "/\\"):
            raise ValueError(f"malformed segment name {segment!r}")
        self._segment_dir = self.root / SEGMENT_DIR
        self._segment_dir.mkdir(parents=True, exist_ok=True)
        self._segment_path = self._segment_dir / f"{segment}.ndjson"
        self._handle = None
        self._index: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._known_specs: set = set()
        self.refresh()

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Re-scan every segment; returns the number of indexed records.

        Torn trailing lines (a writer killed mid-append) and malformed
        lines are skipped, matching the classic store's contract that a
        record either parses or does not exist.
        """
        index: Dict[Tuple[str, int], Dict[str, Any]] = {}
        for path in sorted(self._segment_dir.glob("*.ndjson")):
            try:
                text = path.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn or corrupt line
                if (
                    not isinstance(record, dict)
                    or record.get("version") != RECORD_VERSION
                    or "result" not in record
                ):
                    continue
                spec_hash = record.get("spec_hash")
                if record.get("kind") == "spec":
                    self._known_specs.add(spec_hash)
                    continue
                try:
                    seed = int(record["seed"])
                except (KeyError, TypeError, ValueError):
                    continue
                index[(spec_hash, seed)] = record
        self._index = index
        return len(index)

    @property
    def segment_path(self) -> Path:
        return self._segment_path

    def segment_record_count(self) -> int:
        """Records currently indexed from segments (all writers)."""
        return len(self._index)

    def mean_record_bytes(self) -> Optional[float]:
        """Observed NDJSON bytes per indexed record, or ``None`` when the
        segments hold no records yet.  Drives the layout-aware store
        size estimate in :meth:`CampaignRunner.plan`: packed NDJSON
        lines cost their actual bytes, not a filesystem block each."""
        if not self._index:
            return None
        total = 0
        for path in self._segment_dir.glob("*.ndjson"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        if total <= 0:
            return None
        return total / len(self._index)

    # ------------------------------------------------------------------
    # read side: segments first, classic layout as fallback
    # ------------------------------------------------------------------
    def load_record(
        self, spec_hash: str, seed: int
    ) -> Optional[Dict[str, Any]]:
        record = self._index.get((spec_hash, int(seed)))
        if record is not None:
            return record
        return super().load_record(spec_hash, seed)

    def iter_records(
        self, spec_hash: str
    ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        seeds = {
            seed for (digest, seed) in self._index if digest == spec_hash
        }
        bucket = self._bucket(spec_hash)
        if bucket.is_dir():
            seeds.update(
                int(p.stem)
                for p in bucket.glob("*.json")
                if p.stem.lstrip("-").isdigit()
            )
        for seed in sorted(seeds):
            record = self.load_record(spec_hash, seed)
            if record is not None:
                yield seed, record

    # ------------------------------------------------------------------
    # write side: append to this writer's segment
    # ------------------------------------------------------------------
    def put(
        self,
        spec: ScenarioSpec,
        spec_hash: str,
        seed: int,
        result,
        *,
        campaign: str = "",
        cell: str = "",
        path: str = "simulated",
        provenance=None,
    ) -> Path:
        record = self._record(
            spec_hash,
            seed,
            result,
            campaign=campaign,
            cell=cell,
            path=path,
            provenance=provenance,
        )
        if spec_hash not in self._known_specs:
            # Provenance travels inside the segment (the classic layout
            # uses a spec.json per bucket; segments must not reintroduce
            # one small file per scenario).
            self._append(
                {
                    "version": RECORD_VERSION,
                    "kind": "spec",
                    "spec_hash": spec_hash,
                    "result": None,
                    "spec": spec.to_dict(),
                }
            )
            self._known_specs.add(spec_hash)
        self._append(record)
        self._index[(spec_hash, int(seed))] = record
        return self._segment_path

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self._segment_path, "a")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SegmentedResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def compact_store(root: os.PathLike, *, segment: str = "compacted") -> dict:
    """Convert a classic per-file store into the segmented layout.

    Appends every parseable classic record to ``segments/<segment>.ndjson``
    (skipping keys the segments already hold), then deletes the absorbed
    per-replication files and their emptied buckets.  Returns counts:
    ``{"migrated": n, "skipped": n, "removed_files": n}``.
    """
    root = Path(root)
    store = SegmentedResultStore(root, segment=segment)
    migrated = skipped = removed = 0
    try:
        for bucket_parent in sorted(p for p in root.iterdir() if p.is_dir()):
            if bucket_parent.name == SEGMENT_DIR:
                continue
            for bucket in sorted(p for p in bucket_parent.iterdir() if p.is_dir()):
                spec_hash = bucket.name
                spec_dict = None
                provenance = bucket / "spec.json"
                if provenance.exists():
                    try:
                        spec_dict = json.loads(provenance.read_text())
                    except (OSError, json.JSONDecodeError):
                        spec_dict = None
                absorbed = []
                for path in sorted(bucket.glob("*.json")):
                    if not path.stem.lstrip("-").isdigit():
                        continue
                    seed = int(path.stem)
                    record = ResultStore.load_record(store, spec_hash, seed)
                    if record is None:
                        skipped += 1
                        continue
                    if (spec_hash, seed) not in store._index:
                        if spec_dict is not None and spec_hash not in store._known_specs:
                            store._append(
                                {
                                    "version": RECORD_VERSION,
                                    "kind": "spec",
                                    "spec_hash": spec_hash,
                                    "result": None,
                                    "spec": spec_dict,
                                }
                            )
                            store._known_specs.add(spec_hash)
                        store._append(record)
                        store._index[(spec_hash, seed)] = record
                        migrated += 1
                    absorbed.append(path)
                # The segment holds every absorbed record (flushed line
                # by line); only then do the originals go away.
                for path in absorbed:
                    path.unlink()
                    removed += 1
                leftover = [
                    p
                    for p in bucket.glob("*.json")
                    if p.stem.lstrip("-").isdigit()
                ]
                if not leftover and provenance.exists():
                    provenance.unlink()
                    removed += 1
                if not any(bucket.iterdir()):
                    bucket.rmdir()
            if not any(bucket_parent.iterdir()):
                bucket_parent.rmdir()
    finally:
        store.close()
    return {"migrated": migrated, "skipped": skipped, "removed_files": removed}
