"""Incremental campaign aggregation: fold records, never hold results.

A campaign over a large grid with many replications produces far more
data than fits comfortably in memory (each record carries a timeline
and an action log).  :class:`CellAggregate` therefore folds records one
at a time, retaining only scalars: the per-replication metrics needed
for exact means/percentiles and running totals — O(replications) floats
per cell, never a timeline or action log.  ``campaign-report`` streams
a store through a :class:`CampaignAggregator` and renders the result
without ever rehydrating a full :class:`ReplicationResult`.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Any, Dict, List, Mapping, Optional

from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.campaigns.store import ResultStore, record_path
from repro.scenarios.runner import replication_seed
from repro.utils.math_helpers import percentile

#: Two-sided 95% normal quantile for the confidence half-width.  With
#: the small replication counts typical of a cell this slightly
#: understates the Student-t interval; the report labels it "~95%".
_Z95 = 1.959963984540054


class CellAggregate:
    """Streaming statistics for one grid cell.

    ``fold`` accepts the ``result`` mapping of a stored record (or
    ``ReplicationResult.to_dict()`` output — same shape).  Only scalar
    metrics are retained, so memory is O(replications) floats per cell
    regardless of timeline or action-log size.
    """

    def __init__(self, label: str):
        self.label = label
        self.replications = 0
        #: Ascending per-replication means — the single source for the
        #: mean/std/percentile statistics below.
        self._means: List[float] = []
        self._p95s: List[float] = []
        self.total_external = 0
        self.total_completed = 0
        self.total_dropped = 0
        self.total_rebalances = 0
        #: Replications by evaluation path (records stored before the
        #: provenance tag existed count as ``simulated``).
        self.simulated = 0
        self.analytic = 0

    def fold(self, result: Mapping[str, Any], *, path: str = "simulated") -> None:
        self.replications += 1
        if path == "analytic":
            self.analytic += 1
        else:
            self.simulated += 1
        self.total_external += int(result.get("external_tuples", 0))
        self.total_completed += int(result.get("completed_trees", 0))
        self.total_dropped += int(result.get("dropped_tuples", 0))
        self.total_rebalances += int(result.get("rebalances", 0))
        mean = result.get("mean_sojourn")
        if mean is not None:
            insort(self._means, mean)
        p95 = result.get("p95_sojourn")
        if p95 is not None:
            insort(self._p95s, p95)

    # ------------------------------------------------------------------
    # derived statistics
    # ------------------------------------------------------------------
    @property
    def mean_sojourn(self) -> Optional[float]:
        """Mean of the replication means (each replication is one
        i.i.d. sample of the cell's mean sojourn time)."""
        if not self._means:
            return None
        return sum(self._means) / len(self._means)

    @property
    def std_between(self) -> Optional[float]:
        """Sample standard deviation across replication means."""
        count = len(self._means)
        if count == 0:
            return None
        if count == 1:
            return 0.0
        mean = self.mean_sojourn
        return math.sqrt(
            sum((m - mean) ** 2 for m in self._means) / (count - 1)
        )

    @property
    def ci95_half_width(self) -> Optional[float]:
        """~95% confidence half-width of the cell mean (normal approx)."""
        count = len(self._means)
        if count < 2:
            return None
        return _Z95 * self.std_between / math.sqrt(count)

    @property
    def p95_of_means(self) -> Optional[float]:
        """95th percentile across replication means (same interpolation
        as the simulator's metric collectors)."""
        return percentile(self._means, 95.0) if self._means else None

    @property
    def mean_p95_sojourn(self) -> Optional[float]:
        """Mean of the replications' own p95 sojourn times."""
        if not self._p95s:
            return None
        return sum(self._p95s) / len(self._p95s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "replications": self.replications,
            "mean_sojourn": self.mean_sojourn,
            "std_between": self.std_between,
            "ci95_half_width": self.ci95_half_width,
            "p95_of_means": self.p95_of_means,
            "mean_p95_sojourn": self.mean_p95_sojourn,
            "total_external": self.total_external,
            "total_completed": self.total_completed,
            "total_dropped": self.total_dropped,
            "total_rebalances": self.total_rebalances,
            "simulated": self.simulated,
            "analytic": self.analytic,
        }


class CampaignAggregator:
    """Folds a whole campaign, one cell aggregate per grid cell."""

    def __init__(self, campaign: CampaignSpec):
        self.campaign = campaign
        self.cells: Dict[str, CellAggregate] = {}
        self.missing: Dict[str, int] = {}

    def fold(
        self,
        cell_label: str,
        result: Mapping[str, Any],
        *,
        path: str = "simulated",
    ) -> None:
        aggregate = self.cells.get(cell_label)
        if aggregate is None:
            aggregate = self.cells[cell_label] = CellAggregate(cell_label)
        aggregate.fold(result, path=path)

    def rows(self) -> List[Dict[str, Any]]:
        ordered = []
        for label, aggregate in self.cells.items():
            row = aggregate.to_dict()
            row["missing"] = self.missing.get(label, 0)
            ordered.append(row)
        return ordered

    def to_dict(self) -> Dict[str, Any]:
        return {"campaign": self.campaign.name, "cells": self.rows()}


def aggregate_cell_from_store(
    store: ResultStore, cell: CampaignCell
) -> CellAggregate:
    """Fold exactly the replications ``cell`` expects from ``store``."""
    aggregate = CellAggregate(cell.label)
    spec_hash = cell.spec_hash
    for index in range(cell.spec.replications):
        record = store.load_record(
            spec_hash, replication_seed(cell.spec.seed, index)
        )
        if record is not None:
            aggregate.fold(record["result"], path=record_path(record))
    return aggregate


def aggregate_from_store(
    campaign: CampaignSpec, store: ResultStore
) -> CampaignAggregator:
    """One streaming pass over the store for every grid cell.

    Cells whose replications are partially (or wholly) missing still
    appear, with their ``missing`` count — a resumed campaign's report
    shows exactly how much work remains.  Non-simulation cells (kind
    ``"overhead"``) are skipped: their wall-clock timings are re-taken
    on every run and never stored.
    """
    aggregator = CampaignAggregator(campaign)
    for cell in campaign.expand():
        if cell.spec.kind != "simulation":
            continue
        aggregate = aggregate_cell_from_store(store, cell)
        aggregator.cells[cell.label] = aggregate
        aggregator.missing[cell.label] = (
            cell.spec.replications - aggregate.replications
        )
    return aggregator
