"""Model-guided hybrid campaign evaluation: the analytic fast path.

The fidelity audit (:mod:`repro.fidelity`) measures how far the
queueing model drifts from the discrete-event engine and commits the
result as a tolerance manifest.  This module closes the loop: where the
manifest *certifies* the model — feed-forward topology, supported
discipline, Poisson arrivals, an envelope tighter than the caller's
acceptable error — a campaign cell can be answered from the
Jackson/Allen-Cunneen stack in microseconds instead of simulated in
seconds.  Cells outside the envelope (loops, bursty arrivals, regimes
the manifest flags as drifty) still go through the simulator, so the
fast path never silently trades accuracy for speed.

The :class:`AnalyticCellEvaluator` makes that call per cell
(:meth:`~AnalyticCellEvaluator.decide`), produces the
:class:`~repro.scenarios.runner.ReplicationResult`-shaped answer
(:meth:`~AnalyticCellEvaluator.evaluate`), and stamps every admitted
cell with provenance — manifest version, the envelope rule that
admitted it, the margin in force — which the stores persist next to the
result (``path: "analytic"``).  A store is therefore auditable after
the fact: every record says whether it was simulated or model-derived,
and under which committed envelope.

Evaluator state is memoized across neighboring cells: predictions are
keyed by the (frozen, hashable) :class:`~repro.apps.fidelity.
FidelityWorkload`, and the per-operator Erlang recurrence is carried
forward along ascending server counts
(:meth:`~repro.queueing.erlang.ErlangMarginalEvaluator.advance_to`), so
a k-sweep costs one warm-up instead of one O(k) Erlang-B per cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.apps.fidelity import FidelityWorkload
from repro.exceptions import ConfigurationError
from repro.queueing.erlang import ErlangMarginalEvaluator
from repro.scenarios.runner import ReplicationResult, replication_seed
from repro.scenarios.spec import ScenarioSpec
from repro.campaigns.store import record_path

if TYPE_CHECKING:  # pragma: no cover
    from repro.fidelity.analytic import AnalyticPrediction
    from repro.fidelity.manifest import ToleranceManifest

# :mod:`repro.fidelity` is imported lazily inside the methods that need
# it: its package __init__ pulls the audit, which imports the campaign
# runner — which imports this module.  Deferring to call time breaks
# the cycle without restructuring either package.

#: Committed tolerance manifest the default evaluator trusts — the same
#: file the CI fidelity gate enforces, so the fast path and the audit
#: can never disagree about what "certified" means.
DEFAULT_MANIFEST_RELPATH = Path("tests/golden/fidelity_tolerances.json")

#: Widest per-metric relative model error the hybrid path accepts by
#: default.  A cell is answered analytically only when its manifest
#: envelope (times the safety margin) fits inside this.
DEFAULT_MAX_REL_ERROR = 0.10

#: Metrics whose envelopes gate admission.  Headline sojourn plus the
#: waiting component — the two quantities campaign reports aggregate.
GATED_METRICS = ("mean_sojourn", "waiting_time")

#: Topologies the product-form stack composes without feedback terms.
#: ``loop`` is deliberately absent: its visit-ratio expansion is exact
#: for means but the store's per-operator schema assumes feed-forward
#: visit counts, and the audit's loop envelope is measured against the
#: simulator's tree semantics — so loops always simulate.
FEED_FORWARD_TOPOLOGIES = ("single", "linear", "fanout")

#: Queue disciplines with committed envelopes.
SUPPORTED_DISCIPLINES = ("shared", "jsq")

#: One-line summaries for ``repro list-evaluation-modes``.
EVALUATION_MODE_DESCRIPTIONS: Dict[str, str] = {
    "simulate": (
        "discrete-event simulation for every cell"
        " (default; bit-identical to previous releases)"
    ),
    "hybrid": (
        "analytic fast path for cells the tolerance manifest certifies,"
        " simulation for everything outside the envelope"
    ),
    "analytic": (
        "analytic answers only; fails loudly on the first cell the"
        " envelope cannot certify"
    ),
}


@dataclass(frozen=True)
class AnalyticDecision:
    """Why one cell was (or was not) admitted to the analytic path.

    ``rule`` and ``tolerance`` name the manifest entry that bound the
    admission under the max rule — the widest envelope among the gated
    metrics — so reports and store provenance can attribute every
    analytic answer to a committed number.
    """

    analytic_capable: bool
    reason: str
    rule: str = ""
    tolerance: float = math.inf

    @property
    def path(self) -> str:
        return "analytic" if self.analytic_capable else "simulated"


def record_usable(record: Mapping[str, Any], decided_path: str) -> bool:
    """Whether a cached store record satisfies the current decision.

    A cell decided *simulated* must not reuse an analytic record — that
    is the resume contract: re-opening a hybrid-mode store with
    ``evaluation: "simulate"`` recomputes exactly the analytic-path
    cells.  A cell decided *analytic* accepts either (a simulated
    answer is strictly more accurate than the envelope demands).
    Records from before provenance existed rehydrate as ``simulated``
    and stay usable everywhere.
    """
    if decided_path == "analytic":
        return True
    return record_path(record) == "simulated"


class AnalyticCellEvaluator:
    """Decides and answers analytic-capable campaign cells.

    ``max_rel_error`` is the caller's accuracy requirement;
    ``safety_margin`` scales the manifest envelope before the
    comparison, so margins above 1 only ever convert analytic cells to
    simulated ones (monotone tightening, never the reverse).
    """

    def __init__(
        self,
        manifest: ToleranceManifest,
        *,
        max_rel_error: float = DEFAULT_MAX_REL_ERROR,
        safety_margin: float = 1.0,
        metrics: Sequence[str] = GATED_METRICS,
        manifest_path: Optional[Path] = None,
    ):
        if max_rel_error <= 0.0:
            raise ConfigurationError(
                f"max_rel_error must be > 0, got {max_rel_error}"
            )
        if safety_margin <= 0.0:
            raise ConfigurationError(
                f"safety_margin must be > 0, got {safety_margin}"
            )
        if not metrics:
            raise ConfigurationError("at least one gated metric is required")
        self.manifest = manifest
        self.max_rel_error = float(max_rel_error)
        self.safety_margin = float(safety_margin)
        self.metrics: Tuple[str, ...] = tuple(metrics)
        self.manifest_path = Path(manifest_path) if manifest_path else None
        # Memoized evaluator state, reused across neighboring cells in
        # sweep order (the whole point of answering cells centrally).
        self._predictions: Dict[FidelityWorkload, AnalyticPrediction] = {}
        self._erlang: Dict[Tuple[float, float], ErlangMarginalEvaluator] = {}
        self._decisions: Dict[Tuple, AnalyticDecision] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default(cls, **kwargs: Any) -> "AnalyticCellEvaluator":
        """Evaluator trusting the repo's committed tolerance manifest.

        Looks for ``tests/golden/fidelity_tolerances.json`` under the
        working directory first (a checkout running from its root),
        then next to the installed package source.
        """
        from repro.fidelity.manifest import ToleranceManifest

        candidates = [
            Path.cwd() / DEFAULT_MANIFEST_RELPATH,
            Path(__file__).resolve().parents[3] / DEFAULT_MANIFEST_RELPATH,
        ]
        for candidate in candidates:
            if candidate.is_file():
                return cls(
                    ToleranceManifest.load(candidate),
                    manifest_path=candidate,
                    **kwargs,
                )
        raise ConfigurationError(
            "no tolerance manifest found for hybrid evaluation; pass"
            " --manifest or run from a checkout containing"
            f" {DEFAULT_MANIFEST_RELPATH}"
        )

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def decide(self, spec: ScenarioSpec) -> AnalyticDecision:
        """Whether this cell may be answered analytically, and why."""
        key = self._decision_key(spec)
        cached = self._decisions.get(key)
        if cached is not None:
            return cached
        decision = self._decide(spec)
        self._decisions[key] = decision
        return decision

    def _decide(self, spec: ScenarioSpec) -> AnalyticDecision:
        reject = self._structural_reason(spec)
        if reject is not None:
            return AnalyticDecision(analytic_capable=False, reason=reject)
        try:
            workload = FidelityWorkload(**spec.workload_params)
        except (TypeError, ValueError) as exc:
            return AnalyticDecision(
                analytic_capable=False,
                reason=f"workload parameters not analytic-capable: {exc}",
            )
        if workload.topology not in FEED_FORWARD_TOPOLOGIES:
            return AnalyticDecision(
                analytic_capable=False,
                reason=(
                    f"topology {workload.topology!r} is not feed-forward"
                    f" (supported: {', '.join(FEED_FORWARD_TOPOLOGIES)})"
                ),
            )
        if workload.hop_latency not in (None, 0.0):
            return AnalyticDecision(
                analytic_capable=False,
                reason="non-zero hop latency has no committed envelope",
            )
        # Envelope admission: every gated metric's manifest tolerance,
        # scaled by the safety margin, must fit inside the acceptable
        # error.  The decision records the *widest* envelope (the one
        # that nearly bound) so provenance names the governing rule.
        widest = -math.inf
        widest_rule = ""
        for metric in self.metrics:
            tolerance, rule = self.manifest.tolerance_with_rule(
                metric,
                topology=workload.topology,
                discipline=spec.queue_discipline,
                scv=workload.scv,
                rho=workload.rho,
                arrival="poisson",
            )
            if tolerance > widest:
                widest = tolerance
                widest_rule = f"{metric}/{rule}"
            if tolerance * self.safety_margin > self.max_rel_error:
                return AnalyticDecision(
                    analytic_capable=False,
                    reason=(
                        f"envelope {metric}/{rule} = {tolerance:g}"
                        f" (x{self.safety_margin:g} margin) exceeds"
                        f" max_rel_error {self.max_rel_error:g}"
                    ),
                    rule=f"{metric}/{rule}",
                    tolerance=tolerance,
                )
        return AnalyticDecision(
            analytic_capable=True,
            reason="within committed tolerance envelope",
            rule=widest_rule,
            tolerance=widest,
        )

    def _structural_reason(self, spec: ScenarioSpec) -> Optional[str]:
        """First structural gate this cell fails, or ``None``."""
        if spec.kind != "simulation":
            return f"kind {spec.kind!r} is not a simulation"
        if spec.workload != "fidelity":
            return (
                f"workload {spec.workload!r} has no analytic model"
                " (only 'fidelity' cells are certified)"
            )
        if spec.policy != "none" or spec.policy_params:
            return (
                f"policy {spec.policy!r} adapts at runtime; the analytic"
                " model only covers fixed allocations"
            )
        if spec.rate_phases:
            return "rate phases make the cell non-stationary"
        if spec.arrival_model is not None:
            # Structurally rejected even when the manifest carries an
            # arrival override: the analytic prediction is Poisson-based
            # and non-Poisson envelopes document *measured drift*, not
            # certified accuracy.
            kind = spec.arrival_model.get("kind", "?")
            return f"arrival model {kind!r} is not Poisson"
        if spec.closed_loop is not None:
            return (
                "closed-loop sources couple arrivals to completions; the"
                " analytic model assumes an open arrival stream"
            )
        if spec.queue_limit is not None or spec.backpressure:
            return (
                "bounded queues (drop or backpressure) have no committed"
                " envelope"
            )
        if spec.queue_discipline not in SUPPORTED_DISCIPLINES:
            return (
                f"discipline {spec.queue_discipline!r} has no committed"
                f" envelope (supported: {', '.join(SUPPORTED_DISCIPLINES)})"
            )
        if spec.hop_latency not in (None, 0.0):
            return "non-zero hop latency has no committed envelope"
        if spec.platform is not None:
            return (
                "platform blocks (weighted links, machine speeds, churn)"
                " have no committed envelope"
            )
        if spec.measurement is not None:
            return "measurement-noise overlays require simulation"
        if spec.cluster is not None or spec.initial_machines is not None:
            return "cluster/VLD dynamics require simulation"
        if spec.recommend_kmax is not None:
            return "allocation recommendation requires the full runner"
        return None

    def _decision_key(self, spec: ScenarioSpec) -> Tuple:
        """Hashable digest of every field :meth:`_decide` reads."""
        return (
            spec.kind,
            spec.workload,
            spec.policy,
            tuple(sorted(spec.policy_params.items())) if spec.policy_params else (),
            bool(spec.rate_phases),
            None if spec.arrival_model is None else str(sorted(spec.arrival_model.items())),
            spec.queue_discipline,
            spec.queue_limit,
            spec.backpressure,
            None
            if spec.closed_loop is None
            else str(sorted(spec.closed_loop.items())),
            spec.hop_latency,
            None if spec.platform is None else str(sorted(spec.platform.items())),
            spec.measurement is None,
            spec.cluster is None,
            spec.initial_machines,
            spec.recommend_kmax,
            tuple(sorted(spec.workload_params.items())),
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, spec: ScenarioSpec, index: int) -> ReplicationResult:
        """The analytic answer for replication ``index`` of this cell.

        Shaped exactly like a simulated :class:`ReplicationResult` so
        stores, aggregators and reports need no special casing: the
        model's stationary expectations stand in for the run's sample
        means, the empty-start quantities (drops, rebalances, actions,
        timeline) are identically zero, and ``std_sojourn`` is ``None``
        — the model predicts means, not run-to-run spread.
        """
        workload = FidelityWorkload(**spec.workload_params)
        prediction = self._predict(workload)
        wait = self._operator_wait(workload)
        waits = {name: wait for name in workload.operator_names}
        services = {
            name: 1.0 / workload.mu for name in workload.operator_names
        }
        external = int(round(workload.external_rate * spec.duration))
        return ReplicationResult(
            index=index,
            seed=replication_seed(spec.seed, index),
            duration=spec.duration,
            external_tuples=external,
            completed_trees=external,
            dropped_tuples=0,
            dropped_trees=0,
            rebalances=0,
            mean_sojourn=prediction.mean_sojourn,
            std_sojourn=None,
            p95_sojourn=prediction.p95_sojourn,
            final_allocation=spec.initial_allocation
            or workload.allocation_spec(),
            final_machines=None,
            actions=(),
            timeline=(),
            recommendation=None,
            operator_waits=waits,
            operator_services=services,
        )

    def _predict(self, workload: FidelityWorkload) -> "AnalyticPrediction":
        from repro.fidelity.analytic import predict

        cached = self._predictions.get(workload)
        if cached is None:
            cached = predict(workload)
            self._predictions[workload] = cached
        return cached

    def _operator_wait(self, workload: FidelityWorkload) -> float:
        """Allen-Cunneen mean wait of one operator, via the memoized
        Erlang recurrence.

        Every operator of a feed-forward fidelity cell sees the full
        external rate at the same ``(mu, k)``, so one evaluation covers
        the whole cell; across cells sharing ``(lam, mu)`` the forward
        recurrence answers an ascending k-sweep in O(1) per cell.
        """
        lam = workload.external_rate
        mu = workload.mu
        k = workload.servers
        key = (lam, mu)
        evaluator = self._erlang.get(key)
        if evaluator is None or evaluator.k > k:
            evaluator = ErlangMarginalEvaluator(lam, mu, k)
            self._erlang[key] = evaluator
        else:
            evaluator.advance_to(k)
        sojourn = evaluator.sojourn
        if math.isinf(sojourn):
            return math.inf
        waiting_mmk = sojourn - 1.0 / mu
        return waiting_mmk * (1.0 + workload.scv) / 2.0

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------
    def provenance(self, decision: AnalyticDecision) -> Dict[str, Any]:
        """The audit trail persisted next to every analytic record."""
        from repro.fidelity.manifest import MANIFEST_VERSION

        payload: Dict[str, Any] = {
            "manifest_version": MANIFEST_VERSION,
            "rule": decision.rule,
            "tolerance": decision.tolerance,
            "max_rel_error": self.max_rel_error,
            "safety_margin": self.safety_margin,
            "metrics": list(self.metrics),
        }
        if self.manifest_path is not None:
            payload["manifest"] = str(self.manifest_path)
        return payload


def resolve_evaluator(
    evaluation: str, evaluator: Optional[AnalyticCellEvaluator]
) -> Optional[AnalyticCellEvaluator]:
    """The evaluator a runner should use for ``evaluation`` mode.

    ``simulate`` never builds one (and ignores an injected one), so the
    default mode carries zero new machinery; the hybrid/analytic modes
    fall back to the committed-manifest default when the caller did not
    inject a configured evaluator.
    """
    if evaluation == "simulate":
        return None
    if evaluator is not None:
        return evaluator
    return AnalyticCellEvaluator.default()
