"""Content-addressed, resumable on-disk store of replication results.

Layout (one directory per scenario content hash, one file per seed)::

    <root>/
      ab/
        ab12...ef/
          spec.json        # provenance: the first spec stored here
          7.json           # record of the replication run with seed 7
          1734...55.json

Records are written atomically (temp file + ``os.replace``), so a
killed ``run-campaign`` never leaves a half-written record: on resume a
record either parses — and its replication is skipped — or it does not
exist.  A record that fails to parse (torn write on a crash-unsafe
filesystem, manual truncation) is treated as missing and recomputed.

The key is ``(scenario_hash(spec), seed)`` — *what* was simulated, not
what the campaign called it — so renamed campaigns, re-ordered grids
and grown replication counts all reuse every completed replication.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.scenarios.runner import ReplicationResult
from repro.scenarios.spec import ScenarioSpec

#: Bump when the record schema changes; mismatched records are ignored
#: (recomputed), never misread.
RECORD_VERSION = 1

#: Evaluation paths a record may carry.  ``simulated`` results come from
#: the discrete-event engine, ``analytic`` ones from the queueing-model
#: fast path (``repro.campaigns.hybrid``).  The field is additive within
#: RECORD_VERSION 1: records written before it existed carry no ``path``
#: key and rehydrate as ``simulated`` (see :func:`record_path`).
RECORD_PATHS = ("simulated", "analytic")


def record_path(record: Mapping[str, Any]) -> str:
    """The evaluation path of a stored record (``simulated`` default).

    >>> record_path({"path": "analytic"})
    'analytic'
    >>> record_path({})                      # pre-provenance record
    'simulated'
    """
    return str(record.get("path", RECORD_PATHS[0]))


class ResultStore:
    """Directory-backed store of per-replication results.

    >>> import tempfile
    >>> from repro.campaigns.spec import scenario_hash
    >>> from repro.scenarios.runner import run_replication
    >>> from repro.scenarios.spec import ScenarioSpec
    >>> spec = ScenarioSpec(name="demo", workload="synthetic",
    ...                     policy="none", initial_allocation="10:10:10",
    ...                     duration=5.0, seed=7)
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> digest = scenario_hash(spec)
    >>> store.has(digest, 7)
    False
    >>> result = run_replication(spec, 0)
    >>> _ = store.put(spec, digest, 7, result)
    >>> store.load(digest, 7) == result      # survives the round-trip
    True
    >>> store.count(digest)
    1
    """

    def __init__(self, root: os.PathLike):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _bucket(self, spec_hash: str) -> Path:
        if len(spec_hash) < 8 or not all(
            c in "0123456789abcdef" for c in spec_hash
        ):
            raise ConfigurationError(f"malformed spec hash {spec_hash!r}")
        return self._root / spec_hash[:2] / spec_hash

    def record_path(self, spec_hash: str, seed: int) -> Path:
        return self._bucket(spec_hash) / f"{int(seed)}.json"

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def has(self, spec_hash: str, seed: int) -> bool:
        """True when a *parseable* record exists for ``(hash, seed)``."""
        return self.load(spec_hash, seed) is not None

    def load(self, spec_hash: str, seed: int) -> Optional[ReplicationResult]:
        """The stored replication result, or ``None`` when absent/torn."""
        record = self.load_record(spec_hash, seed)
        if record is None:
            return None
        try:
            return ReplicationResult.from_dict(record["result"])
        except (KeyError, TypeError, ValueError):
            # Shape-corrupted record (hand-edited, schema drift within a
            # version): same contract as a torn write — recompute it.
            return None

    def load_record(
        self, spec_hash: str, seed: int
    ) -> Optional[Dict[str, Any]]:
        """The raw record mapping (metrics only — no re-hydration)."""
        path = self.record_path(spec_hash, seed)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("version") != RECORD_VERSION
            or "result" not in record
        ):
            return None
        return record

    def iter_records(
        self, spec_hash: str
    ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """All parseable ``(seed, record)`` pairs for one content hash,
        in ascending seed order (deterministic aggregation order)."""
        bucket = self._bucket(spec_hash)
        if not bucket.is_dir():
            return
        seeds = sorted(
            int(p.stem)
            for p in bucket.glob("*.json")
            if p.stem.lstrip("-").isdigit()
        )
        for seed in seeds:
            record = self.load_record(spec_hash, seed)
            if record is not None:
                yield seed, record

    def count(self, spec_hash: str) -> int:
        return sum(1 for _ in self.iter_records(spec_hash))

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def put(
        self,
        spec: ScenarioSpec,
        spec_hash: str,
        seed: int,
        result: ReplicationResult,
        *,
        campaign: str = "",
        cell: str = "",
        path: str = "simulated",
        provenance: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist one replication result atomically.

        ``path`` tags how the result was produced (``simulated`` or
        ``analytic``); analytic results carry their admission
        ``provenance`` (manifest version, the envelope rule that
        admitted the cell) so a store is auditable after the fact.  The
        containing bucket also gets a one-time ``spec.json`` with the
        scenario that produced it, for human audit of a store.
        """
        record = self._record(
            spec_hash,
            seed,
            result,
            campaign=campaign,
            cell=cell,
            path=path,
            provenance=provenance,
        )
        bucket = self._bucket(spec_hash)
        bucket.mkdir(parents=True, exist_ok=True)
        spec_path = bucket / "spec.json"
        if not spec_path.exists():
            self._write_atomic(spec_path, spec.to_dict())
        record_file = self.record_path(spec_hash, seed)
        self._write_atomic(record_file, record)
        return record_file

    def _record(
        self,
        spec_hash: str,
        seed: int,
        result: ReplicationResult,
        *,
        campaign: str,
        cell: str,
        path: str,
        provenance: Optional[Mapping[str, Any]],
    ) -> Dict[str, Any]:
        """The record mapping both layouts persist (schema additive:
        ``path``/``analytic`` appeared after RECORD_VERSION 1 records
        already existed, so readers must treat them as optional)."""
        if path not in RECORD_PATHS:
            raise ConfigurationError(
                f"unknown record path {path!r}; expected one of {RECORD_PATHS}"
            )
        record: Dict[str, Any] = {
            "version": RECORD_VERSION,
            "spec_hash": spec_hash,
            "seed": int(seed),
            "campaign": campaign,
            "cell": cell,
            "path": path,
            "result": result.to_dict(),
        }
        if provenance is not None:
            record["analytic"] = dict(provenance)
        return record

    def _write_atomic(self, path: Path, payload: Dict[str, Any]) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
