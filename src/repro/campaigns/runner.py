"""Execute campaigns: expand the grid, skip stored work, run the rest.

The runner plans one *job* per ``(cell, replication index)`` pair and
asks the store (when one is attached) which jobs already have results.
Remaining jobs are deduplicated by ``(spec hash, seed)`` — two grid
cells that expand to identical simulation inputs share one computation
— and distributed over a :class:`ProcessPoolExecutor`.  Every result is
written to the store *the moment it completes* (atomically), so killing
a campaign mid-run loses at most the replications in flight; a resumed
run recomputes only those.

Determinism: each replication's outcome depends only on its scenario
spec and derived seed (see :func:`repro.scenarios.runner.run_replication`),
so worker count, completion order and cache hits cannot change a
campaign's merged summaries — the property the equivalence tests pin.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.campaigns.store import ResultStore
from repro.exceptions import ConfigurationError
from repro.scenarios.runner import (
    ReplicationResult,
    ScenarioRunner,
    ScenarioSummary,
    replication_seed,
    run_replication,
    summarize_replications,
)
from repro.scenarios.spec import ScenarioSpec

#: One unit of simulation work: (spec hash, derived seed) plus the spec
#: and replication index that produce it.
_Job = Tuple[str, int, ScenarioSpec, int]


def _run_job(job: _Job) -> ReplicationResult:
    _, _, spec, index = job
    return run_replication(spec, index)


#: Rough serialized size of one stored replication record.  Observed
#: classic-layout records run 2–6 KiB depending on topology width and
#: timeline length; the estimate is for sanity-checking a sweep's disk
#: cost before launching shards, not for accounting.
ESTIMATED_RECORD_BYTES = 4096


@dataclass(frozen=True)
class CampaignPlan:
    """What a run would do: which jobs are cached, which must compute.

    ``axes`` lists ``(axis_name, point_count)`` pairs and ``cells`` the
    expanded grid size, so a dry run shows the sweep's shape; the store
    estimate sizes the *uncached* work at
    :data:`ESTIMATED_RECORD_BYTES` per job.
    """

    total: int
    cached: int
    axes: Tuple[Tuple[str, int], ...] = ()
    cells: int = 0
    estimated_store_bytes: int = 0

    @property
    def to_compute(self) -> int:
        return self.total - self.cached


@dataclass(frozen=True)
class CampaignCellResult:
    """One grid cell's merged summary plus its result provenance.

    ``computed``/``reused`` count this cell's replications by where
    their results came from: computed by this run, or loaded from the
    store.  Cells that expand to identical simulation inputs share one
    computation, so summing cell counts over-states executed work —
    campaign-level totals live on :class:`CampaignResult`, which counts
    unique jobs.
    """

    cell: CampaignCell
    summary: ScenarioSummary
    computed: int
    reused: int

    def to_dict(self) -> dict:
        return {
            "label": self.cell.label,
            "coordinates": self.cell.coordinates,
            "spec_hash": self.cell.spec_hash,
            "computed": self.computed,
            "reused": self.reused,
            "summary": self.summary.to_dict(),
        }


@dataclass(frozen=True)
class CampaignResult:
    """All cells of one campaign run.

    ``computed`` / ``reused`` count *unique* ``(spec hash, seed)`` jobs
    — simulations actually executed by this run vs. loaded from the
    store — so deduplicated identical cells are not double-counted.
    """

    campaign: CampaignSpec
    cells: Tuple[CampaignCellResult, ...]
    computed: int
    reused: int

    @property
    def summaries(self) -> List[ScenarioSummary]:
        return [c.summary for c in self.cells]

    def cell(self, label: str) -> CampaignCellResult:
        for result in self.cells:
            if result.cell.label == label:
                return result
        raise KeyError(label)

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign.name,
            "computed": self.computed,
            "reused": self.reused,
            "cells": [c.to_dict() for c in self.cells],
        }


class CampaignRunner:
    """Runs campaigns, optionally against a resumable result store.

    Without a store every replication is computed fresh — exactly what
    :class:`~repro.scenarios.runner.ScenarioRunner.run_many` would do
    for the expanded specs.  With a store, completed replications are
    loaded instead of recomputed and fresh ones are persisted as they
    finish.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        max_workers: Optional[int] = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 when set")
        self._store = store
        self._max_workers = max_workers

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, campaign: CampaignSpec) -> CampaignPlan:
        """Cache accounting without running anything (``--dry-run``).

        Mirrors :meth:`run` exactly: unique ``(spec hash, seed)`` jobs
        (identical cells share one), plus one uncacheable job per
        overhead cell — so ``to_compute`` predicts ``run()``'s
        ``computed`` count.
        """
        cells = campaign.expand()
        keys = set()
        for cell in _simulation_cells(cells):
            spec_hash = cell.spec_hash
            for index in range(cell.spec.replications):
                keys.add((spec_hash, replication_seed(cell.spec.seed, index)))
        cached = 0
        if self._store is not None:
            for spec_hash, seed in keys:
                if self._store.load_record(spec_hash, seed) is not None:
                    cached += 1
        overhead = len(cells) - len(_simulation_cells(cells))
        total = len(keys) + overhead
        return CampaignPlan(
            total=total,
            cached=cached,
            axes=tuple(
                (axis.name, len(axis.values)) for axis in campaign.axes
            ),
            cells=len(cells),
            estimated_store_bytes=(total - cached) * ESTIMATED_RECORD_BYTES,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, campaign: CampaignSpec) -> CampaignResult:
        cells = campaign.expand()
        if not cells:
            raise ConfigurationError(
                f"campaign {campaign.name!r} expands to no cells"
            )
        cached: Dict[Tuple[str, int], ReplicationResult] = {}
        jobs: List[_Job] = []
        pending_keys = set()
        for cell in _simulation_cells(cells):
            spec_hash = cell.spec_hash
            for index in range(cell.spec.replications):
                seed = replication_seed(cell.spec.seed, index)
                key = (spec_hash, seed)
                if key in cached or key in pending_keys:
                    continue
                result = (
                    self._store.load(spec_hash, seed)
                    if self._store is not None
                    else None
                )
                if result is not None:
                    cached[key] = result
                else:
                    pending_keys.add(key)
                    jobs.append((spec_hash, seed, cell.spec, index))

        computed = self._execute(campaign, cells, jobs)

        results: List[CampaignCellResult] = []
        overhead_runs = 0
        for cell in cells:
            if cell.spec.kind != "simulation":
                summary = ScenarioRunner(max_workers=1).run(cell.spec)
                overhead_runs += 1
                results.append(
                    CampaignCellResult(
                        cell=cell, summary=summary, computed=1, reused=0
                    )
                )
                continue
            spec_hash = cell.spec_hash
            merged: List[ReplicationResult] = []
            fresh = 0
            reused = 0
            for index in range(cell.spec.replications):
                seed = replication_seed(cell.spec.seed, index)
                key = (spec_hash, seed)
                if key in computed:
                    fresh += 1
                    result = computed[key]
                else:
                    reused += 1
                    result = cached[key]
                # A cell whose rep index differs from the cached record
                # (same inputs reached via another cell) still reports
                # its own index.
                if result.index != index:
                    result = ReplicationResult.from_dict(
                        {**result.to_dict(), "index": index}
                    )
                merged.append(result)
            results.append(
                CampaignCellResult(
                    cell=cell,
                    summary=summarize_replications(cell.spec, merged),
                    computed=fresh,
                    reused=reused,
                )
            )
        return CampaignResult(
            campaign=campaign,
            cells=tuple(results),
            computed=len(computed) + overhead_runs,
            reused=len(cached),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _execute(
        self,
        campaign: CampaignSpec,
        cells: Sequence[CampaignCell],
        jobs: Sequence[_Job],
    ) -> Dict[Tuple[str, int], ReplicationResult]:
        if not jobs:
            return {}
        label_by_hash = {c.spec_hash: c.label for c in cells}
        computed: Dict[Tuple[str, int], ReplicationResult] = {}

        def persist(job: _Job, result: ReplicationResult) -> None:
            spec_hash, seed, spec, _ = job
            computed[(spec_hash, seed)] = result
            if self._store is not None:
                self._store.put(
                    spec,
                    spec_hash,
                    seed,
                    result,
                    campaign=campaign.name,
                    cell=label_by_hash.get(spec_hash, ""),
                )

        workers = self._max_workers or os.cpu_count() or 1
        workers = min(workers, len(jobs))
        if workers <= 1:
            for job in jobs:
                persist(job, _run_job(job))
            return computed
        # submit/wait rather than map: each result is persisted the
        # moment it completes, so an interrupt loses only in-flight
        # replications instead of a whole ordered prefix.
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_job, job): job for job in jobs}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    persist(futures[future], future.result())
        return computed


def _simulation_cells(
    cells: Sequence[CampaignCell],
) -> List[CampaignCell]:
    return [c for c in cells if c.spec.kind == "simulation"]
