"""Execute campaigns: expand the grid, skip stored work, run the rest.

The runner plans one *job* per ``(cell, replication index)`` pair and
asks the store (when one is attached) which jobs already have results.
Remaining jobs are deduplicated by ``(spec hash, seed)`` — two grid
cells that expand to identical simulation inputs share one computation
— and distributed over a :class:`ProcessPoolExecutor`.  Every result is
written to the store *the moment it completes* (atomically), so killing
a campaign mid-run loses at most the replications in flight; a resumed
run recomputes only those.

Evaluation modes (:attr:`CampaignSpec.evaluation`): ``simulate`` (the
default) computes every job with the discrete-event engine, exactly as
before.  ``hybrid`` routes each cell through an
:class:`~repro.campaigns.hybrid.AnalyticCellEvaluator` first — cells
the committed tolerance manifest certifies are answered from the
queueing model inline (microseconds instead of seconds) and persisted
with ``path: "analytic"`` provenance; the rest simulate.  ``analytic``
demands the fast path for every cell and errors on the first one the
envelope cannot certify.

Determinism: each replication's outcome depends only on its scenario
spec and derived seed (see :func:`repro.scenarios.runner.run_replication`),
so worker count, completion order and cache hits cannot change a
campaign's merged summaries — the property the equivalence tests pin.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaigns.hybrid import (
    AnalyticCellEvaluator,
    AnalyticDecision,
    record_usable,
    resolve_evaluator,
)
from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.campaigns.store import ResultStore
from repro.exceptions import CampaignCancelled, ConfigurationError
from repro.scenarios.runner import (
    ReplicationResult,
    ScenarioRunner,
    ScenarioSummary,
    replication_seed,
    run_replication,
    summarize_replications,
)
from repro.scenarios.spec import ScenarioSpec

#: One unit of simulation work: (spec hash, derived seed) plus the spec
#: and replication index that produce it.
_Job = Tuple[str, int, ScenarioSpec, int]


def _run_job(job: _Job) -> ReplicationResult:
    _, _, spec, index = job
    return run_replication(spec, index)


#: Rough serialized size of one stored replication record in the
#: classic one-file-per-replication layout.  Observed classic records
#: run 2–6 KiB depending on topology width and timeline length; the
#: estimate is for sanity-checking a sweep's disk cost before launching
#: shards, not for accounting.
ESTIMATED_RECORD_BYTES = 4096

#: Per-record estimate for the segmented NDJSON layout when the store
#: holds no records yet to measure (packed lines, no per-file block
#: rounding).  A store with indexed records reports its observed mean
#: instead (:meth:`SegmentedResultStore.mean_record_bytes`).
ESTIMATED_SEGMENT_RECORD_BYTES = 2048

#: Analytic-path records carry no timeline, action log or spread stats,
#: so they serialize far smaller than simulated ones.
ESTIMATED_ANALYTIC_RECORD_BYTES = 1024

#: Coarse per-job wall-time heuristics for the plan's by-path breakdown.
#: Simulated jobs vary over orders of magnitude with duration and load;
#: this is a planning aid ("hours vs seconds"), not a promise.
ESTIMATED_SIMULATED_SECONDS_PER_JOB = 1.0
ESTIMATED_ANALYTIC_SECONDS_PER_JOB = 1e-4


@dataclass(frozen=True)
class CampaignPlan:
    """What a run would do: which jobs are cached, which must compute.

    ``axes`` lists ``(axis_name, point_count)`` pairs and ``cells`` the
    expanded grid size, so a dry run shows the sweep's shape.  The
    store estimate is layout-aware: classic stores cost
    :data:`ESTIMATED_RECORD_BYTES` per uncached job, segmented stores
    their observed (or :data:`ESTIMATED_SEGMENT_RECORD_BYTES` default)
    NDJSON bytes per record, analytic-path jobs the slimmer
    :data:`ESTIMATED_ANALYTIC_RECORD_BYTES` — and overhead cells, which
    never write records, cost nothing.

    ``analytic_cells`` / ``simulated_cells`` split the grid by decided
    path; ``analytic_jobs`` counts uncached jobs the fast path would
    answer.  The two ``estimated_*_seconds`` fields give the coarse
    by-path wall-time breakdown a ``--dry-run`` prints.
    """

    total: int
    cached: int
    axes: Tuple[Tuple[str, int], ...] = ()
    cells: int = 0
    estimated_store_bytes: int = 0
    evaluation: str = "simulate"
    analytic_cells: int = 0
    simulated_cells: int = 0
    analytic_jobs: int = 0
    estimated_analytic_seconds: float = 0.0
    estimated_simulated_seconds: float = 0.0

    @property
    def to_compute(self) -> int:
        return self.total - self.cached


@dataclass(frozen=True)
class CampaignCellResult:
    """One grid cell's merged summary plus its result provenance.

    ``computed``/``reused`` count this cell's replications by where
    their results came from: computed by this run, or loaded from the
    store.  Cells that expand to identical simulation inputs share one
    computation, so summing cell counts over-states executed work —
    campaign-level totals live on :class:`CampaignResult`, which counts
    unique jobs.  ``path`` records how the cell was evaluated
    (``simulated`` or ``analytic``).
    """

    cell: CampaignCell
    summary: ScenarioSummary
    computed: int
    reused: int
    path: str = "simulated"

    def to_dict(self) -> dict:
        return {
            "label": self.cell.label,
            "coordinates": self.cell.coordinates,
            "spec_hash": self.cell.spec_hash,
            "computed": self.computed,
            "reused": self.reused,
            "path": self.path,
            "summary": self.summary.to_dict(),
        }


@dataclass(frozen=True)
class CampaignResult:
    """All cells of one campaign run.

    ``computed`` / ``reused`` count *unique* ``(spec hash, seed)`` jobs
    — simulations actually executed by this run vs. loaded from the
    store — so deduplicated identical cells are not double-counted.
    ``analytic`` counts the subset of ``computed`` answered by the
    model fast path (always 0 in ``simulate`` mode).
    """

    campaign: CampaignSpec
    cells: Tuple[CampaignCellResult, ...]
    computed: int
    reused: int
    analytic: int = 0

    @property
    def summaries(self) -> List[ScenarioSummary]:
        return [c.summary for c in self.cells]

    def cell(self, label: str) -> CampaignCellResult:
        for result in self.cells:
            if result.cell.label == label:
                return result
        raise KeyError(label)

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign.name,
            "evaluation": self.campaign.evaluation,
            "computed": self.computed,
            "reused": self.reused,
            "analytic": self.analytic,
            "cells": [c.to_dict() for c in self.cells],
        }


class CampaignRunner:
    """Runs campaigns, optionally against a resumable result store.

    Without a store every replication is computed fresh — exactly what
    :class:`~repro.scenarios.runner.ScenarioRunner.run_many` would do
    for the expanded specs.  With a store, completed replications are
    loaded instead of recomputed and fresh ones are persisted as they
    finish.

    ``evaluator`` injects a configured
    :class:`~repro.campaigns.hybrid.AnalyticCellEvaluator` for
    hybrid/analytic campaigns; when omitted, those modes build the
    default evaluator from the committed tolerance manifest.  Campaigns
    with ``evaluation: "simulate"`` never consult it.

    ``cancel`` is an optional :class:`threading.Event` (anything with
    an ``is_set()`` method) polled between job completions.  Once set,
    the runner stops dispatching, persists every result that already
    finished, and raises :class:`~repro.exceptions.CampaignCancelled` —
    so a cancelled campaign resumes from its store losing only work in
    flight.  This is the hook the job service's cancel endpoint (and
    its shutdown path) relies on.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        max_workers: Optional[int] = None,
        evaluator: Optional[AnalyticCellEvaluator] = None,
        cancel=None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 when set")
        self._store = store
        self._max_workers = max_workers
        self._evaluator = evaluator
        self._cancel = cancel

    def _check_cancelled(self, campaign: CampaignSpec) -> None:
        if self._cancel is not None and self._cancel.is_set():
            raise CampaignCancelled(
                f"campaign {campaign.name!r} cancelled; completed"
                " replications are persisted in the store"
            )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, campaign: CampaignSpec) -> CampaignPlan:
        """Cache accounting without running anything (``--dry-run``).

        Mirrors :meth:`run` exactly: unique ``(spec hash, seed)`` jobs
        (identical cells share one), plus one uncacheable job per
        overhead cell — so ``to_compute`` predicts ``run()``'s
        ``computed`` count, path decisions included.
        """
        cells = campaign.expand()
        evaluator = resolve_evaluator(campaign.evaluation, self._evaluator)
        decisions = self._decide_cells(campaign, cells, evaluator)
        keys: Dict[Tuple[str, int], str] = {}
        analytic_cells = simulated_cells = 0
        for cell in _simulation_cells(cells):
            spec_hash = cell.spec_hash
            path = _cell_path(decisions, spec_hash)
            if path == "analytic":
                analytic_cells += 1
            else:
                simulated_cells += 1
            for index in range(cell.spec.replications):
                seed = replication_seed(cell.spec.seed, index)
                keys[(spec_hash, seed)] = path
        cached = 0
        uncached_analytic = uncached_simulated = 0
        for (spec_hash, seed), path in keys.items():
            record = (
                self._store.load_record(spec_hash, seed)
                if self._store is not None
                else None
            )
            if record is not None and record_usable(record, path):
                cached += 1
            elif path == "analytic":
                uncached_analytic += 1
            else:
                uncached_simulated += 1
        overhead = len(cells) - len(_simulation_cells(cells))
        total = len(keys) + overhead
        return CampaignPlan(
            total=total,
            cached=cached,
            axes=tuple(
                (axis.name, len(axis.values)) for axis in campaign.axes
            ),
            cells=len(cells),
            estimated_store_bytes=self._estimate_store_bytes(
                uncached_simulated, uncached_analytic
            ),
            evaluation=campaign.evaluation,
            analytic_cells=analytic_cells,
            simulated_cells=simulated_cells + overhead,
            analytic_jobs=uncached_analytic,
            estimated_analytic_seconds=uncached_analytic
            * ESTIMATED_ANALYTIC_SECONDS_PER_JOB,
            estimated_simulated_seconds=(uncached_simulated + overhead)
            * ESTIMATED_SIMULATED_SECONDS_PER_JOB,
        )

    def _estimate_store_bytes(self, simulated: int, analytic: int) -> int:
        """Layout-aware size estimate for uncached store-bound jobs.

        Overhead cells are excluded by the caller: they run through the
        figure drivers and never write store records — the classic
        flat-rate estimate wrongly billed them.
        """
        per_record: float = ESTIMATED_RECORD_BYTES
        # Imported here: segstore subclasses ResultStore and is imported
        # by the package __init__ after this module.
        from repro.campaigns.segstore import SegmentedResultStore

        if isinstance(self._store, SegmentedResultStore):
            observed = self._store.mean_record_bytes()
            per_record = (
                observed
                if observed is not None
                else ESTIMATED_SEGMENT_RECORD_BYTES
            )
        per_analytic = min(per_record, ESTIMATED_ANALYTIC_RECORD_BYTES)
        return int(round(simulated * per_record + analytic * per_analytic))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, campaign: CampaignSpec) -> CampaignResult:
        cells = campaign.expand()
        if not cells:
            raise ConfigurationError(
                f"campaign {campaign.name!r} expands to no cells"
            )
        evaluator = resolve_evaluator(campaign.evaluation, self._evaluator)
        decisions = self._decide_cells(campaign, cells, evaluator)
        cached: Dict[Tuple[str, int], ReplicationResult] = {}
        sim_jobs: List[_Job] = []
        analytic_jobs: List[_Job] = []
        pending_keys = set()
        for cell in _simulation_cells(cells):
            spec_hash = cell.spec_hash
            path = _cell_path(decisions, spec_hash)
            for index in range(cell.spec.replications):
                seed = replication_seed(cell.spec.seed, index)
                key = (spec_hash, seed)
                if key in cached or key in pending_keys:
                    continue
                result = self._load_usable(spec_hash, seed, path)
                if result is not None:
                    cached[key] = result
                else:
                    pending_keys.add(key)
                    job = (spec_hash, seed, cell.spec, index)
                    if path == "analytic":
                        analytic_jobs.append(job)
                    else:
                        sim_jobs.append(job)

        computed = self._answer_analytic(
            campaign, cells, analytic_jobs, evaluator, decisions
        )
        computed.update(self._execute(campaign, cells, sim_jobs))

        results: List[CampaignCellResult] = []
        overhead_runs = 0
        for cell in cells:
            if cell.spec.kind != "simulation":
                self._check_cancelled(campaign)
                summary = ScenarioRunner(max_workers=1).run(cell.spec)
                overhead_runs += 1
                results.append(
                    CampaignCellResult(
                        cell=cell, summary=summary, computed=1, reused=0
                    )
                )
                continue
            spec_hash = cell.spec_hash
            merged: List[ReplicationResult] = []
            fresh = 0
            reused = 0
            for index in range(cell.spec.replications):
                seed = replication_seed(cell.spec.seed, index)
                key = (spec_hash, seed)
                if key in computed:
                    fresh += 1
                    result = computed[key]
                else:
                    reused += 1
                    result = cached[key]
                # A cell whose rep index differs from the cached record
                # (same inputs reached via another cell) still reports
                # its own index.
                if result.index != index:
                    result = ReplicationResult.from_dict(
                        {**result.to_dict(), "index": index}
                    )
                merged.append(result)
            results.append(
                CampaignCellResult(
                    cell=cell,
                    summary=summarize_replications(cell.spec, merged),
                    computed=fresh,
                    reused=reused,
                    path=_cell_path(decisions, spec_hash),
                )
            )
        return CampaignResult(
            campaign=campaign,
            cells=tuple(results),
            computed=len(computed) + overhead_runs,
            reused=len(cached),
            analytic=len(analytic_jobs),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _decide_cells(
        self,
        campaign: CampaignSpec,
        cells: Sequence[CampaignCell],
        evaluator: Optional[AnalyticCellEvaluator],
    ) -> Dict[str, AnalyticDecision]:
        """Per-``spec_hash`` path decisions, in sweep order (so the
        evaluator's memoized Erlang state advances monotonically across
        neighboring cells).  ``analytic`` mode fails on the first cell
        the envelope cannot certify, naming it."""
        if evaluator is None:
            return {}
        decisions: Dict[str, AnalyticDecision] = {}
        for cell in _simulation_cells(cells):
            if cell.spec_hash in decisions:
                continue
            decision = evaluator.decide(cell.spec)
            if (
                campaign.evaluation == "analytic"
                and not decision.analytic_capable
            ):
                raise ConfigurationError(
                    f"evaluation 'analytic': cell {cell.label!r} cannot be"
                    f" answered analytically ({decision.reason})"
                )
            decisions[cell.spec_hash] = decision
        return decisions

    def _load_usable(
        self, spec_hash: str, seed: int, path: str
    ) -> Optional[ReplicationResult]:
        """The stored result for this job — only if its record's path
        satisfies the current decision (see :func:`record_usable`)."""
        if self._store is None:
            return None
        record = self._store.load_record(spec_hash, seed)
        if record is None or not record_usable(record, path):
            return None
        try:
            return ReplicationResult.from_dict(record["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def _answer_analytic(
        self,
        campaign: CampaignSpec,
        cells: Sequence[CampaignCell],
        jobs: Sequence[_Job],
        evaluator: Optional[AnalyticCellEvaluator],
        decisions: Dict[str, AnalyticDecision],
    ) -> Dict[Tuple[str, int], ReplicationResult]:
        """Answer the analytic-path jobs inline, with provenance.

        Runs in the coordinating process — each answer is a handful of
        cached float operations, so no pool (or shard worker) should
        ever see these jobs.
        """
        computed: Dict[Tuple[str, int], ReplicationResult] = {}
        if not jobs:
            return computed
        self._check_cancelled(campaign)
        assert evaluator is not None  # jobs only exist with an evaluator
        label_by_hash = {c.spec_hash: c.label for c in cells}
        for spec_hash, seed, spec, index in jobs:
            result = evaluator.evaluate(spec, index)
            computed[(spec_hash, seed)] = result
            if self._store is not None:
                self._store.put(
                    spec,
                    spec_hash,
                    seed,
                    result,
                    campaign=campaign.name,
                    cell=label_by_hash.get(spec_hash, ""),
                    path="analytic",
                    provenance=evaluator.provenance(decisions[spec_hash]),
                )
        return computed

    def _execute(
        self,
        campaign: CampaignSpec,
        cells: Sequence[CampaignCell],
        jobs: Sequence[_Job],
    ) -> Dict[Tuple[str, int], ReplicationResult]:
        if not jobs:
            return {}
        label_by_hash = {c.spec_hash: c.label for c in cells}
        computed: Dict[Tuple[str, int], ReplicationResult] = {}

        def persist(job: _Job, result: ReplicationResult) -> None:
            spec_hash, seed, spec, _ = job
            computed[(spec_hash, seed)] = result
            if self._store is not None:
                self._store.put(
                    spec,
                    spec_hash,
                    seed,
                    result,
                    campaign=campaign.name,
                    cell=label_by_hash.get(spec_hash, ""),
                )

        workers = self._max_workers or os.cpu_count() or 1
        workers = min(workers, len(jobs))
        if workers <= 1:
            for job in jobs:
                self._check_cancelled(campaign)
                persist(job, _run_job(job))
            return computed
        # submit/wait rather than map: each result is persisted the
        # moment it completes, so an interrupt loses only in-flight
        # replications instead of a whole ordered prefix.
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_job, job): job for job in jobs}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    persist(futures[future], future.result())
                if (
                    pending
                    and self._cancel is not None
                    and self._cancel.is_set()
                ):
                    # Completed results above are already persisted;
                    # unstarted jobs are withdrawn and in-flight ones
                    # finish but are discarded — the store keeps
                    # exactly the work that completed.
                    for future in pending:
                        future.cancel()
                    self._check_cancelled(campaign)
        return computed


def _cell_path(decisions: Dict[str, AnalyticDecision], spec_hash: str) -> str:
    decision = decisions.get(spec_hash)
    return decision.path if decision is not None else "simulated"


def _simulation_cells(
    cells: Sequence[CampaignCell],
) -> List[CampaignCell]:
    return [c for c in cells if c.spec.kind == "simulation"]
