"""Text rendering for fidelity audits (the CLI's default output)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.fidelity.audit import FidelityAudit, Violation

#: Column order of the per-cell table.
_METRICS = ("mean_sojourn", "waiting_time", "p95_sojourn")


def _fmt(value: Optional[float], width: int = 7) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:.3f}".rjust(width)


def _fmt_pct(value: Optional[float]) -> str:
    if value is None:
        return "     -"
    return f"{100.0 * value:5.1f}%"


def render_audit(
    audit: FidelityAudit, violations: Optional[Sequence[Violation]] = None
) -> str:
    """Human-readable audit table plus the worst-error summary."""
    lines: List[str] = []
    lines.append(
        f"Model fidelity audit — grid '{audit.grid}'"
        f" ({len(audit.rows)} cells, computed={audit.computed}"
        f" reused={audit.reused})"
    )
    lines.append(
        "Per metric: model value | simulated mean | relative error"
        " (±95% CI, Student-t across replications)"
    )
    header = (
        f"{'cell':<32} {'metric':<13} {'model':>7} {'sim':>7}"
        f" {'err':>6} {'ci':>6}  noise"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in audit.rows:
        for index, metric in enumerate(_METRICS):
            comparison = row.metrics.get(metric)
            if comparison is None:
                continue
            label = row.label if index == 0 else ""
            noise = (
                "within"
                if comparison.within_noise
                else ("beyond" if comparison.within_noise is not None else "-")
            )
            lines.append(
                f"{label:<32} {metric:<13}"
                f" {_fmt(comparison.model)} {_fmt(comparison.simulated)}"
                f" {_fmt_pct(comparison.rel_error)}"
                f" {_fmt_pct(comparison.ci_rel)}  {noise}"
            )
    lines.append("")
    lines.append("Worst observed relative error (metric x topology):")
    worst = audit.worst_errors()
    topologies = sorted(
        {topology for table in worst.values() for topology in table}
    )
    head = f"{'metric':<13}" + "".join(f" {t:>8}" for t in topologies)
    lines.append(head)
    for metric in _METRICS:
        table = worst.get(metric, {})
        lines.append(
            f"{metric:<13}"
            + "".join(f" {_fmt_pct(table.get(t)):>8}" for t in topologies)
        )
    if violations is not None:
        lines.append("")
        if violations:
            lines.append(f"TOLERANCE VIOLATIONS ({len(violations)}):")
            for violation in violations:
                noise = (
                    " (within replication noise)"
                    if violation.within_noise
                    else ""
                )
                lines.append(
                    f"  {violation.label} {violation.metric}:"
                    f" error {100 * violation.rel_error:.1f}% >"
                    f" tolerance {100 * violation.tolerance:.1f}%{noise}"
                )
        else:
            lines.append("All cells within the tolerance manifest.")
    return "\n".join(lines)
