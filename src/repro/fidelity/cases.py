"""Declarative fidelity grids, expanded through the campaign machinery.

A fidelity *case* is one matched (analytic prediction, simulation) pair:
a :class:`~repro.apps.fidelity.FidelityWorkload` plus the queue
discipline and the simulation protocol (duration, warmup, replications).
A *grid* is a named list of cases; :func:`fidelity_campaign` turns a
grid into a :class:`~repro.campaigns.spec.CampaignSpec` with one axis
whose points are multi-field patches — so fidelity runs ride the same
expansion, content-addressed result store and resume semantics as every
other campaign, and a re-run against a warm store recomputes nothing.

Protocol derivation: each cell simulates until ``target_tuples``
external tuples have arrived (``span = target / lambda_0``), after a
warmup long enough for the queue to forget its empty start — several
relaxation times, ``warmup ~ 8 * E[T] / (1 - rho)`` — so the measured
window is near-stationary at every utilisation in the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.fidelity import FidelityWorkload
from repro.campaigns.spec import CampaignSpec
from repro.fidelity.analytic import predict
from repro.scenarios.spec import ScenarioSpec

#: Base seed shared by every grid: fidelity runs are deterministic, so
#: observed errors (and hence the committed tolerances) are pinned.
GRID_SEED = 20260727


@dataclass(frozen=True)
class FidelityCase:
    """One cell: workload, discipline and its simulation protocol.

    ``arrival_model`` (a plain :mod:`repro.workloads` spec dict, or
    ``None`` for the workload's own Poisson arrivals) is what the
    ``burst`` grid varies: the analytic prediction stays Poisson-based,
    so the measured disagreement *is* the model's arrival-assumption
    drift.
    """

    label: str
    workload: FidelityWorkload
    discipline: str
    duration: float
    warmup: float
    replications: int
    arrival_model: Optional[Dict[str, object]] = None

    def scenario_patch(self) -> Dict[str, object]:
        """The campaign-axis ``set`` patch expanding to this cell."""
        workload = self.workload
        patch: Dict[str, object] = {
            "workload_params": {
                "topology": workload.topology,
                "rho": workload.rho,
                "servers": workload.servers,
                "mu": workload.mu,
                "scv": workload.scv,
                "branches": workload.branches,
                "feedback": workload.feedback,
            },
            "initial_allocation": workload.allocation_spec(),
            "duration": self.duration,
            "warmup": self.warmup,
            "queue_discipline": self.discipline,
            # One timeline bucket per run: the audit never plots
            # timelines, and slim records keep the store light.
            "timeline_bucket": self.duration,
            "replications": self.replications,
        }
        if self.arrival_model is not None:
            patch["arrival_model"] = dict(self.arrival_model)
        return patch


def build_case(
    topology: str,
    rho: float,
    servers: int,
    scv: float,
    discipline: str,
    arrival_model: Optional[Dict[str, object]] = None,
    *,
    replications: int,
    target_tuples: int,
) -> FidelityCase:
    """Derive one case's protocol from its parameters (see module doc)."""
    workload = FidelityWorkload(
        topology=topology, rho=rho, servers=servers, scv=scv
    )
    prediction = predict(workload)
    # High-utilisation queues mix slowly (autocorrelation time grows
    # like 1/(1-rho)), so scale the sample size up near saturation —
    # otherwise rho = 0.95 cells report transient noise as model error.
    effective_target = int(target_tuples * max(1.0, 0.2 / (1.0 - rho)))
    span = effective_target / workload.external_rate
    relaxation = 8.0 * prediction.mean_sojourn / (1.0 - rho)
    warmup = max(10.0 / workload.mu, relaxation)
    label = f"{topology}-r{rho:g}-k{servers}-scv{scv:g}-{discipline}"
    if arrival_model is not None:
        label += f"-{_arrival_label(arrival_model)}"
        # Modulated arrivals decorrelate over regime cycles, not queue
        # relaxation times: the window must average over many bursts.
        cycle = float(arrival_model.get("mean_burst", 0.0)) + float(
            arrival_model.get("mean_gap", 0.0)
        )
        warmup = max(warmup, 2.0 * cycle)
        span = max(span, 50.0 * cycle)
    return FidelityCase(
        label=label,
        workload=workload,
        discipline=discipline,
        duration=round(warmup + span, 3),
        warmup=round(warmup, 3),
        replications=replications,
        arrival_model=arrival_model,
    )


def _arrival_label(arrival_model: Dict[str, object]) -> str:
    """Compact label suffix for a non-Poisson arrival model."""
    kind = str(arrival_model.get("kind", "?"))
    if kind == "mmpp2":
        return (
            f"mmpp{arrival_model['burst_ratio']:g}"
            f"x{arrival_model['mean_burst']:g}"
        )
    if kind == "diurnal":
        return f"diurnal{arrival_model['amplitude']:g}"
    return kind


#: ``(topology, rho, servers, scv, discipline[, arrival_model])``
#: tuples per named grid — the optional sixth entry is a plain
#: :mod:`repro.workloads` model spec.
_CaseParams = Tuple


def _smoke_params() -> List[_CaseParams]:
    """The tier-1 smoke cells: M/M/k at rho = 0.7, k in {1, 4, 16}."""
    return [("single", 0.7, k, 1.0, "shared") for k in (1, 4, 16)]


def _small_params() -> List[_CaseParams]:
    cases: List[_CaseParams] = []
    for topology in ("single", "linear", "fanout", "loop"):
        for rho, servers in ((0.3, 2), (0.7, 2), (0.7, 8), (0.9, 4)):
            cases.append((topology, rho, servers, 1.0, "shared"))
    for rho, servers in ((0.7, 1), (0.7, 16), (0.95, 8)):
        cases.append(("single", rho, servers, 1.0, "shared"))
    for scv in (0.0, 0.25, 4.0):
        cases.append(("single", 0.7, 4, scv, "shared"))
    cases.append(("single", 0.7, 8, 1.0, "jsq"))
    cases.append(("linear", 0.7, 8, 1.0, "jsq"))
    return cases


def _burst_params() -> List[_CaseParams]:
    """The burst grid: how far Allen-Cunneen drifts under MMPP traffic.

    Mean offered load is held at the Poisson cell's value (the MMPP2
    model is mean-rate preserving), so each cell's extra error over its
    ``burst_ratio = 1`` sibling — the first row — is attributable to
    arrival correlation alone.  Sweeps burst intensity at fixed cycle
    length, then burst duration at fixed intensity, then checks one
    multi-operator shape and one higher-utilisation point.
    """

    def mmpp(ratio: float, burst: float, gap: float) -> Dict[str, object]:
        return {
            "kind": "mmpp2",
            "burst_ratio": ratio,
            "mean_burst": burst,
            "mean_gap": gap,
        }

    cases: List[_CaseParams] = [("single", 0.7, 4, 1.0, "shared")]
    for ratio in (2.0, 5.0, 10.0):
        cases.append(
            ("single", 0.7, 4, 1.0, "shared", mmpp(ratio, 5.0, 15.0))
        )
    for burst, gap in ((1.0, 3.0), (20.0, 60.0)):
        cases.append(
            ("single", 0.7, 4, 1.0, "shared", mmpp(5.0, burst, gap))
        )
    cases.append(("linear", 0.7, 4, 1.0, "shared", mmpp(5.0, 5.0, 15.0)))
    cases.append(("single", 0.9, 4, 1.0, "shared", mmpp(5.0, 5.0, 15.0)))
    return cases


def _full_params() -> List[_CaseParams]:
    cases: List[_CaseParams] = []
    for topology in ("single", "linear", "fanout", "loop"):
        for rho in (0.3, 0.5, 0.7, 0.85, 0.95):
            for servers in (1, 4, 16, 64):
                for discipline in ("shared", "jsq"):
                    cases.append((topology, rho, servers, 1.0, discipline))
    for scv in (0.0, 0.25, 2.0, 4.0):
        for rho in (0.3, 0.7, 0.9):
            for servers in (1, 4, 16):
                cases.append(("single", rho, servers, scv, "shared"))
    return cases


#: Named grids: (case parameter list factory, replications, target tuples).
GRIDS: Dict[str, Tuple] = {
    "smoke": (_smoke_params, 4, 8000),
    "small": (_small_params, 4, 6000),
    "full": (_full_params, 5, 10000),
    "burst": (_burst_params, 4, 8000),
}


def grid_cases(grid: str) -> List[FidelityCase]:
    """Expand a named grid into its case list."""
    try:
        params_factory, replications, target_tuples = GRIDS[grid]
    except KeyError:
        raise ValueError(
            f"unknown fidelity grid {grid!r}; available: {sorted(GRIDS)}"
        ) from None
    return [
        build_case(
            *params, replications=replications, target_tuples=target_tuples
        )
        for params in params_factory()
    ]


def fidelity_campaign(
    grid: str, *, cases: Sequence[FidelityCase] = (), seed: int = GRID_SEED
) -> CampaignSpec:
    """A :class:`CampaignSpec` running ``grid`` (or an explicit case list).

    One axis named ``case``; each point is a multi-field patch carrying
    the cell's workload parameters and protocol, so the content-address
    of every cell captures exactly what it simulates.
    """
    case_list = list(cases) if cases else grid_cases(grid)
    return CampaignSpec(
        name=f"fidelity-{grid}",
        description=(
            "Matched analytic-vs-simulated pairs for the model fidelity"
            " audit (repro fidelity)"
        ),
        base={
            "workload": "fidelity",
            "policy": "none",
            "seed": seed,
        },
        axes=(
            {
                "name": "case",
                "values": [
                    {"label": case.label, "set": case.scenario_patch()}
                    for case in case_list
                ],
            },
        ),
    )


def case_from_spec(spec: ScenarioSpec) -> FidelityWorkload:
    """Rebuild the workload of an expanded fidelity cell's scenario."""
    if spec.workload != "fidelity":
        raise ValueError(
            f"scenario {spec.name!r} is not a fidelity cell"
            f" (workload {spec.workload!r})"
        )
    return FidelityWorkload(**spec.workload_params)
