"""Run matched (analytic, simulated) pairs and score the disagreement.

:func:`run_audit` expands a fidelity grid into a campaign, executes it
(optionally against a resumable :class:`ResultStore`), and produces one
:class:`FidelityRow` per cell.  Each row compares three metrics —

- ``mean_sojourn``: simulated warmup-windowed mean total sojourn vs the
  SCV-corrected Eq. (3);
- ``waiting_time``: visit-weighted per-operator mean waiting time vs
  the Allen-Cunneen prediction (isolates per-queue accuracy from the
  composition error that dominates fan-outs);
- ``p95_sojourn``: simulated p95 vs the normal-approximation quantile
  bound of :mod:`repro.scheduler.percentile`;

and reports, per metric, the relative error together with a Student-t
95% confidence half-width across replications, so a "disagreement" can
be read against the run's own statistical noise (``within_noise``).
:meth:`FidelityAudit.violations` checks rows against a
:class:`ToleranceManifest`; the CLI turns a non-empty violation list
into a non-zero exit code, which is what CI enforces.

Error convention: ``rel_error = |simulated - model| / scale``.  The
scale is the model mean sojourn for the mean and waiting metrics, and
the bound itself for p95.  Normalising the waiting-time error by the
sojourn (not by the waiting time itself) keeps low-utilisation cells
meaningful — a 2x error on a microscopic wait is noise, not model
failure — and keeps the ratio finite for zero-wait deterministic cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.fidelity.analytic import AnalyticPrediction, predict
from repro.fidelity.cases import case_from_spec, fidelity_campaign
from repro.fidelity.manifest import ToleranceManifest
from repro.model.performance import PerformanceModel

#: Two-sided 95% Student-t quantiles by replication count (df = n - 1);
#: falls back to the normal quantile beyond the table.  Small fidelity
#: cells run 3-5 replications, where the normal interval would
#: understate the noise by 2x and more.
_T95 = {
    2: 12.706,
    3: 4.303,
    4: 3.182,
    5: 2.776,
    6: 2.571,
    8: 2.365,
    10: 2.262,
    16: 2.131,
    32: 2.040,
}
_Z95 = 1.959963984540054


def _t95(n: int) -> float:
    if n in _T95:
        return _T95[n]
    # Between table entries, use the largest count <= n: its t is the
    # *larger* (fewer-samples) quantile, so the interval stays
    # conservative instead of understating the noise.
    best = _Z95
    for count, value in sorted(_T95.items()):
        if count > n:
            break
        best = value
    return best


def _mean_ci(samples: Sequence[float]) -> Tuple[Optional[float], Optional[float]]:
    """(mean, 95% CI half-width) of i.i.d. replication-level samples."""
    values = [s for s in samples if s is not None]
    if not values:
        return None, None
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, None
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    half = _t95(len(values)) * math.sqrt(variance / len(values))
    return mean, half


@dataclass(frozen=True)
class MetricComparison:
    """One metric's model-vs-simulation comparison for one cell."""

    model: float
    simulated: Optional[float]
    ci_half_width: Optional[float]
    #: ``|simulated - model| / scale`` (scale = model mean sojourn).
    rel_error: Optional[float]
    #: CI half-width on the same scale (the noise yardstick).
    ci_rel: Optional[float]
    #: True when the disagreement is inside the replication CI.
    within_noise: Optional[bool]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "model": self.model,
            "simulated": self.simulated,
            "ci_half_width": self.ci_half_width,
            "rel_error": self.rel_error,
            "ci_rel": self.ci_rel,
            "within_noise": self.within_noise,
        }


def _compare(
    model: float, samples: Sequence[Optional[float]], scale: float
) -> MetricComparison:
    simulated, half = _mean_ci([s for s in samples if s is not None])
    if simulated is None or not math.isfinite(model) or scale <= 0.0:
        return MetricComparison(model, simulated, half, None, None, None)
    error = abs(simulated - model) / scale
    ci_rel = half / scale if half is not None else None
    within = None if half is None else abs(simulated - model) <= half
    return MetricComparison(model, simulated, half, error, ci_rel, within)


@dataclass(frozen=True)
class FidelityRow:
    """One grid cell's audit outcome."""

    label: str
    topology: str
    rho: float
    servers: int
    scv: float
    discipline: str
    replications: int
    prediction: AnalyticPrediction
    metrics: Dict[str, MetricComparison] = field(default_factory=dict)
    #: Arrival-model kind driving the cell (``"poisson"`` for the
    #: workload's own arrivals — the analytic model's assumption).
    arrival: str = "poisson"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "topology": self.topology,
            "rho": self.rho,
            "servers": self.servers,
            "scv": self.scv,
            "discipline": self.discipline,
            "replications": self.replications,
            "prediction": self.prediction.to_dict(),
            "metrics": {
                name: comparison.to_dict()
                for name, comparison in self.metrics.items()
            },
            "arrival": self.arrival,
        }


@dataclass(frozen=True)
class Violation:
    """One metric exceeding its manifest tolerance on one cell."""

    label: str
    metric: str
    rel_error: float
    tolerance: float
    within_noise: Optional[bool]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "metric": self.metric,
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
            "within_noise": self.within_noise,
        }


@dataclass(frozen=True)
class FidelityAudit:
    """All rows of one audit run plus campaign-level accounting."""

    grid: str
    rows: Tuple[FidelityRow, ...]
    computed: int
    reused: int

    def violations(self, manifest: ToleranceManifest) -> List[Violation]:
        found: List[Violation] = []
        for row in self.rows:
            for metric, comparison in row.metrics.items():
                error = comparison.rel_error
                tolerance = manifest.tolerance_for(
                    metric,
                    topology=row.topology,
                    discipline=row.discipline,
                    scv=row.scv,
                    rho=row.rho,
                    arrival=row.arrival,
                )
                if math.isinf(tolerance):
                    continue  # metric not enforced by this manifest
                if error is None:
                    # An enforced metric that *cannot* be compared — the
                    # model returned a non-finite prediction, or the
                    # simulation produced no samples — is itself a
                    # violation: "unverifiable" must never read as
                    # "agrees", or a regression to inf/nan (or a runtime
                    # change that stops reporting a metric) would sail
                    # through the very gate built to catch it.
                    found.append(
                        Violation(
                            label=row.label,
                            metric=metric,
                            rel_error=math.inf,
                            tolerance=tolerance,
                            within_noise=None,
                        )
                    )
                    continue
                if error > tolerance:
                    found.append(
                        Violation(
                            label=row.label,
                            metric=metric,
                            rel_error=error,
                            tolerance=tolerance,
                            within_noise=comparison.within_noise,
                        )
                    )
        return found

    def worst_errors(self) -> Dict[str, Dict[str, float]]:
        """``{metric: {topology: max rel_error}}`` — the README table."""
        table: Dict[str, Dict[str, float]] = {}
        for row in self.rows:
            for metric, comparison in row.metrics.items():
                if comparison.rel_error is None:
                    continue
                bucket = table.setdefault(metric, {})
                bucket[row.topology] = max(
                    bucket.get(row.topology, 0.0), comparison.rel_error
                )
        return table

    def to_dict(self) -> Dict[str, Any]:
        return {
            "grid": self.grid,
            "computed": self.computed,
            "reused": self.reused,
            "rows": [row.to_dict() for row in self.rows],
            "worst_errors": self.worst_errors(),
        }


def _audit_cell(cell_result) -> FidelityRow:
    spec = cell_result.cell.spec
    workload = case_from_spec(spec)
    prediction = predict(workload)
    scale = prediction.mean_sojourn

    replications = cell_result.summary.replications
    mean_samples = [r.mean_sojourn for r in replications]
    p95_samples = [r.p95_sojourn for r in replications]

    # Visit-weighted per-operator waiting time, per replication.  Visit
    # ratios come from the analytic traffic equations — identical for
    # every replication of the cell by construction.
    model = PerformanceModel.from_topology(workload.build())
    visits = dict(zip(model.operator_names, model.network.visit_ratios()))
    wait_samples: List[Optional[float]] = []
    for replication in replications:
        waits = replication.operator_waits
        if waits is None or any(waits.get(n) is None for n in visits):
            wait_samples.append(None)  # pre-audit store record
            continue
        wait_samples.append(
            sum(ratio * waits[name] for name, ratio in visits.items())
        )

    metrics = {
        "mean_sojourn": _compare(prediction.mean_sojourn, mean_samples, scale),
        "waiting_time": _compare(prediction.waiting_time, wait_samples, scale),
        # The p95 bound is scaled by itself (always >= the mean > 0), so
        # its error reads as "fraction of the bound", like the others.
        "p95_sojourn": _compare(
            prediction.p95_sojourn, p95_samples, prediction.p95_sojourn
        ),
    }
    arrival = "poisson"
    if spec.arrival_model is not None:
        arrival = str(spec.arrival_model.get("kind", "poisson"))
    return FidelityRow(
        label=cell_result.cell.label,
        topology=workload.topology,
        rho=workload.rho,
        servers=workload.servers,
        scv=workload.scv,
        discipline=spec.queue_discipline,
        replications=len(replications),
        prediction=prediction,
        metrics=metrics,
        arrival=arrival,
    )


def run_audit(
    grid: str = "small",
    *,
    campaign: Optional[CampaignSpec] = None,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
) -> FidelityAudit:
    """Execute a fidelity grid and score every cell.

    ``campaign`` overrides the named grid (used by tests to audit
    hand-built case lists through the identical pipeline).  With a
    ``store``, completed replications are reused — re-checking a grid
    against a new manifest costs no simulation at all.
    """
    campaign = campaign if campaign is not None else fidelity_campaign(grid)
    runner = CampaignRunner(store, max_workers=max_workers)
    result = runner.run(campaign)
    rows = tuple(_audit_cell(cell_result) for cell_result in result.cells)
    return FidelityAudit(
        grid=grid,
        rows=rows,
        computed=result.computed,
        reused=result.reused,
    )
