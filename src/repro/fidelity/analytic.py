"""Closed-form predictions for one fidelity cell.

For a :class:`~repro.apps.fidelity.FidelityWorkload` every quantity the
audit compares is available analytically:

- ``mean_sojourn`` — Eq. (3) with the Allen-Cunneen service-SCV
  correction (:class:`~repro.model.refined.RefinedPerformanceModel`),
  which reduces to the paper's plain M/M/k model at SCV 1;
- ``mean_sojourn_mmk`` — the *uncorrected* M/M/k value, reported so the
  audit quantifies how much the paper's exponential assumption costs on
  non-exponential cells;
- ``waiting_time`` — the visit-weighted mean waiting time
  ``sum_i (lambda_i/lambda_0) * E[W_i]`` (same composition as Eq. (3)
  minus the service terms);
- ``service_time`` — the visit-weighted service component
  ``sum_i (lambda_i/lambda_0) / mu_i`` (exact: service draws are i.i.d.
  from the declared distribution);
- ``p95_sojourn`` — the normal-approximation quantile bound from
  :func:`repro.scheduler.percentile.sojourn_quantile_bound` (M/M/k
  moments; the audit records its error envelope per topology/SCV).

Known approximation gaps the audit is *expected* to surface (and the
tolerance manifest documents rather than hides):

- fan-out topologies: the simulator measures tuple-*tree* completion,
  the max over parallel branches, while Eq. (3) adds the branches — the
  model systematically over-predicts there;
- non-exponential service: per-operator waits follow Allen-Cunneen only
  approximately, and downstream arrival processes are no longer Poisson;
- the p95 bound: a planning bound, not an estimator (see its docstring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.apps.fidelity import FidelityWorkload
from repro.model.performance import PerformanceModel
from repro.model.refined import RefinedPerformanceModel
from repro.queueing import mgk
from repro.scheduler.percentile import sojourn_quantile_bound


@dataclass(frozen=True)
class AnalyticPrediction:
    """Every model-side number for one cell (see module docstring)."""

    mean_sojourn: float
    mean_sojourn_mmk: float
    waiting_time: float
    service_time: float
    p95_sojourn: float
    utilisation: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean_sojourn": self.mean_sojourn,
            "mean_sojourn_mmk": self.mean_sojourn_mmk,
            "waiting_time": self.waiting_time,
            "service_time": self.service_time,
            "p95_sojourn": self.p95_sojourn,
            "utilisation": self.utilisation,
        }


def predict(workload: FidelityWorkload, *, q: float = 0.95) -> AnalyticPrediction:
    """Analytic predictions for ``workload`` at its own allocation."""
    topology = workload.build()
    refined = RefinedPerformanceModel.from_topology(topology)
    plain = refined.plain()
    network = refined.network
    allocation = [workload.servers] * len(workload.operator_names)

    mean_refined = refined.expected_sojourn(allocation)
    mean_mmk = plain.expected_sojourn(allocation)

    waiting = 0.0
    service = 0.0
    for load, k, cs2 in zip(network.loads, allocation, refined.service_scvs):
        visits = load.arrival_rate / network.external_rate
        wait = mgk.expected_waiting_time_gg(
            load.arrival_rate, load.service_rate, k, ca2=1.0, cs2=cs2
        )
        if math.isinf(wait):
            waiting = math.inf
        elif not math.isinf(waiting):
            waiting += visits * wait
        service += visits / load.service_rate

    p95 = sojourn_quantile_bound(plain, allocation, q=q)
    utilisation = max(
        load.arrival_rate / (k * load.service_rate)
        for load, k in zip(network.loads, allocation)
    )
    return AnalyticPrediction(
        mean_sojourn=mean_refined,
        mean_sojourn_mmk=mean_mmk,
        waiting_time=waiting,
        service_time=service,
        p95_sojourn=p95,
        utilisation=utilisation,
    )
