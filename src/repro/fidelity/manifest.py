"""Tolerance manifest: the committed error envelope the audit enforces.

The manifest (``tests/golden/fidelity_tolerances.json``) records, per
metric, how large a relative model/simulator disagreement is *expected
and accepted* — the measured approximation error of the analytic model
plus headroom for cross-platform floating-point drift.  Tier-1 tests
and the CI ``fidelity-smoke`` job check audits against it, so a model
or engine change that silently degrades agreement fails loudly, while
a deliberate change ships with an updated manifest in the same diff.

Lookup is by metric with optional override groups::

    {
      "version": 1,
      "metrics": {
        "mean_sojourn": {
          "default": 0.08,
          "topology": {"fanout": 0.5},
          "discipline": {"jsq": 0.12},
          "scv": {"4": 0.2},
          "rho": {"0.9": 0.25}
        }
      }
    }

A cell's tolerance is the **max** of the default and every override
that applies to it (its topology, its discipline, its service SCV and
its utilisation — near-saturated queues mix slowly, so their sample
noise needs a looser envelope).  The max rule keeps the semantics
monotone — an override only ever *loosens* the envelope for the harder
regime it names — and makes tightening any single entry strictly
stricter, which is what the deliberate-tightening regression test
exercises.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.exceptions import ConfigurationError

MANIFEST_VERSION = 1

#: Override group names, in the order reports list them.  ``arrival``
#: (keyed by arrival-model kind, baseline ``"poisson"``) lets the burst
#: grid's deliberately-larger drift carry its own envelope without
#: loosening the Poisson cells'.
_GROUPS = ("topology", "discipline", "scv", "rho", "arrival")


def _format_scv(scv: float) -> str:
    """Canonical manifest key for an SCV value (``1.0`` -> ``"1"``)."""
    return f"{scv:g}"


@dataclass(frozen=True)
class ToleranceManifest:
    """Per-metric relative-error tolerances with override groups."""

    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self):
        for metric, entry in self.metrics.items():
            if "default" not in entry:
                raise ConfigurationError(
                    f"manifest metric {metric!r} has no 'default' tolerance"
                )
            for key in entry:
                if key != "default" and key not in _GROUPS:
                    raise ConfigurationError(
                        f"manifest metric {metric!r}: unknown key {key!r}"
                    )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def tolerance_for(
        self,
        metric: str,
        *,
        topology: str,
        discipline: str,
        scv: float,
        rho: float,
        arrival: str = "poisson",
    ) -> float:
        """The cell's tolerance: max of default + applicable overrides."""
        return self.tolerance_with_rule(
            metric,
            topology=topology,
            discipline=discipline,
            scv=scv,
            rho=rho,
            arrival=arrival,
        )[0]

    def tolerance_with_rule(
        self,
        metric: str,
        *,
        topology: str,
        discipline: str,
        scv: float,
        rho: float,
        arrival: str = "poisson",
    ) -> Tuple[float, str]:
        """``(tolerance, rule)``: the envelope plus the entry that set it.

        The rule names the manifest entry binding under the max rule —
        ``"default"`` or ``"<group>:<key>"`` (``"rho:0.9"``, say).  When
        several entries tie, the first in manifest order wins (default,
        then the override groups in :data:`_GROUPS` order), so the
        attribution is deterministic.  Unlisted metrics report
        ``(inf, "unlisted")`` — reported by the audit, never certified.
        """
        entry = self.metrics.get(metric)
        if entry is None:
            return math.inf, "unlisted"
        tolerance = float(entry["default"])
        rule = "default"
        for group, value in (
            ("topology", topology),
            ("discipline", discipline),
            ("scv", _format_scv(scv)),
            ("rho", _format_scv(rho)),
            ("arrival", arrival),
        ):
            override = entry.get(group, {}).get(value)
            if override is not None and float(override) > tolerance:
                tolerance = float(override)
                rule = f"{group}:{value}"
        return tolerance, rule

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "version": MANIFEST_VERSION,
            "metrics": {
                metric: dict(entry)
                for metric, entry in sorted(self.metrics.items())
            },
        }
        if self.description:
            payload["description"] = self.description
        return payload

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ToleranceManifest":
        if raw.get("version") != MANIFEST_VERSION:
            raise ConfigurationError(
                f"unsupported manifest version {raw.get('version')!r}"
                f" (expected {MANIFEST_VERSION})"
            )
        metrics = raw.get("metrics")
        if not isinstance(metrics, Mapping):
            raise ConfigurationError("manifest 'metrics' must be a mapping")
        return cls(
            metrics={m: dict(e) for m, e in metrics.items()},
            description=str(raw.get("description", "")),
        )

    @classmethod
    def load(cls, path: Path) -> "ToleranceManifest":
        try:
            raw = json.loads(Path(path).read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read tolerance manifest {path}: {exc}"
            ) from None
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"invalid tolerance manifest {path}: {exc}"
            ) from None
        return cls.from_dict(raw)

    def save(self, path: Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def generate_manifest(
    rows: Iterable,  # Iterable[FidelityRow]; untyped to avoid the cycle
    *,
    headroom: float = 1.6,
    floor: float = 0.02,
    description: str = "",
) -> ToleranceManifest:
    """Derive a manifest from observed audit rows.

    The *default* of each metric is the max relative error over the
    baseline regime (single-operator, exponential service, ``shared``
    discipline, utilisation below 0.85) times ``headroom``.  Override
    entries are conditioned: a topology override only folds in cells
    that are otherwise baseline (SCV 1, shared, low rho), and likewise
    for the other groups — so a fan-out cell's composition error can
    never loosen the envelope of unrelated shared-discipline cells.
    ``floor`` keeps tolerances from collapsing below replication noise
    on near-perfect cells.
    """
    if headroom < 1.0:
        raise ConfigurationError("headroom must be >= 1.0")
    rows = list(rows)
    observed: Dict[str, Dict[str, Dict[str, float]]] = {}
    baseline: Dict[str, float] = {}
    for row in rows:
        arrival = getattr(row, "arrival", "poisson")
        is_baseline = {
            "topology": row.topology == "single",
            "discipline": row.discipline == "shared",
            "scv": row.scv == 1.0,
            # Slow-mixing near-saturated cells get their own envelope.
            "rho": row.rho < 0.85,
            "arrival": arrival == "poisson",
        }
        keys = {
            "topology": row.topology,
            "discipline": row.discipline,
            "scv": _format_scv(row.scv),
            "rho": _format_scv(row.rho),
            "arrival": arrival,
        }
        for metric, comparison in row.metrics.items():
            error = comparison.rel_error
            if error is None or math.isinf(error) or math.isnan(error):
                continue
            groups = observed.setdefault(metric, {g: {} for g in _GROUPS})
            for group, key in keys.items():
                # Only attribute the error to this group when every
                # *other* dimension is baseline (see docstring).
                if all(v for g, v in is_baseline.items() if g != group):
                    bucket = groups[group]
                    bucket[key] = max(bucket.get(key, 0.0), error)
            if all(is_baseline.values()):
                baseline[metric] = max(baseline.get(metric, 0.0), error)

    metrics: Dict[str, Dict[str, Any]] = {}
    for metric, groups in observed.items():
        default = max(floor, baseline.get(metric, 0.0) * headroom)
        entry: Dict[str, Any] = {"default": round(default, 4)}
        for group in _GROUPS:
            _add_overrides(entry, group, groups[group], default, headroom, floor)
        metrics[metric] = entry

    manifest = ToleranceManifest(metrics=metrics, description=description)
    # Coverage pass: cells non-baseline in two or more dimensions (a
    # fanout at rho 0.95, or an MMPP cell at rho 0.9, say) contribute
    # to no conditioned override above, so the composed max might not
    # reach their error.  The generated manifest must cover the run
    # that produced it — the regenerate-and-ship contract — so lift
    # the cell's dominant override until it does: its arrival kind for
    # non-Poisson traffic (so burst drift never loosens Poisson cells),
    # its topology (the dominant structural dimension) otherwise.
    for row in rows:
        arrival = getattr(row, "arrival", "poisson")
        for metric, comparison in row.metrics.items():
            error = comparison.rel_error
            if error is None or math.isinf(error) or math.isnan(error):
                continue
            tolerance = manifest.tolerance_for(
                metric,
                topology=row.topology,
                discipline=row.discipline,
                scv=row.scv,
                rho=row.rho,
                arrival=arrival,
            )
            if error > tolerance:
                if arrival != "poisson":
                    group, key = "arrival", arrival
                else:
                    group, key = "topology", row.topology
                overrides = metrics[metric].setdefault(group, {})
                overrides[key] = round(
                    max(
                        overrides.get(key, 0.0),
                        max(floor, error * headroom),
                    ),
                    4,
                )
    return ToleranceManifest(metrics=metrics, description=description)


def _add_overrides(
    entry: Dict[str, Any],
    group: str,
    bucket: Dict[str, float],
    default: float,
    headroom: float,
    floor: float,
) -> None:
    """Attach ``group`` overrides for regimes whose observed error (with
    headroom) exceeds the metric's default."""
    overrides = {
        key: round(max(floor, value * headroom), 4)
        for key, value in sorted(bucket.items())
        if value * headroom > default
    }
    if overrides:
        entry[group] = overrides
