"""Model-vs-simulation fidelity audit (see :mod:`repro.fidelity.audit`).

DRS's premise is that the queueing model predicts the runtime well
enough to drive allocation decisions.  This package measures that
premise: it runs matched pairs of (analytic prediction, discrete-event
simulation) over a declarative grid of micro-topologies, reports
per-metric relative error with confidence half-widths, and enforces a
committed tolerance manifest so any change that silently degrades
model/simulator agreement fails CI.
"""

from repro.fidelity.analytic import AnalyticPrediction, predict
from repro.fidelity.audit import FidelityAudit, FidelityRow, run_audit
from repro.fidelity.cases import GRIDS, FidelityCase, fidelity_campaign, grid_cases
from repro.fidelity.manifest import ToleranceManifest, generate_manifest

__all__ = [
    "AnalyticPrediction",
    "FidelityAudit",
    "FidelityCase",
    "FidelityRow",
    "GRIDS",
    "ToleranceManifest",
    "fidelity_campaign",
    "generate_manifest",
    "grid_cases",
    "predict",
    "run_audit",
]
