"""Dependency-light HTTP front end: campaigns in, aggregates out.

:class:`CampaignService` wires the three service pieces together — a
:class:`~repro.service.jobs.JobQueue` persisted under the store, a
:class:`~repro.service.jobs.JobExecutor` worker pool, and a threaded
stdlib HTTP server — over one shared result store.  Because every job
executes through :func:`repro.api.run_campaign` against that store, a
campaign submitted over HTTP produces results bit-identical to the
same spec run through :class:`~repro.campaigns.runner.CampaignRunner`
directly, and concurrent tenants share completed replications through
content addressing.

Endpoints (all JSON)::

    GET    /health                    liveness + job-state counts
    GET    /jobs                      every job, oldest first
    POST   /jobs                      submit a campaign (or scenario)
    GET    /jobs/<id>                 job + per-cell progress by path
    GET    /jobs/<id>/aggregates      mean/CI/p95 per cell, from the store
    GET    /jobs/<id>/stream          NDJSON aggregate snapshots until done
    POST   /jobs/<id>/cancel          cooperative cancel
    DELETE /jobs/<id>                 alias for cancel

``POST /jobs`` accepts a bare :class:`CampaignSpec` JSON object, a bare
:class:`ScenarioSpec` object (wrapped into a single-cell campaign), or
an envelope ``{"campaign": {...}}`` / ``{"scenario": {...}}`` with an
optional ``"workers"`` override.  Validation failures are 400s carrying
the library's own error message.

The module is stdlib-only (``http.server`` + ``threading``): the
service adds no runtime dependency to the package.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import api
from repro.campaigns.spec import CampaignSpec
from repro.exceptions import DRSError
from repro.service.jobs import (
    TERMINAL_STATES,
    JobExecutor,
    JobQueue,
    JobRecord,
    job_progress,
)

#: Subdirectory of the store root where job records persist.
JOBS_DIR = "jobs"

#: Default TCP port (no meaning beyond "unassigned and memorable").
DEFAULT_PORT = 8151


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`CampaignService` needs to come up."""

    store: Path
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Concurrent jobs (worker threads draining the queue).
    job_workers: int = 2
    #: Per-job replication processes (``None`` = all cores).
    campaign_workers: Optional[int] = None
    #: Tolerance manifest for hybrid/analytic submissions (``None`` =
    #: the evaluator's own committed-manifest search).
    manifest: Optional[Path] = None
    safety_margin: float = 1.0
    #: Seconds between aggregate snapshots on the stream endpoint.
    poll_interval: float = 0.25


def campaign_from_submission(raw: Any) -> Tuple[CampaignSpec, Optional[int]]:
    """The campaign (and optional worker override) a POST body asks for.

    Accepts the four documented shapes; a scenario submission becomes a
    single-cell campaign whose one cell keeps the scenario's name, so
    scenario and campaign submissions flow through one job pipeline.
    """
    if not isinstance(raw, Mapping):
        raise DRSError("submission body must be a JSON object")
    workers = raw.get("workers") if isinstance(raw, Mapping) else None
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise DRSError(f"workers must be >= 1, got {workers}")
    if "campaign" in raw:
        return api.load_campaign(raw["campaign"]), workers
    if "scenario" in raw:
        return _wrap_scenario(raw["scenario"]), workers
    if "base" in raw:
        return api.load_campaign(raw), workers
    if "workload" in raw:
        return _wrap_scenario(raw), workers
    raise DRSError(
        "submission must be a CampaignSpec object, a ScenarioSpec object,"
        " or an envelope with a 'campaign' or 'scenario' key"
    )


def _wrap_scenario(raw: Any) -> CampaignSpec:
    spec = api.load_scenario(raw)  # validates before wrapping
    base = spec.to_dict()
    name = base.pop("name")
    return CampaignSpec(name=name, base=base)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`CampaignService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # The default handler logs every request to stderr; the service
    # keeps quiet unless asked (config lives on the server object).
    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def service(self) -> "CampaignService":
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise DRSError("request body is empty")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise DRSError(f"request body is not valid JSON: {exc}") from None

    def _job_or_404(self, job_id: str) -> Optional[JobRecord]:
        job = self.service.queue.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["health"]:
            return self._send_json(
                200,
                {"status": "ok", "jobs": self.service.queue.counts()},
            )
        if parts == ["jobs"]:
            return self._send_json(
                200,
                {"jobs": [j.to_dict() for j in self.service.queue.list()]},
            )
        if len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_json(200, self.service.job_status(job))
            return
        if len(parts) == 3 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is None:
                return
            if parts[2] == "aggregates":
                return self._send_json(200, self.service.job_aggregates(job))
            if parts[2] == "stream":
                return self._stream(job)
        self._error(404, f"no route for GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            try:
                campaign, workers = campaign_from_submission(self._read_body())
            except DRSError as exc:
                return self._error(400, str(exc))
            job, enqueued = self.service.submit(campaign, workers=workers)
            return self._send_json(
                202 if enqueued else 200,
                {"job": job.to_dict(), "enqueued": enqueued},
            )
        if len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "cancel":
            return self._cancel(parts[1])
        self._error(404, f"no route for POST {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return self._cancel(parts[1])
        self._error(404, f"no route for DELETE {self.path}")

    def _cancel(self, job_id: str) -> None:
        job = self.service.queue.cancel(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        self._send_json(200, {"job": job.to_dict()})

    # ------------------------------------------------------------------
    # streaming aggregates
    # ------------------------------------------------------------------
    def _stream(self, job: JobRecord) -> None:
        """Chunked NDJSON: one aggregate snapshot per line, as
        replications land in the store; closes once the job is
        terminal (final snapshot included)."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        last = None
        seq = 0
        try:
            while True:
                current = self.service.queue.get(job.id) or job
                snapshot = self.service.job_snapshot(current)
                line = json.dumps(snapshot, sort_keys=True) + "\n"
                if line != last:
                    snapshot["seq"] = seq
                    seq += 1
                    payload = (
                        json.dumps(snapshot, sort_keys=True) + "\n"
                    ).encode("utf-8")
                    self.wfile.write(
                        f"{len(payload):x}\r\n".encode() + payload + b"\r\n"
                    )
                    self.wfile.flush()
                    last = line
                # Decide on the state that was *written*, not the live
                # record: the job may turn terminal mid-iteration, and
                # the stream must end on a terminal line.
                if snapshot["state"] in TERMINAL_STATES:
                    break
                time.sleep(self.service.config.poll_interval)
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True


class CampaignService:
    """The HTTP campaign service: queue + executor + server, one store.

    >>> import tempfile
    >>> from repro.service.server import CampaignService, ServiceConfig
    >>> service = CampaignService(
    ...     ServiceConfig(store=tempfile.mkdtemp(), port=0))
    >>> service.start()                   # doctest: +SKIP
    >>> service.url                       # doctest: +SKIP
    'http://127.0.0.1:43121'
    >>> service.shutdown()                # doctest: +SKIP

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`).  :meth:`start` serves on a background thread;
    :meth:`serve_forever` blocks (the ``repro serve`` verb).  Shutdown
    interrupts running jobs cooperatively and re-queues them, so a
    bounce loses no completed replication and recomputes nothing that
    finished — the store, not the process, is the source of truth.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        store_root = Path(config.store)
        self.queue = JobQueue(store_root / JOBS_DIR)
        self.executor = JobExecutor(
            self.queue,
            store_root,
            job_workers=config.job_workers,
            campaign_workers=config.campaign_workers,
            manifest=config.manifest,
            safety_margin=config.safety_margin,
        )
        self._httpd = ThreadingHTTPServer(
            (config.host, config.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve on a background thread (tests, embedded use)."""
        import threading

        self.executor.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI verb)."""
        self.executor.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop serving and interrupt jobs (they re-queue for resume)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self.executor.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------
    # views used by the handler
    # ------------------------------------------------------------------
    def submit(
        self, campaign: CampaignSpec, *, workers: Optional[int] = None
    ) -> Tuple[JobRecord, bool]:
        job, enqueued = self.queue.submit(campaign, workers=workers)
        if enqueued:
            self.executor.notify()
        return job, enqueued

    def _store(self):
        return api.open_store(Path(self.config.store))

    def job_status(self, job: JobRecord) -> Dict[str, Any]:
        """The job record plus live per-cell, per-path progress."""
        payload = job.to_dict()
        campaign = CampaignSpec.from_dict(job.campaign)
        payload["progress"] = job_progress(campaign, self._store())
        return payload

    def job_aggregates(self, job: JobRecord) -> Dict[str, Any]:
        """Incremental mean/CI/p95 aggregates from the shared store."""
        campaign = CampaignSpec.from_dict(job.campaign)
        return api.aggregate(campaign, self._store()).to_dict()

    def job_snapshot(self, job: JobRecord) -> Dict[str, Any]:
        """One stream line: state + progress + current aggregates."""
        campaign = CampaignSpec.from_dict(job.campaign)
        store = self._store()
        return {
            "job": job.id,
            "state": job.state,
            "progress": job_progress(campaign, store),
            "aggregate": api.aggregate(campaign, store).to_dict(),
        }
