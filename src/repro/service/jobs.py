"""Persistent job queue and worker pool over the campaign engine.

A *job* is one campaign submission: its spec (content-addressed into
the job id), its lifecycle state, and — once finished — a condensed
result.  :class:`JobQueue` keeps the authoritative in-memory table and
mirrors every transition to one JSON file per job under
``<store>/jobs/``, so a killed server reboots knowing exactly what was
queued, what finished, and what was interrupted; interrupted jobs are
re-enqueued and — because execution runs through the content-addressed
:class:`~repro.campaigns.store.ResultStore` — resume computing only the
replications that never landed.

:class:`JobExecutor` is the worker pool: N daemon threads claim queued
jobs and execute them through :func:`repro.api.run_campaign` (each job
still fans its replications out over a process pool).  Cancellation is
cooperative: every job carries a :class:`threading.Event` that the
cancel endpoint sets and the campaign runner polls between replication
completions.

Job ids are content addresses (:func:`job_id_for`): the SHA-256 of the
campaign's canonical JSON, so resubmitting the same campaign re-runs
the *same* job — and, with the store already populated, reports
``computed=0``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import api
from repro.campaigns.runner import CampaignResult
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore, record_path
from repro.exceptions import CampaignCancelled, ConfigurationError, DRSError
from repro.scenarios.runner import replication_seed

#: Every state a job can be in.  ``queued`` and ``running`` are live;
#: the rest are terminal (``cancelled`` jobs may be resubmitted, which
#: re-enqueues the same job id).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves on its own.
TERMINAL_STATES = ("done", "failed", "cancelled")


def job_id_for(campaign: CampaignSpec) -> str:
    """Content-addressed job id: SHA-256 of the canonical campaign JSON.

    Submitting byte-different spellings of the same campaign (key
    order, whitespace) yields the same id; changing any field — axes,
    base, evaluation mode — yields a new job.
    """
    canonical = json.dumps(
        campaign.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def condense_result(result: CampaignResult) -> Dict[str, Any]:
    """The slice of a :class:`CampaignResult` worth persisting per job.

    Full results carry every replication's timeline and action log;
    the job record keeps only run accounting (computed / reused /
    analytic) and one summary row per cell — everything else stays
    reconstructable from the store.
    """
    return {
        "campaign": result.campaign.name,
        "evaluation": result.campaign.evaluation,
        "computed": result.computed,
        "reused": result.reused,
        "analytic": result.analytic,
        "cells": [
            {
                "label": cell.cell.label,
                "path": cell.path,
                "computed": cell.computed,
                "reused": cell.reused,
                "mean_sojourn": cell.summary.mean_sojourn,
                "std_between": cell.summary.std_between,
            }
            for cell in result.cells
        ],
    }


def job_progress(campaign: CampaignSpec, store: ResultStore) -> Dict[str, Any]:
    """Per-cell completion against the store, split by evaluation path.

    Counts, for every simulation cell, how many of its replications
    already hold a store record — and whether each record came from the
    simulator or the analytic fast path — so a poll shows exactly how a
    hybrid campaign is progressing and what a resume would skip.
    """
    cells: List[Dict[str, Any]] = []
    total = stored = 0
    for cell in campaign.expand():
        if cell.spec.kind != "simulation":
            continue
        simulated = analytic = 0
        for index in range(cell.spec.replications):
            seed = replication_seed(cell.spec.seed, index)
            record = store.load_record(cell.spec_hash, seed)
            if record is None:
                continue
            if record_path(record) == "analytic":
                analytic += 1
            else:
                simulated += 1
        replications = cell.spec.replications
        cells.append(
            {
                "cell": cell.label,
                "replications": replications,
                "simulated": simulated,
                "analytic": analytic,
                "missing": replications - simulated - analytic,
            }
        )
        total += replications
        stored += simulated + analytic
    return {"total": total, "stored": stored, "cells": cells}


@dataclass
class JobRecord:
    """One submitted campaign and everything known about its lifecycle."""

    id: str
    campaign: Dict[str, Any]
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    workers: Optional[int] = None
    runs: int = 1
    error: str = ""
    result: Optional[Dict[str, Any]] = None
    #: Cooperative cancellation flag, owned by the queue (re-created on
    #: every enqueue; never persisted).
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: True when a *user* requested the cancel (vs. a server shutdown
    #: interrupting the job) — decides cancelled-vs-requeued when the
    #: runner acknowledges.  In-memory only, like the event.
    user_cancelled: bool = field(default=False, repr=False, compare=False)

    @property
    def name(self) -> str:
        return str(self.campaign.get("name", ""))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "campaign": self.campaign,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "workers": self.workers,
            "runs": self.runs,
            "error": self.error,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JobRecord":
        state = str(raw.get("state", "queued"))
        if state not in JOB_STATES:
            state = "queued"
        return cls(
            id=str(raw["id"]),
            campaign=dict(raw["campaign"]),
            state=state,
            submitted_at=float(raw.get("submitted_at", 0.0)),
            started_at=raw.get("started_at"),
            finished_at=raw.get("finished_at"),
            workers=raw.get("workers"),
            runs=int(raw.get("runs", 1)),
            error=str(raw.get("error", "")),
            result=raw.get("result"),
        )


class JobQueue:
    """Thread-safe, disk-mirrored table of jobs.

    Every mutation happens under one lock and is immediately persisted
    (atomic temp-file + ``os.replace``, the store's own discipline), so
    the on-disk view is never ahead of or behind the in-memory one by
    more than a single transition.  On construction, jobs found in
    ``running`` state are demoted to ``queued``: they belong to a
    server that died mid-run, and their completed replications are
    already in the result store.
    """

    def __init__(self, root: os.PathLike):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}
        self._load()

    @property
    def root(self) -> Path:
        return self._root

    def _load(self) -> None:
        for path in sorted(self._root.glob("*.json")):
            try:
                raw = json.loads(path.read_text())
                job = JobRecord.from_dict(raw)
            except (OSError, json.JSONDecodeError, KeyError, ValueError):
                continue  # torn write; the job is lost, the store is not
            if job.state == "running":
                # A server died mid-run: the store holds whatever
                # finished, so re-running computes only the remainder.
                job.state = "queued"
                job.started_at = None
                self._persist(job)
            self._jobs[job.id] = job

    def _persist(self, job: JobRecord) -> None:
        path = self._root / f"{job.id}.json"
        fd, tmp = tempfile.mkstemp(
            dir=self._root, prefix=f".{job.id}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(job.to_dict(), handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # submission & lookup
    # ------------------------------------------------------------------
    def submit(
        self, campaign: CampaignSpec, *, workers: Optional[int] = None
    ) -> Tuple[JobRecord, bool]:
        """Enqueue ``campaign``; returns ``(job, enqueued)``.

        A live job (queued/running) with the same content address is
        returned as-is (``enqueued=False``) — double-submitting an
        in-flight campaign never duplicates work.  A terminal job is
        re-enqueued as a fresh run of the same id; with the store
        already warm it completes immediately with ``computed=0``.
        """
        job_id = job_id_for(campaign)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and not job.terminal:
                return job, False
            if job is None:
                job = JobRecord(
                    id=job_id,
                    campaign=campaign.to_dict(),
                    submitted_at=time.time(),
                    workers=workers,
                )
                self._jobs[job_id] = job
            else:
                job.state = "queued"
                job.submitted_at = time.time()
                job.started_at = None
                job.finished_at = None
                job.error = ""
                job.result = None
                job.runs += 1
                job.workers = workers
                job.cancel_event = threading.Event()
                job.user_cancelled = False
            self._persist(job)
            return job, True

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[JobRecord]:
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: (j.submitted_at, j.id)
            )

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    # ------------------------------------------------------------------
    # lifecycle transitions
    # ------------------------------------------------------------------
    def claim_next(self) -> Optional[JobRecord]:
        """Atomically claim the oldest queued job (-> running)."""
        with self._lock:
            for job in self.list():
                if job.state == "queued":
                    job.state = "running"
                    job.started_at = time.time()
                    self._persist(job)
                    return job
            return None

    def finish(
        self,
        job_id: str,
        state: str,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: str = "",
    ) -> None:
        if state not in TERMINAL_STATES:
            raise ConfigurationError(f"{state!r} is not a terminal job state")
        with self._lock:
            job = self._jobs[job_id]
            job.state = state
            job.finished_at = time.time()
            job.result = result
            job.error = error
            self._persist(job)

    def requeue(self, job_id: str) -> None:
        """Put an interrupted job back in line (server shutdown path)."""
        with self._lock:
            job = self._jobs[job_id]
            job.state = "queued"
            job.started_at = None
            job.cancel_event = threading.Event()
            job.user_cancelled = False
            self._persist(job)

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Request cancellation; returns the job, or ``None`` if unknown.

        Queued jobs transition to ``cancelled`` immediately; running
        jobs get their event set and transition when the runner
        acknowledges (completed replications stay persisted either
        way).  Terminal jobs are returned unchanged.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.user_cancelled = True
            job.cancel_event.set()
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.time()
                job.error = "cancelled before starting"
                self._persist(job)
            return job

    def running(self) -> List[JobRecord]:
        with self._lock:
            return [j for j in self._jobs.values() if j.state == "running"]


class JobExecutor:
    """Background worker pool draining a :class:`JobQueue`.

    ``job_workers`` threads run concurrent *jobs*; each job's
    replications additionally fan out over ``campaign_workers``
    processes (``None`` = all cores) via the campaign runner.  All
    execution goes through :func:`repro.api.run_campaign` — the same
    call the CLI makes — against one shared store root, so concurrent
    tenants automatically share results through content addressing.
    """

    def __init__(
        self,
        queue: JobQueue,
        store_root: os.PathLike,
        *,
        job_workers: int = 2,
        campaign_workers: Optional[int] = None,
        manifest: Optional[os.PathLike] = None,
        safety_margin: float = 1.0,
    ):
        if job_workers < 1:
            raise ConfigurationError(
                f"job_workers must be >= 1, got {job_workers}"
            )
        self._queue = queue
        self._store_root = Path(store_root)
        self._campaign_workers = campaign_workers
        self._manifest = manifest
        self._safety_margin = safety_margin
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._loop, name=f"repro-job-{i}", daemon=True
            )
            for i in range(job_workers)
        ]

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def notify(self) -> None:
        """Wake idle workers (called after every submission)."""
        self._wake.set()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting work and interrupt running jobs.

        Running jobs see their cancel event, persist completed work,
        and are *re-queued* (not cancelled): on the next server start
        they resume from the store with zero recomputation.
        """
        self._stop.set()
        for job in self._queue.running():
            job.cancel_event.set()
        self._wake.set()
        for thread in self._threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            job = self._queue.claim_next()
            if job is None:
                self._wake.wait(timeout=0.1)
                self._wake.clear()
                continue
            self._run(job)

    def _run(self, job: JobRecord) -> None:
        try:
            campaign = CampaignSpec.from_dict(job.campaign)
            store = api.open_store(
                self._store_root, segment=f"job-{job.id[:12]}"
            )
            result = api.run_campaign(
                campaign,
                store=store,
                workers=job.workers or self._campaign_workers,
                manifest=self._manifest,
                safety_margin=self._safety_margin,
                cancel=job.cancel_event,
            )
            self._queue.finish(job.id, "done", result=condense_result(result))
        except CampaignCancelled:
            if self._stop.is_set() and not job.user_cancelled:
                # Shutdown interrupt, not a user cancel: resume later.
                self._queue.requeue(job.id)
            else:
                self._queue.finish(
                    job.id, "cancelled", error="cancelled by request"
                )
        except DRSError as exc:
            self._queue.finish(job.id, "failed", error=str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._queue.finish(
                job.id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
