"""``repro.service`` — campaigns over HTTP, resumable by construction.

The service layer turns the campaign engine into a long-running
simulation server without adding a single runtime dependency: a
stdlib-HTTP front end (:mod:`repro.service.server`), a persistent
content-addressed job queue with a worker pool
(:mod:`repro.service.jobs`), and a urllib client
(:mod:`repro.service.client`).  Everything executes through the
:mod:`repro.api` facade against one shared
:class:`~repro.campaigns.store.ResultStore`, so an HTTP-submitted
campaign is bit-identical to the same spec run in-process — and a
killed server resumes from the store with zero recomputation.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobExecutor,
    JobQueue,
    JobRecord,
    condense_result,
    job_id_for,
    job_progress,
)
from repro.service.server import (
    DEFAULT_PORT,
    CampaignService,
    ServiceConfig,
    campaign_from_submission,
)

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "DEFAULT_PORT",
    "CampaignService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceError",
    "JobExecutor",
    "JobQueue",
    "JobRecord",
    "campaign_from_submission",
    "condense_result",
    "job_id_for",
    "job_progress",
]
