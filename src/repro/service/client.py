"""Minimal urllib client for the campaign service.

:class:`ServiceClient` wraps the HTTP surface in plain method calls so
tests, examples and scripts never hand-roll requests.  Like the server
it talks to, it is stdlib-only.

>>> from repro.service import ServiceClient
>>> client = ServiceClient("http://127.0.0.1:8151")   # doctest: +SKIP
>>> job = client.submit(campaign={...})               # doctest: +SKIP
>>> final = client.wait(job["id"], timeout=60)        # doctest: +SKIP
>>> client.aggregates(job["id"])["cells"]             # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.exceptions import DRSError


class ServiceError(DRSError):
    """The service answered with an error (or did not answer at all)."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Typed-ish HTTP client over the campaign service endpoints."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read()).get("error", "")
            except (ValueError, OSError):
                pass
            raise ServiceError(
                detail or f"{method} {path} failed: HTTP {exc.code}",
                status=exc.code,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"{method} {path} failed: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def submit(
        self,
        *,
        campaign: Optional[Dict[str, Any]] = None,
        scenario: Optional[Dict[str, Any]] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a campaign (or bare scenario); returns the job record."""
        if (campaign is None) == (scenario is None):
            raise ServiceError(
                "submit() needs exactly one of campaign= or scenario="
            )
        body: Dict[str, Any] = {}
        if campaign is not None:
            body["campaign"] = campaign
        if scenario is not None:
            body["scenario"] = scenario
        if workers is not None:
            body["workers"] = workers
        return self._request("POST", "/jobs", body)["job"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """Job record + per-cell progress (``progress`` key)."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def aggregates(self, job_id: str) -> Dict[str, Any]:
        """Current mean/CI/p95 aggregates for the job's campaign."""
        return self._request("GET", f"/jobs/{job_id}/aggregates")

    def wait(
        self, job_id: str, *, timeout: float = 120.0, interval: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']!r} after {timeout}s"
                )
            time.sleep(interval)

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield aggregate snapshots from the NDJSON stream endpoint.

        The generator ends when the server closes the stream (job
        reached a terminal state); each item carries ``seq``, ``state``,
        ``progress`` and ``aggregate`` keys.
        """
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/stream",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"GET /jobs/{job_id}/stream failed: HTTP {exc.code}",
                status=exc.code,
            ) from None
