"""Execute scenario specs: N replications, N cores, one merged summary.

:class:`ScenarioRunner` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into results.  Each replication is an independent simulation whose seed
is *derived from the spec's base seed and the replication index*, so the
result set is identical no matter how many worker processes execute it
(replication 0 runs the base seed itself, keeping single-replication
scenarios bit-for-bit compatible with the legacy figure drivers).
Replications are distributed over a :class:`ProcessPoolExecutor`;
results are merged in index order, making the summary deterministic —
the property the determinism regression test pins down.
"""

from __future__ import annotations

import json
import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import (
    ClusterSpec,
    MeasurementConfig,
    OptimizationGoal,
    cluster_from_dict,
    measurement_from_dict,
)
from repro.exceptions import ConfigurationError
from repro.model.performance import PerformanceModel
from repro.platform import PlatformSpec
from repro.scenarios.binding import (
    PolicyBinding,
    passive_recommendation,
)
from repro.scenarios.policies import DRSControllerPolicy
from repro.scenarios.registry import create_policy, policy_uses_cluster
from repro.scenarios.spec import DEFAULT_HOP_LATENCY, ScenarioSpec
from repro.scheduler.allocation import Allocation
from repro.sim.cluster import Cluster
from repro.sim.engine import Simulator
from repro.sim.negotiator import SimResourceNegotiator
from repro.sim.runtime import RuntimeOptions, TopologyRuntime
from repro.utils.rng import derive_seed
from repro.workloads.closed_loop import create_closed_loop_source
from repro.workloads.models import create_arrival_model


def replication_seed(base_seed: int, index: int) -> int:
    """Deterministic seed of replication ``index``.

    Replication 0 is the base seed itself (bit-for-bit compatibility
    with the single-run figure drivers); later replications derive
    independent seeds via SHA-256, stable across platforms and worker
    counts.

    >>> replication_seed(7, 0)
    7
    >>> replication_seed(7, 1)
    15687403071522711833
    >>> replication_seed(7, 1) == replication_seed(7, 1)   # stable
    True
    """
    if index < 0:
        raise ConfigurationError(f"replication index must be >= 0, got {index}")
    if index == 0:
        return int(base_seed)
    return derive_seed(base_seed, "replication", str(index))


@dataclass(frozen=True)
class AppliedAction:
    """One policy decision the binding actually executed."""

    time: float
    action: str
    allocation: str
    machines: Optional[int]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "action": self.action,
            "allocation": self.allocation,
            "machines": self.machines,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "AppliedAction":
        return cls(
            time=float(raw["time"]),
            action=str(raw["action"]),
            allocation=str(raw["allocation"]),
            machines=raw.get("machines"),
        )


@dataclass(frozen=True)
class ReplicationResult:
    """Everything one replication reports back to the merger."""

    index: int
    seed: int
    duration: float
    external_tuples: int
    completed_trees: int
    dropped_tuples: int
    dropped_trees: int
    rebalances: int
    mean_sojourn: Optional[float]
    std_sojourn: Optional[float]
    p95_sojourn: Optional[float]
    final_allocation: str
    final_machines: Optional[int]
    actions: Tuple[AppliedAction, ...]
    timeline: Tuple[Tuple[float, Optional[float], int], ...]
    recommendation: Optional[str]
    #: Per-operator mean waiting / service time over the whole run (the
    #: runtime's cumulative accumulators; ``None`` for operators that
    #: processed nothing).  Added for the fidelity audit — absent in
    #: records stored before it existed, hence the ``None`` defaults.
    operator_waits: Optional[Dict[str, Optional[float]]] = None
    operator_services: Optional[Dict[str, Optional[float]]] = None
    #: Reactive-load counters (closed-loop clients / backpressure):
    #: total source-blocked simulated seconds, admission-controller
    #: rejections, and requests clients attempted.  Additive-optional
    #: like the fields above, so pre-existing stored records rehydrate.
    blocked_time: Optional[float] = None
    admission_rejected: Optional[int] = None
    issued_requests: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "seed": self.seed,
            "duration": self.duration,
            "external_tuples": self.external_tuples,
            "completed_trees": self.completed_trees,
            "dropped_tuples": self.dropped_tuples,
            "dropped_trees": self.dropped_trees,
            "rebalances": self.rebalances,
            "mean_sojourn": self.mean_sojourn,
            "std_sojourn": self.std_sojourn,
            "p95_sojourn": self.p95_sojourn,
            "final_allocation": self.final_allocation,
            "final_machines": self.final_machines,
            "actions": [a.to_dict() for a in self.actions],
            "timeline": [list(b) for b in self.timeline],
            "recommendation": self.recommendation,
            "operator_waits": (
                dict(self.operator_waits)
                if self.operator_waits is not None
                else None
            ),
            "operator_services": (
                dict(self.operator_services)
                if self.operator_services is not None
                else None
            ),
            "blocked_time": self.blocked_time,
            "admission_rejected": self.admission_rejected,
            "issued_requests": self.issued_requests,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ReplicationResult":
        """Inverse of :meth:`to_dict` — rehydrates stored records so a
        resumed campaign merges cached and fresh replications alike."""
        return cls(
            index=int(raw["index"]),
            seed=int(raw["seed"]),
            duration=float(raw["duration"]),
            external_tuples=int(raw["external_tuples"]),
            completed_trees=int(raw["completed_trees"]),
            dropped_tuples=int(raw["dropped_tuples"]),
            dropped_trees=int(raw["dropped_trees"]),
            rebalances=int(raw["rebalances"]),
            mean_sojourn=raw.get("mean_sojourn"),
            std_sojourn=raw.get("std_sojourn"),
            p95_sojourn=raw.get("p95_sojourn"),
            final_allocation=str(raw["final_allocation"]),
            final_machines=raw.get("final_machines"),
            actions=tuple(
                AppliedAction.from_dict(a) for a in raw.get("actions", ())
            ),
            timeline=tuple(tuple(b) for b in raw.get("timeline", ())),
            recommendation=raw.get("recommendation"),
            operator_waits=raw.get("operator_waits"),
            operator_services=raw.get("operator_services"),
            blocked_time=raw.get("blocked_time"),
            admission_rejected=raw.get("admission_rejected"),
            issued_requests=raw.get("issued_requests"),
        )


@dataclass(frozen=True)
class ScenarioSummary:
    """Merged view over a scenario's replications.

    ``mean_sojourn`` is the mean of the replication means (each
    replication is one i.i.d. sample of the scenario's mean sojourn
    time); ``std_between`` is the sample standard deviation across
    those means — the replication-level uncertainty.
    """

    name: str
    policy: str
    replications: Tuple[ReplicationResult, ...]
    mean_sojourn: Optional[float]
    std_between: Optional[float]
    min_sojourn: Optional[float]
    max_sojourn: Optional[float]
    total_external: int
    total_completed: int
    total_rebalances: int
    extra: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "policy": self.policy,
            "replications": [r.to_dict() for r in self.replications],
            "mean_sojourn": self.mean_sojourn,
            "std_between": self.std_between,
            "min_sojourn": self.min_sojourn,
            "max_sojourn": self.max_sojourn,
            "total_external": self.total_external,
            "total_completed": self.total_completed,
            "total_rebalances": self.total_rebalances,
            "extra": self.extra,
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# one replication (module-level so process pools can pickle it)
# ----------------------------------------------------------------------
def _resolve_policy_params(spec: ScenarioSpec) -> Dict[str, Any]:
    params = dict(spec.policy_params)
    if spec.cluster is not None and policy_uses_cluster(spec.policy):
        # The negotiator and the controller must agree on the machine
        # accounting, so the spec-level cluster is the default.
        params.setdefault("cluster", dict(spec.cluster))
    return params


def _initial_allocation(
    spec: ScenarioSpec, policy, model: PerformanceModel, topology
) -> Allocation:
    if spec.initial_allocation is not None:
        return Allocation.parse(
            list(topology.operator_names), spec.initial_allocation
        )
    picked = policy.initial_allocation(model)
    if picked is None:
        raise ConfigurationError(
            f"scenario {spec.name!r}: policy {spec.policy!r} cannot derive a"
            " starting point; set initial_allocation explicitly"
        )
    return picked


def _check_machine_pool(spec: ScenarioSpec, policy) -> None:
    """Reject pool-sizing policies with no pool *before* simulating.

    Without this a MIN_RESOURCE controller only fails at its first
    measurement report, mid-replication inside a worker process, with
    a controller-internal message that never names the spec field.
    """
    if spec.initial_machines is not None:
        return
    if (
        isinstance(policy, DRSControllerPolicy)
        and policy.controller.config.goal is OptimizationGoal.MIN_RESOURCE
    ):
        raise ConfigurationError(
            f"scenario {spec.name!r}: policy {spec.policy!r} sizes the"
            " machine pool; set initial_machines (and cluster) in the spec"
        )


def run_replication(spec: ScenarioSpec, index: int) -> ReplicationResult:
    """Execute replication ``index`` of ``spec`` and collect its results."""
    if spec.kind != "simulation":
        raise ConfigurationError(
            f"scenario kind {spec.kind!r} has no simulation replications"
        )
    seed = replication_seed(spec.seed, index)
    workload = spec.build_workload()
    topology = workload.build()
    model = PerformanceModel.from_topology(topology)
    policy = create_policy(spec.policy, topology, _resolve_policy_params(spec))
    _check_machine_pool(spec, policy)
    allocation = _initial_allocation(spec, policy, model, topology)

    if spec.platform is not None:
        # Per-edge link transfers replace the global hop constant (the
        # spec already rejected hop_latency + platform together).
        platform = PlatformSpec.from_dict(spec.platform)
        hop_latency = 0.0
    else:
        platform = None
        hop_latency = (
            spec.hop_latency
            if spec.hop_latency is not None
            else getattr(workload, "hop_latency", DEFAULT_HOP_LATENCY)
        )
    measurement = (
        measurement_from_dict(spec.measurement)
        if spec.measurement is not None
        else MeasurementConfig()
    )
    options = RuntimeOptions(
        seed=seed,
        hop_latency=hop_latency,
        queue_discipline=spec.queue_discipline,
        timeline_bucket=spec.timeline_bucket,
        measurement=measurement,
        arrival_rate_phases=(
            tuple((p.start, p.rate_multiplier) for p in spec.rate_phases)
            or None
        ),
        # The spec stores the model as its canonical plain dict; the
        # runtime wants the built object (sim is duck-typed on it so
        # the simulator layer never imports repro.workloads).
        arrival_model=(
            create_arrival_model(spec.arrival_model)
            if spec.arrival_model is not None
            else None
        ),
        platform=platform,
        queue_limit=spec.queue_limit,
        backpressure=spec.backpressure,
        # Same canonical-dict-to-object contract as arrival_model.
        closed_loop=(
            create_closed_loop_source(spec.closed_loop)
            if spec.closed_loop is not None
            else None
        ),
    )
    simulator = Simulator(scheduler=options.scheduler)
    runtime = TopologyRuntime(simulator, topology, allocation, options)

    negotiator = None
    cluster = None
    if spec.initial_machines is not None:
        cluster_spec = (
            cluster_from_dict(spec.cluster)
            if spec.cluster is not None
            else ClusterSpec()
        )
        cluster = Cluster(
            slots_per_machine=cluster_spec.slots_per_machine,
            reserved_executors=cluster_spec.reserved_executors,
        )
        negotiator = SimResourceNegotiator(simulator, cluster, cluster_spec)
        negotiator.bootstrap(spec.initial_machines)

    binding = PolicyBinding(
        runtime,
        policy,
        negotiator=negotiator,
        enable_at=spec.enable_at,
        min_action_gap=spec.min_action_gap,
    )
    runtime.start()
    simulator.run_until(spec.duration)

    stats = runtime.stats(warmup=spec.warmup)
    recommendation = None
    if spec.recommend_kmax is not None:
        picked = passive_recommendation(runtime, spec.recommend_kmax)
        recommendation = picked.spec() if picked is not None else None
    actions = tuple(
        AppliedAction(
            time=event.time,
            action=event.decision.action.value,
            allocation=event.decision.target_allocation.spec(),
            machines=event.decision.target_machines,
        )
        for event in binding.applied_events
    )
    return ReplicationResult(
        index=index,
        seed=seed,
        duration=stats.duration,
        external_tuples=stats.external_tuples,
        completed_trees=stats.completed_trees,
        dropped_tuples=stats.dropped_tuples,
        dropped_trees=stats.dropped_trees,
        rebalances=stats.rebalances,
        mean_sojourn=stats.mean_sojourn,
        std_sojourn=stats.std_sojourn,
        p95_sojourn=stats.p95_sojourn,
        final_allocation=runtime.allocation.spec(),
        final_machines=cluster.num_running if cluster is not None else None,
        actions=actions,
        timeline=tuple(runtime.timeline()),
        recommendation=recommendation,
        operator_waits=dict(stats.per_operator_wait),
        operator_services=dict(stats.per_operator_service),
        blocked_time=stats.blocked_time,
        admission_rejected=stats.admission_rejected,
        issued_requests=stats.issued_requests,
    )


def _run_job(job: Tuple[ScenarioSpec, int]) -> ReplicationResult:
    spec, index = job
    return run_replication(spec, index)


def summarize_replications(
    spec: ScenarioSpec, results: Sequence[ReplicationResult]
) -> ScenarioSummary:
    """Merge replications into a :class:`ScenarioSummary`.

    Module-level (not runner-bound) because campaign runs merge a mix
    of freshly computed and store-cached replications.
    """
    means = [r.mean_sojourn for r in results if r.mean_sojourn is not None]
    mean = sum(means) / len(means) if means else None
    if len(means) > 1:
        centered = [(m - mean) ** 2 for m in means]
        std_between = math.sqrt(sum(centered) / (len(means) - 1))
    elif means:
        std_between = 0.0
    else:
        std_between = None
    return ScenarioSummary(
        name=spec.name,
        policy=spec.policy,
        replications=tuple(results),
        mean_sojourn=mean,
        std_between=std_between,
        min_sojourn=min(means) if means else None,
        max_sojourn=max(means) if means else None,
        total_external=sum(r.external_tuples for r in results),
        total_completed=sum(r.completed_trees for r in results),
        total_rebalances=sum(r.rebalances for r in results),
    )


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class ScenarioRunner:
    """Executes specs, fanning replications out over worker processes.

    ``max_workers=None`` uses every core; ``max_workers=1`` runs
    serially in-process (no pool), which is also the fallback when
    there is only one job to do.
    """

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1 when set")
        self._max_workers = max_workers

    def run(self, spec: ScenarioSpec) -> ScenarioSummary:
        """Execute one spec and merge its replications."""
        if spec.kind == "overhead":
            return self._run_overhead(spec)
        jobs = [(spec, index) for index in range(spec.replications)]
        return self._summarize(spec, self._execute(jobs))

    def run_many(self, specs: Sequence[ScenarioSpec]) -> List[ScenarioSummary]:
        """Execute several specs, sharing one worker pool across all of
        their replications (a fig6-style panel is six specs; running
        them jointly keeps every core busy)."""
        overhead = [s for s in specs if s.kind == "overhead"]
        if overhead:
            raise ConfigurationError(
                "run_many only batches simulation scenarios; run overhead"
                " specs individually"
            )
        jobs: List[Tuple[ScenarioSpec, int]] = []
        for spec in specs:
            jobs.extend((spec, index) for index in range(spec.replications))
        results = self._execute(jobs)
        summaries: List[ScenarioSummary] = []
        cursor = 0
        for spec in specs:
            chunk = results[cursor : cursor + spec.replications]
            cursor += spec.replications
            summaries.append(self._summarize(spec, chunk))
        return summaries

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _execute(
        self, jobs: Sequence[Tuple[ScenarioSpec, int]]
    ) -> List[ReplicationResult]:
        workers = self._max_workers or os.cpu_count() or 1
        workers = min(workers, len(jobs))
        if workers <= 1:
            return [_run_job(job) for job in jobs]
        # Chunk the map: with many short replications the per-job IPC
        # round-trip dominates; chunking amortises it while map() still
        # returns results in submission order (determinism preserved).
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_run_job, jobs, chunksize=chunksize))

    @staticmethod
    def _summarize(
        spec: ScenarioSpec, results: Sequence[ReplicationResult]
    ) -> ScenarioSummary:
        return summarize_replications(spec, results)

    def _run_overhead(self, spec: ScenarioSpec) -> ScenarioSummary:
        # Timing primitives live with the Table-II experiment; imported
        # lazily because table2 itself builds overhead specs.
        from repro.experiments import table2

        kmax_values = [
            int(k)
            for k in spec.policy_params.get("kmax_values", table2.KMAX_VALUES)
        ]
        repetitions = int(spec.policy_params.get("repetitions", 2000))
        model = table2.reference_model()
        measurement_ms = table2.time_measurement(repetitions)
        rows = [
            {
                "kmax": kmax,
                "scheduling_ms": table2.time_scheduling(
                    model, kmax, repetitions
                ),
                "measurement_ms": measurement_ms,
            }
            for kmax in kmax_values
        ]
        return ScenarioSummary(
            name=spec.name,
            policy=spec.policy,
            replications=(),
            mean_sojourn=None,
            std_between=None,
            min_sojourn=None,
            max_sojourn=None,
            total_external=0,
            total_completed=0,
            total_rebalances=0,
            extra={"overhead_rows": rows},
        )
