"""The scenario engine: declarative experiments over pluggable policies.

Three pieces replace the per-figure driver pattern:

- :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, a JSON-round-
  trippable description of a workload + policy + protocol + replication
  plan;
- :mod:`repro.scenarios.registry` — the string-keyed policy registry
  (``"drs.min_sojourn"``, ``"drs.min_resource"``, ``"static.*"``,
  ``"threshold"``, ``"none"``) with :func:`create_policy` /
  :func:`register_policy`;
- :mod:`repro.scenarios.runner` — :class:`ScenarioRunner`, executing a
  spec's replications in parallel with deterministic per-replication
  seeds and merging them into one :class:`ScenarioSummary`.

The figure drivers under :mod:`repro.experiments` are now thin spec
builders plus result-shaping glue over this engine, and the CLI's
``run-scenario`` verb executes any spec straight from a JSON file.
"""

from repro.scenarios.binding import (
    BindingEvent,
    PolicyBinding,
    model_from_report,
    passive_recommendation,
)
from repro.scenarios.policies import (
    DRSControllerPolicy,
    PassivePolicy,
    PolicyObservation,
    SchedulingPolicy,
    StaticAllocatorPolicy,
    ThresholdPolicy,
)
from repro.scenarios.registry import (
    available_policies,
    create_policy,
    register_policy,
)
from repro.scenarios.runner import (
    AppliedAction,
    ReplicationResult,
    ScenarioRunner,
    ScenarioSummary,
    replication_seed,
    run_replication,
)
from repro.scenarios.spec import RatePhase, ScenarioSpec, WORKLOADS

__all__ = [
    "AppliedAction",
    "BindingEvent",
    "DRSControllerPolicy",
    "PassivePolicy",
    "PolicyBinding",
    "PolicyObservation",
    "RatePhase",
    "ReplicationResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "ScenarioSummary",
    "SchedulingPolicy",
    "StaticAllocatorPolicy",
    "ThresholdPolicy",
    "WORKLOADS",
    "available_policies",
    "create_policy",
    "model_from_report",
    "passive_recommendation",
    "register_policy",
    "replication_seed",
    "run_replication",
]
