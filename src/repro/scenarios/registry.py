"""String-keyed registry of scheduling policies.

A scenario spec names its policy (``"drs.min_sojourn"``,
``"static.uniform"``, ...) and supplies a parameter mapping; the
registry turns that pair into a live :class:`SchedulingPolicy` bound to
a topology.  Third-party policies plug in with::

    @register_policy("mylab.greedy", "greedy allocator from our paper")
    def _make(topology, params):
        return MyGreedyPolicy(...)

Factories receive a *mutable copy* of the parameters and must consume
every key they understand; leftovers are rejected so spec typos fail
loudly instead of silently running with defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, MutableMapping, Optional

from repro.baselines.static import (
    ProportionalAllocator,
    RandomAllocator,
    UniformAllocator,
)
from repro.baselines.threshold import ThresholdScaler
from repro.config import ClusterSpec, DRSConfig, OptimizationGoal, cluster_from_dict
from repro.exceptions import SchedulingError
from repro.scenarios.policies import (
    DRSControllerPolicy,
    PassivePolicy,
    SchedulingPolicy,
    SloFeedbackPolicy,
    StaticAllocatorPolicy,
    ThresholdPolicy,
)
from repro.scheduler.controller import DRSController
from repro.topology.graph import Topology

PolicyFactory = Callable[
    [Topology, MutableMapping[str, object]], SchedulingPolicy
]


@dataclass(frozen=True)
class _Entry:
    factory: PolicyFactory
    description: str
    uses_cluster: bool


_REGISTRY: Dict[str, _Entry] = {}


def register_policy(
    name: str, description: str, *, uses_cluster: bool = False
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Decorator registering ``factory`` under ``name``.

    ``uses_cluster`` declares that the factory consumes a ``cluster``
    parameter (machine-pool accounting); the scenario runner forwards
    the spec-level cluster to such policies so the controller and the
    negotiator always agree on capacity.

    Note: registration happens at import time in the parent process.
    The scenario runner's worker processes re-import this module, so
    third-party policies are visible to parallel replications only on
    fork-start platforms (Linux); under the spawn start method
    (macOS/Windows) register them in a module the workers also import,
    or run with ``max_workers=1``.
    """

    def decorate(factory: PolicyFactory) -> PolicyFactory:
        if name in _REGISTRY:
            raise SchedulingError(f"policy {name!r} is already registered")
        _REGISTRY[name] = _Entry(
            factory=factory, description=description, uses_cluster=uses_cluster
        )
        return factory

    return decorate


def policy_uses_cluster(name: str) -> bool:
    """Whether the policy registered under ``name`` consumes a
    ``cluster`` parameter (unknown names resolve to ``False``; the
    runner surfaces them later via :func:`create_policy`)."""
    entry = _REGISTRY.get(name)
    return entry.uses_cluster if entry is not None else False


def available_policies() -> Dict[str, str]:
    """Registered policy names mapped to their one-line descriptions.

    >>> sorted(available_policies())
    ['drs.min_resource', 'drs.min_sojourn', 'none', 'slo_feedback', \
'static.proportional', 'static.random', 'static.uniform', 'threshold']
    """
    return {name: _REGISTRY[name].description for name in sorted(_REGISTRY)}


def create_policy(
    name: str,
    topology: Topology,
    params: Optional[Mapping[str, object]] = None,
) -> SchedulingPolicy:
    """Instantiate the policy registered under ``name`` for ``topology``."""
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        raise SchedulingError(
            f"unknown scheduling policy {name!r}; available policies: {known}"
        )
    remaining: MutableMapping[str, object] = dict(params or {})
    policy = entry.factory(topology, remaining)
    if remaining:
        raise SchedulingError(
            f"policy {name!r} got unknown parameters"
            f" {sorted(remaining)}"
        )
    return policy


def _require(params: MutableMapping[str, object], key: str, policy: str):
    if key not in params:
        raise SchedulingError(f"policy {policy!r} requires parameter {key!r}")
    return params.pop(key)


def _pop_cluster(params: MutableMapping[str, object]) -> ClusterSpec:
    raw = params.pop("cluster", None)
    if raw is None:
        return ClusterSpec()
    if isinstance(raw, ClusterSpec):
        return raw
    return cluster_from_dict(raw)


# ----------------------------------------------------------------------
# built-in policies
# ----------------------------------------------------------------------
@register_policy("none", "passive: keep the initial allocation, never act")
def _make_passive(topology: Topology, params) -> SchedulingPolicy:
    return PassivePolicy()


@register_policy(
    "drs.min_sojourn",
    "DRS Program 4: best E[T] within a fixed Kmax (Algorithm 1 + rebalance"
    " hysteresis)",
)
def _make_drs_min_sojourn(topology: Topology, params) -> SchedulingPolicy:
    config = DRSConfig(
        goal=OptimizationGoal.MIN_SOJOURN,
        kmax=int(_require(params, "kmax", "drs.min_sojourn")),
        migration_cost=float(params.pop("migration_cost", 5.0)),
        amortisation_horizon=float(params.pop("amortisation_horizon", 600.0)),
        rebalance_threshold=float(params.pop("rebalance_threshold", 0.05)),
    )
    return DRSControllerPolicy(
        DRSController(list(topology.operator_names), config)
    )


@register_policy(
    "drs.min_resource",
    "DRS Program 6: fewest machines meeting Tmax, full budget spread with"
    " Algorithm 1",
    uses_cluster=True,
)
def _make_drs_min_resource(topology: Topology, params) -> SchedulingPolicy:
    config = DRSConfig(
        goal=OptimizationGoal.MIN_RESOURCE,
        tmax=float(_require(params, "tmax", "drs.min_resource")),
        cluster=_pop_cluster(params),
        migration_cost=float(params.pop("migration_cost", 5.0)),
        amortisation_horizon=float(params.pop("amortisation_horizon", 600.0)),
        rebalance_threshold=float(params.pop("rebalance_threshold", 0.05)),
        headroom=float(params.pop("headroom", 0.0)),
        scale_in_safety=float(params.pop("scale_in_safety", 0.8)),
    )
    return DRSControllerPolicy(
        DRSController(list(topology.operator_names), config)
    )


@register_policy(
    "static.uniform", "spread Kmax evenly over operators (naive manual tuning)"
)
def _make_static_uniform(topology: Topology, params) -> SchedulingPolicy:
    kmax = int(_require(params, "kmax", "static.uniform"))
    return StaticAllocatorPolicy(UniformAllocator(), kmax)


@register_policy(
    "static.proportional",
    "split Kmax proportionally to per-operator offered load",
)
def _make_static_proportional(topology: Topology, params) -> SchedulingPolicy:
    kmax = int(_require(params, "kmax", "static.proportional"))
    return StaticAllocatorPolicy(ProportionalAllocator(), kmax)


@register_policy(
    "static.random", "random feasible placement of Kmax (sanity floor)"
)
def _make_static_random(topology: Topology, params) -> SchedulingPolicy:
    kmax = int(_require(params, "kmax", "static.random"))
    rng = random.Random(int(params.pop("seed", 0)))
    return StaticAllocatorPolicy(RandomAllocator(rng), kmax)


@register_policy(
    "slo_feedback",
    "p95-target feedback scaler: grow the bottleneck while measured tail"
    " latency exceeds the SLO, reclaim slack capacity when it falls",
)
def _make_slo_feedback(topology: Topology, params) -> SchedulingPolicy:
    return SloFeedbackPolicy(
        p95_target=float(_require(params, "p95_target", "slo_feedback")),
        kmax=int(_require(params, "kmax", "slo_feedback")),
        step=int(params.pop("step", 1)),
        low_fraction=float(params.pop("low_fraction", 0.5)),
        scale_in_utilisation=float(params.pop("scale_in_utilisation", 0.85)),
    )


@register_policy(
    "threshold",
    "reactive watermark scaler (Dhalion/Flink-reactive style), one step per"
    " interval",
)
def _make_threshold(topology: Topology, params) -> SchedulingPolicy:
    kmax = int(_require(params, "kmax", "threshold"))
    scaler = ThresholdScaler(
        high_watermark=float(params.pop("high_watermark", 0.85)),
        low_watermark=float(params.pop("low_watermark", 0.5)),
        max_steps_per_update=int(params.pop("max_steps_per_update", 1)),
    )
    return ThresholdPolicy(
        scaler,
        kmax,
        converge_on_model=bool(params.pop("converge_on_model", False)),
        convergence_iterations=int(params.pop("convergence_iterations", 50)),
    )
