"""Declarative scenario descriptions — every workload is a data file.

A :class:`ScenarioSpec` captures everything one experiment run needs:
the workload (topology family + parameters), the scheduling policy and
its parameters, the load schedule (rate phases), the protocol
(duration, warmup, when re-balancing is enabled) and the statistical
plan (replications + base seed).  Specs serialize to/from plain JSON
dicts, so new scenarios are files, not drivers::

    {
      "name": "vld-drs",
      "workload": "vld",
      "policy": "drs.min_sojourn",
      "policy_params": {"kmax": 22},
      "initial_allocation": "8:12:2",
      "duration": 480.0,
      "replications": 4
    }

Execution lives in :mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.apps.fidelity import FidelityWorkload
from repro.apps.fpd import FPDWorkload
from repro.apps.robustness import RobustnessWorkload
from repro.apps.synthetic import SyntheticChainWorkload
from repro.apps.vld import VLDWorkload
from repro.exceptions import ConfigurationError
from repro.platform import PlatformSpec
from repro.workloads.closed_loop import create_closed_loop_source
from repro.workloads.models import create_arrival_model

#: Topology families a spec may name.  Values are dataclass factories
#: whose keyword arguments become the spec's ``workload_params``.
WORKLOADS = {
    "vld": VLDWorkload,
    "fpd": FPDWorkload,
    "synthetic": SyntheticChainWorkload,
    "robustness": RobustnessWorkload,
    "fidelity": FidelityWorkload,
}

#: Hop latency used when the workload object does not define one (VLD's
#: computation-intensive calibration — the figure drivers' default).
DEFAULT_HOP_LATENCY = 0.002

_KINDS = ("simulation", "overhead")


@dataclass(frozen=True)
class RatePhase:
    """One piece of the external-load schedule.

    From ``start`` (simulated seconds) onward every spout's rate is the
    workload's nominal rate times ``rate_multiplier``, until the next
    phase begins.
    """

    start: float
    rate_multiplier: float

    def __post_init__(self):
        if self.start < 0:
            raise ConfigurationError("rate phase start must be >= 0")
        if self.rate_multiplier <= 0:
            raise ConfigurationError("rate_multiplier must be > 0")

    def to_dict(self) -> Dict[str, float]:
        return {"start": self.start, "rate_multiplier": self.rate_multiplier}

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "RatePhase":
        unknown = set(raw) - {"start", "rate_multiplier"}
        if unknown:
            raise ConfigurationError(
                f"unknown rate-phase keys: {sorted(unknown)}"
            )
        try:
            return cls(
                start=float(raw["start"]),
                rate_multiplier=float(raw["rate_multiplier"]),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"rate phase missing key {exc.args[0]!r}"
            ) from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable experiment description.

    Everything one run needs — workload, policy, load schedule,
    protocol and statistical plan — in one JSON-round-trippable value
    object.  Validation happens at construction, so a spec that exists
    is runnable (up to runtime resources such as trace files).

    >>> spec = ScenarioSpec.from_json('''
    ... {"name": "demo", "workload": "synthetic", "policy": "none",
    ...  "initial_allocation": "10:10:10", "duration": 60.0,
    ...  "arrival_model": {"kind": "mmpp2", "burst_ratio": 4.0,
    ...                    "mean_burst": 5.0, "mean_gap": 15.0}}
    ... ''')
    >>> spec.policy, spec.replications
    ('none', 1)
    >>> spec.arrival_model["kind"]
    'mmpp2'
    >>> ScenarioSpec.from_dict(spec.to_dict()) == spec   # round-trip
    True
    >>> ScenarioSpec.from_dict({"name": "x", "workload": "nope",
    ...                         "policy": "none", "duration": 1.0})
    Traceback (most recent call last):
    ...
    repro.exceptions.ConfigurationError: unknown workload 'nope'; \
available: ['fidelity', 'fpd', 'robustness', 'synthetic', 'vld']
    """

    name: str
    workload: str
    policy: str
    duration: float = 0.0
    kind: str = "simulation"
    workload_params: Dict[str, Any] = field(default_factory=dict)
    policy_params: Dict[str, Any] = field(default_factory=dict)
    #: ``"k1:k2:..."`` starting allocation; ``None`` asks the policy.
    initial_allocation: Optional[str] = None
    warmup: float = 0.0
    #: Policy decisions are recorded but not applied before this time
    #: (the paper's "re-balancing disabled until minute 13" protocol).
    enable_at: float = 0.0
    min_action_gap: float = 30.0
    replications: int = 1
    seed: int = 7
    rate_phases: Tuple[RatePhase, ...] = ()
    #: Arrival-model spec (``{"kind": "mmpp2", ...}``) replacing every
    #: spout's own process; ``None`` keeps the workload's arrivals (the
    #: pre-workloads behaviour, so old specs run unchanged).  Validated
    #: against the :mod:`repro.workloads` registry at construction.
    #: Composes with ``rate_phases`` (phases wrap the model's output).
    arrival_model: Optional[Dict[str, Any]] = None
    #: ``None`` uses the workload's own hop latency (or the VLD default).
    #: **Legacy** flat-network knob kept for existing specs; new specs
    #: should describe transfers with a ``platform`` block instead.
    hop_latency: Optional[float] = None
    queue_discipline: str = "jsq"
    timeline_bucket: float = 60.0
    #: Optional :class:`~repro.config.MeasurementConfig` overrides.
    measurement: Optional[Dict[str, Any]] = None
    #: Optional :class:`~repro.config.ClusterSpec` fields; required when
    #: ``initial_machines`` puts a negotiator in the loop.
    cluster: Optional[Dict[str, Any]] = None
    initial_machines: Optional[int] = None
    #: When set, each replication also records what a passively watching
    #: DRS would recommend at this ``Kmax`` from its last measurement.
    recommend_kmax: Optional[int] = None
    #: Platform block (:class:`repro.platform.PlatformSpec` mapping):
    #: machines with speeds/slots, weighted links, placement and node
    #: churn.  ``None`` keeps the legacy flat-network runtime.  Mutually
    #: exclusive with ``hop_latency`` (per-edge transfers replace the
    #: global hop constant).  Canonicalised at construction so equal
    #: platforms hash equally.
    platform: Optional[Dict[str, Any]] = None
    #: Per-operator queue bound.  Beyond it tuples are dropped (trees
    #: abandoned) — or, with ``backpressure``, upstream pauses instead.
    #: ``None`` leaves queues unbounded (the pre-existing behaviour).
    queue_limit: Optional[int] = None
    #: Full queues signal upstream to pause rather than dropping.
    #: Requires ``queue_limit``; default ``False`` keeps the drop path
    #: (and the spec's content address) unchanged.
    backpressure: bool = False
    #: Closed-loop client population (``{"kind": "closed_loop",
    #: "clients": ..., "think_time": ...}``) replacing every spout's
    #: arrival process with a finite latency-reacting population.
    #: Validated against the :mod:`repro.workloads.closed_loop`
    #: registry at construction; mutually exclusive with
    #: ``arrival_model`` and ``rate_phases``.
    closed_loop: Optional[Dict[str, Any]] = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; available:"
                f" {sorted(WORKLOADS)}"
            )
        if self.kind == "simulation" and self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be >= 0")
        if self.replications < 1:
            raise ConfigurationError("replications must be >= 1")
        if self.min_action_gap < 0:
            raise ConfigurationError("min_action_gap must be >= 0")
        if self.initial_machines is not None and self.initial_machines < 1:
            raise ConfigurationError("initial_machines must be >= 1 when set")
        if self.recommend_kmax is not None and self.recommend_kmax < 1:
            raise ConfigurationError("recommend_kmax must be >= 1 when set")
        phases = tuple(
            p if isinstance(p, RatePhase) else RatePhase.from_dict(p)
            for p in self.rate_phases
        )
        starts = [p.start for p in phases]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ConfigurationError(
                "rate phases must have strictly increasing start times"
            )
        object.__setattr__(self, "rate_phases", phases)
        object.__setattr__(self, "workload_params", dict(self.workload_params))
        object.__setattr__(self, "policy_params", dict(self.policy_params))
        if self.arrival_model is not None:
            # Validate the model spec now so a typo'd kind or parameter
            # fails at spec load, not mid-replication in a worker.  A
            # file-backed trace is *not* read here: the file must exist
            # where the simulation runs, which may be a different host.
            model = create_arrival_model(self.arrival_model)
            object.__setattr__(self, "arrival_model", model.to_dict())
        if self.platform is not None:
            if self.hop_latency is not None:
                raise ConfigurationError(
                    "hop_latency and platform are mutually exclusive: the"
                    " platform's links define every transfer delay"
                )
            # Validate and canonicalise now (same contract as
            # arrival_model): typos fail at spec load, and equal
            # platforms serialise identically for content addressing.
            canonical = PlatformSpec.from_dict(self.platform).to_dict()
            object.__setattr__(self, "platform", canonical)
        if self.queue_limit is not None and (
            not isinstance(self.queue_limit, int) or self.queue_limit < 1
        ):
            raise ConfigurationError(
                f"queue_limit must be an integer >= 1 when set,"
                f" got {self.queue_limit!r}"
            )
        if self.backpressure and self.queue_limit is None:
            raise ConfigurationError(
                "backpressure requires queue_limit: without a bound there"
                " is no 'full' signal to propagate"
            )
        if self.closed_loop is not None:
            if self.arrival_model is not None or self.rate_phases:
                raise ConfigurationError(
                    "closed_loop replaces the spout arrival process; it is"
                    " mutually exclusive with arrival_model and rate_phases"
                )
            # Same validate-and-canonicalise contract as arrival_model.
            source = create_closed_loop_source(self.closed_loop)
            object.__setattr__(self, "closed_loop", source.to_dict())

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def build_workload(self):
        """Instantiate the named workload with this spec's parameters."""
        factory = WORKLOADS[self.workload]
        try:
            return factory(**self.workload_params)
        except (TypeError, ValueError) as exc:
            # TypeError: unknown parameter names; ValueError: the
            # workload's own value validation (e.g. unstable loads).
            raise ConfigurationError(
                f"bad workload_params for {self.workload!r}: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-ready mapping (round-trips via :meth:`from_dict`).

        ``arrival_model`` is *omitted* (not emitted as ``null``) when
        unset: the campaign layer content-addresses this mapping, and
        omission keeps every pre-workloads scenario's hash — and hence
        every existing result store — valid.

        >>> spec = ScenarioSpec(name="s", workload="synthetic",
        ...                     policy="none", duration=10.0)
        >>> "arrival_model" in spec.to_dict()
        False
        """
        payload = self._base_dict()
        if self.arrival_model is not None:
            payload["arrival_model"] = dict(self.arrival_model)
        if self.platform is not None:
            # Same omission contract as arrival_model: specs without a
            # platform keep their pre-platform content address.
            payload["platform"] = dict(self.platform)
        if self.queue_limit is not None:
            payload["queue_limit"] = self.queue_limit
        if self.backpressure:
            payload["backpressure"] = True
        if self.closed_loop is not None:
            payload["closed_loop"] = dict(self.closed_loop)
        return payload

    def _base_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload,
            "policy": self.policy,
            "duration": self.duration,
            "kind": self.kind,
            "workload_params": dict(self.workload_params),
            "policy_params": dict(self.policy_params),
            "initial_allocation": self.initial_allocation,
            "warmup": self.warmup,
            "enable_at": self.enable_at,
            "min_action_gap": self.min_action_gap,
            "replications": self.replications,
            "seed": self.seed,
            "rate_phases": [p.to_dict() for p in self.rate_phases],
            "hop_latency": self.hop_latency,
            "queue_discipline": self.queue_discipline,
            "timeline_bucket": self.timeline_bucket,
            "measurement": (
                dict(self.measurement) if self.measurement is not None else None
            ),
            "cluster": dict(self.cluster) if self.cluster is not None else None,
            "initial_machines": self.initial_machines,
            "recommend_kmax": self.recommend_kmax,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ScenarioSpec":
        """Validated spec from a plain mapping; unknown keys fail loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys: {sorted(unknown)}"
            )
        kwargs = {key: value for key, value in raw.items() if value is not None}
        if "rate_phases" in kwargs:
            kwargs["rate_phases"] = tuple(
                RatePhase.from_dict(p) if not isinstance(p, RatePhase) else p
                for p in kwargs["rate_phases"]
            )
        missing = {"name", "workload", "policy"} - set(kwargs)
        if missing:
            raise ConfigurationError(
                f"scenario spec missing required keys: {sorted(missing)}"
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(str(exc)) from None

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from None
        if not isinstance(raw, Mapping):
            raise ConfigurationError("scenario JSON must be an object")
        return cls.from_dict(raw)
