"""The uniform scheduling-policy interface and its adapters.

Every allocation strategy in the repository — the DRS controller in
both of its optimisation modes, the static model-free baselines and the
reactive threshold scaler — sits behind one protocol so the scenario
engine can drive any of them interchangeably:

- :meth:`SchedulingPolicy.initial_allocation` answers "where would you
  start?" from the nominal performance model (``None`` when the policy
  cannot decide without runtime context, e.g. MIN_RESOURCE needs a
  machine count);
- :meth:`SchedulingPolicy.observe` consumes one measurement interval's
  :class:`PolicyObservation` and returns a
  :class:`~repro.scheduler.controller.ControllerDecision` that the
  binding may apply (rebalance / machine scaling).

Policies are constructed by name through :mod:`repro.scenarios.registry`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.baselines.static import UniformAllocator
from repro.baselines.threshold import ThresholdScaler
from repro.config import OptimizationGoal
from repro.model.performance import PerformanceModel
from repro.scheduler.allocation import Allocation
from repro.scheduler.assign import assign_processors
from repro.scheduler.controller import (
    ControllerAction,
    ControllerDecision,
    DRSController,
    LoadSnapshot,
)


@dataclass(frozen=True)
class PolicyObservation:
    """One measurement interval's aggregated view handed to a policy."""

    time: float
    snapshot: LoadSnapshot
    current_allocation: Allocation
    current_machines: Optional[int] = None


@runtime_checkable
class SchedulingPolicy(Protocol):
    """What every scheduling strategy must provide to the scenario engine."""

    def initial_allocation(
        self, model: PerformanceModel
    ) -> Optional[Allocation]:
        """The allocation this policy would start from, or ``None``."""

    def observe(self, observation: PolicyObservation) -> ControllerDecision:
        """React to one measurement interval with a decision."""


def _no_change(
    observation: PolicyObservation, reason: str
) -> ControllerDecision:
    return ControllerDecision(
        ControllerAction.NONE,
        observation.current_allocation,
        observation.current_machines,
        math.inf,
        reason,
    )


class PassivePolicy:
    """Keep the scenario's initial allocation forever (policy ``"none"``).

    The workhorse of the passive experiment family (Fig. 6/7/8 and the
    baseline-comparison runs): measurements still flow, but nothing is
    ever applied.
    """

    def initial_allocation(
        self, model: PerformanceModel
    ) -> Optional[Allocation]:
        return None

    def observe(self, observation: PolicyObservation) -> ControllerDecision:
        return _no_change(observation, "passive policy never acts")

    def __repr__(self) -> str:
        return "PassivePolicy()"


class DRSControllerPolicy:
    """Adapter putting a :class:`DRSController` behind the protocol.

    Covers both optimisation modes: MIN_SOJOURN derives its starting
    point from Algorithm 1 at the configured ``Kmax``; MIN_RESOURCE
    cannot size the machine pool from the model alone, so the scenario
    must supply an explicit initial allocation.
    """

    def __init__(self, controller: DRSController):
        self._controller = controller

    @property
    def controller(self) -> DRSController:
        return self._controller

    def initial_allocation(
        self, model: PerformanceModel
    ) -> Optional[Allocation]:
        config = self._controller.config
        if config.goal is OptimizationGoal.MIN_SOJOURN:
            return assign_processors(model, config.kmax)
        return None

    def observe(self, observation: PolicyObservation) -> ControllerDecision:
        return self._controller.update(
            observation.snapshot,
            observation.current_allocation,
            observation.current_machines,
        )

    def __repr__(self) -> str:
        return f"DRSControllerPolicy({self._controller!r})"


class StaticAllocatorPolicy:
    """One-shot model-free allocator: place ``Kmax`` once, never react.

    Wraps any of the :mod:`repro.baselines.static` allocators (uniform,
    proportional, random).
    """

    def __init__(self, allocator, kmax: int):
        self._allocator = allocator
        self._kmax = int(kmax)

    def initial_allocation(
        self, model: PerformanceModel
    ) -> Optional[Allocation]:
        return self._allocator.allocate(model, self._kmax)

    def observe(self, observation: PolicyObservation) -> ControllerDecision:
        return _no_change(observation, "static allocator never re-balances")

    def __repr__(self) -> str:
        return f"StaticAllocatorPolicy({self._allocator!r}, kmax={self._kmax})"


class ThresholdPolicy:
    """The reactive threshold scaler behind the policy protocol.

    ``initial_allocation`` starts from the uniform split; with
    ``converge_on_model`` it first iterates the scaler to a fixed point
    on the nominal rates (the static variant the baseline comparison
    reports).  ``observe`` steps the scaler once per measurement
    interval on the *measured* rates — the live reactive controller.
    """

    def __init__(
        self,
        scaler: ThresholdScaler,
        kmax: int,
        *,
        converge_on_model: bool = False,
        convergence_iterations: int = 50,
    ):
        self._scaler = scaler
        self._kmax = int(kmax)
        self._converge = bool(converge_on_model)
        self._iterations = int(convergence_iterations)

    def initial_allocation(
        self, model: PerformanceModel
    ) -> Optional[Allocation]:
        allocation = UniformAllocator().allocate(model, self._kmax)
        if not self._converge:
            return allocation
        lams = model.network.arrival_rates
        mus = model.network.service_rates
        for _ in range(self._iterations):
            updated = self._scaler.update(allocation, lams, mus, kmax=self._kmax)
            if updated == allocation:
                break
            allocation = updated
        return allocation

    def observe(self, observation: PolicyObservation) -> ControllerDecision:
        updated = self._scaler.update(
            observation.current_allocation,
            list(observation.snapshot.arrival_rates),
            list(observation.snapshot.service_rates),
            kmax=self._kmax,
        )
        if updated == observation.current_allocation:
            return _no_change(observation, "utilisation within watermarks")
        return ControllerDecision(
            ControllerAction.REBALANCE,
            updated,
            observation.current_machines,
            math.inf,
            f"threshold step {observation.current_allocation.spec()}"
            f" -> {updated.spec()}",
        )

    def __repr__(self) -> str:
        return f"ThresholdPolicy({self._scaler!r}, kmax={self._kmax})"


class SloFeedbackPolicy:
    """Tail-latency feedback scaler: hold measured p95 at an SLO target.

    Unlike the utilisation-watermark :class:`ThresholdPolicy`, this
    policy closes the loop on the quantity operators actually promise in
    an SLO — the p95 sojourn time reported by the runtime's sliding
    window (:attr:`LoadSnapshot.measured_p95`):

    - p95 above ``p95_target`` and budget left: add ``step`` executors
      to the bottleneck operator (highest utilisation
      :math:`\\lambda_i / (k_i \\mu_i)` on the measured rates);
    - p95 below ``low_fraction * p95_target``: reclaim ``step``
      executors from the least-utilised operator, but only when the
      post-removal utilisation stays under ``scale_in_utilisation`` —
      the guard that keeps the feedback loop from oscillating into an
      unstable queue;
    - otherwise (or while the window has produced no p95 yet): no-op.

    Starts from the uniform split of ``kmax``, like the reactive
    baseline it is compared against.
    """

    def __init__(
        self,
        p95_target: float,
        kmax: int,
        *,
        step: int = 1,
        low_fraction: float = 0.5,
        scale_in_utilisation: float = 0.85,
    ):
        if p95_target <= 0.0:
            raise ValueError("p95_target must be positive")
        self._target = float(p95_target)
        self._kmax = int(kmax)
        self._step = max(1, int(step))
        self._low_fraction = float(low_fraction)
        self._guard = float(scale_in_utilisation)

    def initial_allocation(
        self, model: PerformanceModel
    ) -> Optional[Allocation]:
        return UniformAllocator().allocate(model, self._kmax)

    def _utilisations(self, observation: PolicyObservation):
        counts = observation.current_allocation.vector
        lams = observation.snapshot.arrival_rates
        mus = observation.snapshot.service_rates
        utils = []
        for index, count in enumerate(counts):
            capacity = count * mus[index]
            utils.append(lams[index] / capacity if capacity > 0.0 else math.inf)
        return utils

    def observe(self, observation: PolicyObservation) -> ControllerDecision:
        p95 = observation.snapshot.measured_p95
        if p95 is None:
            return _no_change(observation, "no p95 measurement yet")
        allocation = observation.current_allocation
        counts = list(allocation.vector)
        utils = self._utilisations(observation)

        if p95 > self._target:
            budget = self._kmax - sum(counts)
            if budget <= 0:
                return _no_change(
                    observation,
                    f"p95 {p95:.3f} above target but Kmax={self._kmax}"
                    " exhausted",
                )
            index = max(range(len(counts)), key=lambda i: utils[i])
            counts[index] += min(self._step, budget)
        elif p95 < self._low_fraction * self._target:
            candidates = [
                i
                for i, count in enumerate(counts)
                if count > 1
                and (count - self._step) > 0
                and utils[i] * count / (count - self._step) < self._guard
            ]
            if not candidates:
                return _no_change(
                    observation, "p95 slack but no safe scale-in candidate"
                )
            index = min(candidates, key=lambda i: utils[i])
            counts[index] -= self._step
        else:
            return _no_change(
                observation, f"p95 {p95:.3f} within SLO band"
            )

        updated = Allocation(list(allocation.names), counts)
        return ControllerDecision(
            ControllerAction.REBALANCE,
            updated,
            observation.current_machines,
            math.inf,
            f"slo_feedback p95 {p95:.3f} vs target {self._target:.3f}:"
            f" {allocation.spec()} -> {updated.spec()}",
        )

    def __repr__(self) -> str:
        return (
            f"SloFeedbackPolicy(p95_target={self._target},"
            f" kmax={self._kmax}, step={self._step})"
        )
