"""Wiring a scheduling policy to a live simulated topology.

:class:`PolicyBinding` generalises the original DRS-only binding: on
every measurement report it builds a load snapshot (falling back to the
nominal model for rates the report lacks), asks the policy to
``observe`` it, and — when the decision requests a change and the
scenario protocol allows acting (``enable_at`` passed, no rebalance or
scaling already in flight, action gap respected) — executes it: plain
rebalances call :meth:`TopologyRuntime.apply_allocation`; machine
scaling goes through the negotiator (scale-out waits for machines to
boot — the ExpA spike — while scale-in rebalances first and then
releases machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import InfeasibleAllocationError
from repro.measurement.measurer import MeasurementReport
from repro.model.performance import PerformanceModel
from repro.scenarios.policies import PolicyObservation, SchedulingPolicy
from repro.scheduler.allocation import Allocation
from repro.scheduler.assign import assign_processors
from repro.scheduler.controller import (
    ControllerAction,
    ControllerDecision,
    LoadSnapshot,
)
from repro.sim.negotiator import SimResourceNegotiator
from repro.sim.runtime import TopologyRuntime


def model_from_report(
    report: MeasurementReport,
    fallback: Optional[PerformanceModel] = None,
) -> Optional[PerformanceModel]:
    """Build a performance model from a measurement report.

    Returns ``None`` when the report lacks rates and no fallback model
    is available to fill the gaps.
    """
    if report.is_complete():
        return PerformanceModel.from_measurements(
            list(report.operator_names),
            [float(r) for r in report.arrival_rates],
            [float(r) for r in report.service_rates],
            float(report.external_rate),
        )
    if fallback is None:
        return None
    # Fill missing entries from the fallback's nominal rates.
    lams = list(fallback.network.arrival_rates)
    mus = list(fallback.network.service_rates)
    for index, value in enumerate(report.arrival_rates):
        if value is not None:
            lams[index] = float(value)
    for index, value in enumerate(report.service_rates):
        if value is not None:
            mus[index] = float(value)
    external = (
        float(report.external_rate)
        if report.external_rate is not None
        else fallback.external_rate
    )
    return PerformanceModel.from_measurements(
        list(report.operator_names), lams, mus, external
    )


def passive_recommendation(
    runtime: TopologyRuntime, kmax: int
) -> Optional[Allocation]:
    """What a passively running DRS would recommend after this run.

    Uses the last measurement report's smoothed rates; falls back to
    ``None`` when the run was too short to produce usable measurements
    or the measured load is infeasible within ``kmax``.
    """
    reports = runtime.reports
    if not reports:
        return None
    model = model_from_report(reports[-1])
    if model is None:
        return None
    try:
        return assign_processors(model, kmax)
    except InfeasibleAllocationError:
        return None


@dataclass
class BindingEvent:
    """One applied (or recorded) policy decision."""

    time: float
    decision: ControllerDecision
    applied: bool


class PolicyBinding:
    """Drives any :class:`SchedulingPolicy` against a running topology."""

    def __init__(
        self,
        runtime: TopologyRuntime,
        policy: SchedulingPolicy,
        *,
        negotiator: Optional[SimResourceNegotiator] = None,
        enable_at: float = 0.0,
        min_action_gap: float = 30.0,
    ):
        self._runtime = runtime
        self._policy = policy
        self._negotiator = negotiator
        self._enable_at = enable_at
        self._min_action_gap = min_action_gap
        self._last_action_time: Optional[float] = None
        self._fallback_model = PerformanceModel.from_topology(runtime.topology)
        self.events: List[BindingEvent] = []
        runtime.on_measurement = self._on_report

    @property
    def policy(self) -> SchedulingPolicy:
        return self._policy

    @property
    def applied_events(self) -> List[BindingEvent]:
        return [e for e in self.events if e.applied]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _machines(self) -> Optional[int]:
        if self._negotiator is None:
            return None
        return self._negotiator.cluster.num_running

    def _on_report(self, report: MeasurementReport) -> None:
        now = self._runtime.simulator.now
        model = model_from_report(report, self._fallback_model)
        if model is None:
            return
        # Tail latency over a few recent pull intervals: long enough to
        # hold a stable p95, short enough to track the present (the
        # whole-run p95 would lag a load change by the run's history).
        window = 5.0 * self._runtime.options.measurement.pull_interval
        snapshot = LoadSnapshot(
            arrival_rates=model.network.arrival_rates,
            service_rates=model.network.service_rates,
            external_rate=model.external_rate,
            measured_sojourn=report.measured_sojourn,
            measured_p95=self._runtime.recent_p95(window),
        )
        decision = self._policy.observe(
            PolicyObservation(
                time=now,
                snapshot=snapshot,
                current_allocation=self._runtime.allocation,
                current_machines=self._machines(),
            )
        )
        applied = self._maybe_apply(now, decision)
        self.events.append(BindingEvent(time=now, decision=decision, applied=applied))

    def _maybe_apply(self, now: float, decision: ControllerDecision) -> bool:
        if not decision.wants_change:
            return False
        if now < self._enable_at:
            return False  # re-balancing still disabled (paper's protocol)
        if self._runtime.paused:
            return False
        if self._negotiator is not None and self._negotiator.in_progress:
            return False
        if (
            self._last_action_time is not None
            and now - self._last_action_time < self._min_action_gap
        ):
            return False

        action = decision.action
        if action is ControllerAction.REBALANCE:
            self._runtime.apply_allocation(decision.target_allocation)
            self._last_action_time = now
            return True

        if self._negotiator is None:
            return False
        current = self._negotiator.cluster.num_running
        target = decision.target_machines
        if target is None:
            return False
        if action is ControllerAction.SCALE_OUT:
            added = target - current

            def after_boot() -> None:
                if not self._runtime.paused:
                    self._runtime.apply_allocation(
                        decision.target_allocation, machines_added=added
                    )

            self._negotiator.scale_to(target, on_ready=after_boot)
            self._last_action_time = now
            return True
        if action is ControllerAction.SCALE_IN:
            removed = current - target
            # Move executors off first, then release the machines.
            self._runtime.apply_allocation(
                decision.target_allocation, machines_removed=removed
            )
            self._negotiator.scale_to(target)
            self._last_action_time = now
            return True
        return False
