"""Configuration objects and the configuration-reader module.

Paper Appendix B-C lists the parameters the configuration reader
manages: (a) the optimisation problem type (Program 4 vs Program 6);
(b) ``Kmax`` / ``Tmax``; (c) measurer parameters — sampling rate ``Nm``,
trigger interval ``Tm``, smoothing (``alpha`` or window ``w``); (d)
scheduler parameters — current allocation, re-allocation cost.
:class:`DRSConfig` bundles them; :class:`ConfigReader` is the general
dict-backed interface the paper describes, with validation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.exceptions import ConfigurationError


class OptimizationGoal(enum.Enum):
    """Which optimisation problem the optimiser solves."""

    MIN_SOJOURN = "min_sojourn"  # Program 4: best E[T] within Kmax
    MIN_RESOURCE = "min_resource"  # Program 6: fewest processors for Tmax


class SmoothingKind(enum.Enum):
    """Measurement-smoothing options (paper Appendix B)."""

    ALPHA = "alpha"  # D(n) = alpha*D(n-1) + (1-alpha)*d(n)
    WINDOW = "window"  # D(n) = mean of last w intervals


@dataclass(frozen=True)
class ClusterSpec:
    """Physical-cluster accounting used by the negotiator.

    The paper's testbed: 5 worker machines x 5 executor slots, with 2
    spout executors and 1 DRS executor reserved, giving ``Kmax = 22``
    bolt executors at 5 machines and ``Kmax = 17`` at 4.
    """

    slots_per_machine: int = 5
    reserved_executors: int = 3
    min_machines: int = 1
    max_machines: int = 100
    machine_boot_time: float = 30.0
    machine_stop_time: float = 2.0

    def __post_init__(self):
        if self.slots_per_machine < 1:
            raise ConfigurationError("slots_per_machine must be >= 1")
        if self.reserved_executors < 0:
            raise ConfigurationError("reserved_executors must be >= 0")
        if not 1 <= self.min_machines <= self.max_machines:
            raise ConfigurationError(
                "need 1 <= min_machines <= max_machines, got"
                f" [{self.min_machines}, {self.max_machines}]"
            )
        if self.machine_boot_time < 0 or self.machine_stop_time < 0:
            raise ConfigurationError("machine timings must be >= 0")

    def kmax_for_machines(self, machines: int) -> int:
        """Bolt-executor budget available on ``machines`` machines."""
        if machines < 1:
            raise ConfigurationError(f"machines must be >= 1, got {machines}")
        return machines * self.slots_per_machine - self.reserved_executors

    def machines_for_executors(self, executors: int) -> int:
        """Fewest machines able to host ``executors`` bolt executors."""
        if executors < 0:
            raise ConfigurationError(f"executors must be >= 0, got {executors}")
        total = executors + self.reserved_executors
        machines = -(-total // self.slots_per_machine)
        return max(self.min_machines, machines)


@dataclass(frozen=True)
class MeasurementConfig:
    """Measurer parameters (paper Appendix B).

    ``sample_every`` is the paper's ``Nm`` (record one tuple's metrics
    out of every ``Nm``); ``pull_interval`` is ``Tm`` (seconds between
    pulls by the central measurement operator); smoothing is either
    alpha-weighted (``alpha``) or window-based (``window``).
    """

    sample_every: int = 1
    pull_interval: float = 10.0
    smoothing: SmoothingKind = SmoothingKind.ALPHA
    alpha: float = 0.5
    window: int = 6

    def __post_init__(self):
        if self.sample_every < 1:
            raise ConfigurationError("sample_every (Nm) must be >= 1")
        if self.pull_interval <= 0:
            raise ConfigurationError("pull_interval (Tm) must be > 0")
        if not 0.0 <= self.alpha < 1.0:
            raise ConfigurationError("alpha must be in [0, 1)")
        if self.window < 1:
            raise ConfigurationError("window (w) must be >= 1")


@dataclass(frozen=True)
class DRSConfig:
    """Complete DRS-layer configuration.

    Exactly one of ``kmax`` (Program 4) / ``tmax`` (Program 6) must be
    set, matching ``goal``.
    """

    goal: OptimizationGoal = OptimizationGoal.MIN_SOJOURN
    kmax: Optional[int] = None
    tmax: Optional[float] = None
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    migration_cost: float = 5.0
    amortisation_horizon: float = 600.0
    rebalance_threshold: float = 0.05
    # Headroom applied on top of Program 6's answer before translating to
    # machines: a 0.1 value provisions 10% extra executors.
    headroom: float = 0.0
    # Scale-in only happens when the smaller pool's (bias-corrected)
    # estimate stays below this fraction of Tmax — an asymmetric deadband
    # that prevents add/remove oscillation around the target.
    scale_in_safety: float = 0.8

    def __post_init__(self):
        if self.goal is OptimizationGoal.MIN_SOJOURN:
            if self.kmax is None:
                raise ConfigurationError("goal MIN_SOJOURN requires kmax")
            if self.kmax < 1:
                raise ConfigurationError(f"kmax must be >= 1, got {self.kmax}")
        elif self.goal is OptimizationGoal.MIN_RESOURCE:
            if self.tmax is None:
                raise ConfigurationError("goal MIN_RESOURCE requires tmax")
            if self.tmax <= 0:
                raise ConfigurationError(f"tmax must be > 0, got {self.tmax}")
        if self.migration_cost < 0:
            raise ConfigurationError("migration_cost must be >= 0")
        if self.amortisation_horizon <= 0:
            raise ConfigurationError("amortisation_horizon must be > 0")
        if not 0.0 <= self.rebalance_threshold <= 1.0:
            raise ConfigurationError("rebalance_threshold must be in [0, 1]")
        if self.headroom < 0:
            raise ConfigurationError("headroom must be >= 0")
        if not 0.0 < self.scale_in_safety <= 1.0:
            raise ConfigurationError("scale_in_safety must be in (0, 1]")


def cluster_from_dict(raw: Mapping[str, Any]) -> ClusterSpec:
    """Validated :class:`ClusterSpec` from a plain mapping."""
    return ConfigReader._parse_section(raw, ClusterSpec, "cluster")


def measurement_from_dict(raw: Mapping[str, Any]) -> MeasurementConfig:
    """Validated :class:`MeasurementConfig` from a plain mapping."""
    section = dict(raw)
    if "smoothing" in section:
        section["smoothing"] = ConfigReader._parse_smoothing(section["smoothing"])
    return ConfigReader._parse_section(section, MeasurementConfig, "measurement")


class ConfigReader:
    """Dict-backed configuration interface (paper Appendix B/C).

    Parses a plain mapping (e.g. loaded from JSON/YAML by the caller)
    into a validated :class:`DRSConfig`.  Unknown keys are rejected so
    typos fail loudly.
    """

    _TOP_KEYS = {
        "goal",
        "kmax",
        "tmax",
        "cluster",
        "measurement",
        "migration_cost",
        "amortisation_horizon",
        "rebalance_threshold",
        "headroom",
        "scale_in_safety",
    }

    def read(self, raw: Mapping[str, Any]) -> DRSConfig:
        """Build a validated :class:`DRSConfig` from a raw mapping."""
        unknown = set(raw) - self._TOP_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown configuration keys: {sorted(unknown)}"
            )
        kwargs: dict = {}
        if "goal" in raw:
            kwargs["goal"] = self._parse_goal(raw["goal"])
        for key in (
            "kmax",
            "tmax",
            "migration_cost",
            "amortisation_horizon",
            "rebalance_threshold",
            "headroom",
            "scale_in_safety",
        ):
            if key in raw:
                kwargs[key] = raw[key]
        if "cluster" in raw:
            kwargs["cluster"] = self._parse_section(
                raw["cluster"], ClusterSpec, "cluster"
            )
        if "measurement" in raw:
            section = dict(raw["measurement"])
            if "smoothing" in section:
                section["smoothing"] = self._parse_smoothing(section["smoothing"])
            kwargs["measurement"] = self._parse_section(
                section, MeasurementConfig, "measurement"
            )
        try:
            return DRSConfig(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(str(exc)) from None

    @staticmethod
    def _parse_goal(value: Any) -> OptimizationGoal:
        if isinstance(value, OptimizationGoal):
            return value
        try:
            return OptimizationGoal(str(value))
        except ValueError:
            options = [g.value for g in OptimizationGoal]
            raise ConfigurationError(
                f"unknown goal {value!r}; options: {options}"
            ) from None

    @staticmethod
    def _parse_smoothing(value: Any) -> SmoothingKind:
        if isinstance(value, SmoothingKind):
            return value
        try:
            return SmoothingKind(str(value))
        except ValueError:
            options = [s.value for s in SmoothingKind]
            raise ConfigurationError(
                f"unknown smoothing {value!r}; options: {options}"
            ) from None

    @staticmethod
    def _parse_section(section: Mapping[str, Any], cls: type, name: str):
        if not isinstance(section, Mapping):
            raise ConfigurationError(f"{name} section must be a mapping")
        try:
            return cls(**dict(section))
        except TypeError as exc:
            raise ConfigurationError(f"bad {name} section: {exc}") from None
