"""The platform layer: machines, links, placement and churn as data.

The paper's experiments assume homogeneous executors on a zero-cost
network; the only transport knob the runtime used to carry was one
global ``hop_latency``.  A :class:`PlatformSpec` replaces that with a
first-class, JSON-round-trippable description of the execution
substrate::

    {
      "machines": [{"name": "m0", "speed": 1.0, "slots": 8},
                   {"name": "m1", "speed": 0.5, "slots": 8}],
      "links": [{"source": "m0", "target": "m1",
                 "latency": 0.002, "bandwidth": 1.0e8}],
      "tuple_bytes": 2048,
      "placement": {"kind": "round_robin"},
      "failure": {"kind": "exponential",
                  "mean_up": 120.0, "mean_down": 10.0}
    }

- **machines** have a relative ``speed`` (1.0 = the reference processor
  the operators' service rates were measured on; service draws divide
  by it) and ``slots`` (capacity weight used by the heterogeneous
  placement's processor pools);
- **links** carry ``latency`` seconds plus ``tuple_bytes / bandwidth``
  serialisation per transfer, keyed by machine pair (symmetric unless
  the reverse direction is listed explicitly); unlisted pairs cost the
  platform's ``default_latency`` / ``default_bandwidth``; intra-machine
  transfers are always free;
- **placement** and **failure** name entries of the
  :mod:`~repro.platform.placement` and :mod:`~repro.platform.failure`
  registries.

A spec is validated and canonicalised at construction, so a platform
block that exists is runnable, and its ``to_dict()`` form is stable for
campaign content addressing.  Scenario specs carry the block in their
optional ``platform`` field; when it is absent the runtime keeps the
legacy hop-constant path byte-for-byte (golden-pinned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.platform.failure import FailureModel, create_failure_model
from repro.platform.placement import PlacementPolicy, create_placement
from repro.scheduler.allocation import Allocation
from repro.topology.graph import Topology


def _number(value: Any, what: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{what} must be a number, got {value!r}") from None


@dataclass(frozen=True)
class MachineSpec:
    """One machine: a relative speed factor and a slot count."""

    name: str
    speed: float = 1.0
    slots: int = 4

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"machine name must be a non-empty string, got {self.name!r}"
            )
        object.__setattr__(self, "speed", _number(self.speed, "machine speed"))
        if self.speed <= 0:
            raise ConfigurationError(
                f"machine {self.name!r}: speed must be > 0, got {self.speed}"
            )
        if not isinstance(self.slots, int) or self.slots < 1:
            raise ConfigurationError(
                f"machine {self.name!r}: slots must be an int >= 1,"
                f" got {self.slots!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "speed": self.speed, "slots": self.slots}

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "MachineSpec":
        unknown = set(raw) - {"name", "speed", "slots"}
        if unknown:
            raise ConfigurationError(f"unknown machine keys: {sorted(unknown)}")
        if "name" not in raw:
            raise ConfigurationError("machine spec missing 'name'")
        kwargs: Dict[str, Any] = {"name": raw["name"]}
        if raw.get("speed") is not None:
            kwargs["speed"] = raw["speed"]
        if raw.get("slots") is not None:
            kwargs["slots"] = raw["slots"]
        return cls(**kwargs)


@dataclass(frozen=True)
class LinkSpec:
    """One directed (but by default symmetric) machine-pair link."""

    source: str
    target: str
    latency: float = 0.0
    bandwidth: Optional[float] = None

    def __post_init__(self):
        if self.source == self.target:
            raise ConfigurationError(
                f"link {self.source!r}->{self.target!r}: intra-machine"
                " transfers are always free; self-links are not allowed"
            )
        object.__setattr__(
            self, "latency", _number(self.latency, "link latency")
        )
        if self.latency < 0:
            raise ConfigurationError(
                f"link {self.source!r}->{self.target!r}: latency must be"
                f" >= 0, got {self.latency}"
            )
        if self.bandwidth is not None:
            object.__setattr__(
                self, "bandwidth", _number(self.bandwidth, "link bandwidth")
            )
            if self.bandwidth <= 0:
                raise ConfigurationError(
                    f"link {self.source!r}->{self.target!r}: bandwidth must"
                    f" be > 0 when set, got {self.bandwidth}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "latency": self.latency,
            "bandwidth": self.bandwidth,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "LinkSpec":
        unknown = set(raw) - {"source", "target", "latency", "bandwidth"}
        if unknown:
            raise ConfigurationError(f"unknown link keys: {sorted(unknown)}")
        missing = {"source", "target"} - set(raw)
        if missing:
            raise ConfigurationError(
                f"link spec missing keys: {sorted(missing)}"
            )
        kwargs: Dict[str, Any] = {
            "source": raw["source"],
            "target": raw["target"],
        }
        if raw.get("latency") is not None:
            kwargs["latency"] = raw["latency"]
        if raw.get("bandwidth") is not None:
            kwargs["bandwidth"] = raw["bandwidth"]
        return cls(**kwargs)


@dataclass(frozen=True)
class PlatformSpec:
    """The full execution substrate of one scenario.

    >>> spec = PlatformSpec.from_dict({
    ...     "machines": [{"name": "m0"}, {"name": "m1", "speed": 2.0}],
    ...     "links": [{"source": "m0", "target": "m1", "latency": 0.001}],
    ...     "placement": {"kind": "round_robin"},
    ... })
    >>> spec.placement["kind"], spec.failure["kind"]
    ('round_robin', 'none')
    >>> PlatformSpec.from_dict(spec.to_dict()) == spec   # round-trip
    True
    """

    machines: Tuple[MachineSpec, ...]
    links: Tuple[LinkSpec, ...] = ()
    #: Cost of machine pairs no link lists explicitly.
    default_latency: float = 0.0
    default_bandwidth: Optional[float] = None
    #: Payload size charged against link bandwidth per transfer.
    tuple_bytes: float = 0.0
    #: Machine hosting the spouts (external sources); default: the first.
    ingress: Optional[str] = None
    #: Placement spec (``{"kind": ...}``), canonicalised at construction.
    placement: Dict[str, Any] = field(default_factory=dict)
    #: Failure-model spec (``{"kind": ...}``), canonicalised likewise.
    failure: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        machines = tuple(
            m if isinstance(m, MachineSpec) else MachineSpec.from_dict(m)
            for m in self.machines
        )
        if not machines:
            raise ConfigurationError(
                "platform needs at least one machine"
            )
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate machine names: {sorted(names)}"
            )
        object.__setattr__(self, "machines", machines)
        links = tuple(
            l if isinstance(l, LinkSpec) else LinkSpec.from_dict(l)
            for l in self.links
        )
        seen = set()
        for link in links:
            for end in (link.source, link.target):
                if end not in names:
                    raise ConfigurationError(
                        f"link references unknown machine {end!r};"
                        f" machines: {names}"
                    )
            pair = (link.source, link.target)
            if pair in seen:
                raise ConfigurationError(
                    f"duplicate link {link.source!r}->{link.target!r}"
                )
            seen.add(pair)
        object.__setattr__(self, "links", links)
        object.__setattr__(
            self,
            "default_latency",
            _number(self.default_latency, "default_latency"),
        )
        if self.default_latency < 0:
            raise ConfigurationError("default_latency must be >= 0")
        if self.default_bandwidth is not None:
            object.__setattr__(
                self,
                "default_bandwidth",
                _number(self.default_bandwidth, "default_bandwidth"),
            )
            if self.default_bandwidth <= 0:
                raise ConfigurationError(
                    "default_bandwidth must be > 0 when set"
                )
        object.__setattr__(
            self, "tuple_bytes", _number(self.tuple_bytes, "tuple_bytes")
        )
        if self.tuple_bytes < 0:
            raise ConfigurationError("tuple_bytes must be >= 0")
        if self.ingress is not None and self.ingress not in names:
            raise ConfigurationError(
                f"ingress names unknown machine {self.ingress!r};"
                f" machines: {names}"
            )
        # Validate + canonicalise the registry-keyed sub-specs now, so a
        # typo'd kind fails at spec load, not mid-replication.
        placement = create_placement(self.placement or None)
        object.__setattr__(self, "placement", placement.to_dict())
        failure = create_failure_model(self.failure or None)
        object.__setattr__(self, "failure", failure.to_dict())

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready mapping (stable for content addressing)."""
        return {
            "machines": [m.to_dict() for m in self.machines],
            "links": [l.to_dict() for l in self.links],
            "default_latency": self.default_latency,
            "default_bandwidth": self.default_bandwidth,
            "tuple_bytes": self.tuple_bytes,
            "ingress": self.ingress,
            "placement": dict(self.placement),
            "failure": dict(self.failure),
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "PlatformSpec":
        """Validated spec from a plain mapping; unknown keys fail loudly."""
        if not hasattr(raw, "keys"):
            raise ConfigurationError(
                f"platform must be a mapping, got {raw!r}"
            )
        known = {
            "machines",
            "links",
            "default_latency",
            "default_bandwidth",
            "tuple_bytes",
            "ingress",
            "placement",
            "failure",
        }
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"unknown platform keys: {sorted(unknown)}"
            )
        if "machines" not in raw:
            raise ConfigurationError("platform spec missing 'machines'")
        kwargs = {
            key: value for key, value in raw.items() if value is not None
        }
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(str(exc)) from None

    # ------------------------------------------------------------------
    # runtime binding
    # ------------------------------------------------------------------
    def bind(self, topology: Topology, allocation: Allocation) -> "CompiledPlatform":
        """Compile the spec against one topology for the runtime."""
        return CompiledPlatform(self, topology)

    def __eq__(self, other):
        if not isinstance(other, PlatformSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(
            (self.machines, self.links, self.default_latency,
             self.default_bandwidth, self.tuple_bytes, self.ingress)
        )


class CompiledPlatform:
    """A :class:`PlatformSpec` bound to one topology.

    Precomputes the machine-pair transfer matrix and instantiates the
    placement policy and failure model; the runtime asks
    :meth:`patterns_for` after every allocation change.
    """

    def __init__(self, spec: PlatformSpec, topology: Topology):
        self.spec = spec
        self._topology = topology
        self.machine_names: Tuple[str, ...] = tuple(
            m.name for m in spec.machines
        )
        self.machine_speeds: Tuple[float, ...] = tuple(
            m.speed for m in spec.machines
        )
        self.ingress: int = (
            self.machine_names.index(spec.ingress)
            if spec.ingress is not None
            else 0
        )
        self.placement: PlacementPolicy = create_placement(spec.placement)
        self.failure: FailureModel = create_failure_model(spec.failure)
        self.transfer: List[List[float]] = self._transfer_matrix()

    def _transfer_matrix(self) -> List[List[float]]:
        spec = self.spec
        n = len(self.machine_names)
        by_pair: Dict[Tuple[str, str], LinkSpec] = {}
        for link in spec.links:
            by_pair[(link.source, link.target)] = link

        def cost(latency: float, bandwidth: Optional[float]) -> float:
            transfer = latency
            if bandwidth is not None and spec.tuple_bytes > 0:
                transfer += spec.tuple_bytes / bandwidth
            return transfer

        default = cost(spec.default_latency, spec.default_bandwidth)
        matrix = [[default] * n for _ in range(n)]
        for i, a in enumerate(self.machine_names):
            matrix[i][i] = 0.0
            for j, b in enumerate(self.machine_names):
                if i == j:
                    continue
                # Explicit direction wins; otherwise the reverse link is
                # applied symmetrically; otherwise the platform default.
                link = by_pair.get((a, b)) or by_pair.get((b, a))
                if link is not None:
                    matrix[i][j] = cost(link.latency, link.bandwidth)
        return matrix

    def patterns_for(self, allocation: Allocation) -> Dict[str, Tuple[int, ...]]:
        """Machine index per executor under the current allocation."""
        return self.placement.place(
            self._topology, allocation, self.spec.machines
        )
