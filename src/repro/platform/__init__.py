"""Execution-substrate platform layer (weighted links, heterogeneous
machines, node churn).

Public surface:

- :class:`~repro.platform.spec.PlatformSpec` /
  :class:`~repro.platform.spec.CompiledPlatform` — the JSON
  description of machines, links, placement and churn, plus its
  topology-bound runtime form;
- the placement registry
  (:func:`~repro.platform.placement.register_placement`,
  :func:`~repro.platform.placement.available_placements`,
  :func:`~repro.platform.placement.create_placement`);
- the failure-model registry
  (:func:`~repro.platform.failure.register_failure_model`,
  :func:`~repro.platform.failure.available_failure_models`,
  :func:`~repro.platform.failure.create_failure_model`).
"""

from repro.platform.failure import (
    ExponentialChurn,
    FailureModel,
    NoFailure,
    TraceChurn,
    available_failure_models,
    create_failure_model,
    register_failure_model,
)
from repro.platform.placement import (
    ColocatedPlacement,
    HeterogeneousPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    available_placements,
    create_placement,
    register_placement,
)
from repro.platform.spec import (
    CompiledPlatform,
    LinkSpec,
    MachineSpec,
    PlatformSpec,
)

__all__ = [
    "CompiledPlatform",
    "LinkSpec",
    "MachineSpec",
    "PlatformSpec",
    "PlacementPolicy",
    "ColocatedPlacement",
    "RoundRobinPlacement",
    "HeterogeneousPlacement",
    "available_placements",
    "create_placement",
    "register_placement",
    "FailureModel",
    "NoFailure",
    "ExponentialChurn",
    "TraceChurn",
    "available_failure_models",
    "create_failure_model",
    "register_failure_model",
]
