"""Placement policies: which machine hosts each executor.

A placement policy turns ``(topology, allocation, machines)`` into a
per-operator tuple of machine indices — executor ``i`` of operator
``o`` runs on ``pattern[o][i]``.  Policies are registered under string
kinds, mirroring the scheduling-policy and arrival-model registries, so
a platform block names its placement the same way a scenario names its
policy::

    {"placement": {"kind": "round_robin"}}

Factories receive a *mutable copy* of the parameters and must consume
every key they understand; leftovers are rejected so platform typos
fail loudly instead of silently placing everything on one machine.

Built-in kinds
--------------
- ``colocated`` — every executor on one machine (the first, or the
  named ``machine``).  All transfers are intra-machine and free: the
  closest platform analogue of the legacy zero-hop runtime.
- ``round_robin`` — executors rotate across machines in declaration
  order, operator by operator, spreading load uniformly.
- ``heterogeneous`` — machines are pooled into speed classes and
  :func:`repro.scheduler.heterogeneous.assign_heterogeneous` (the
  paper's Sec. III-A heterogeneous generalisation of Algorithm 1)
  decides which classes serve which operator; the resulting class mix
  is scaled to the actual allocation.  The model-predicted sojourn of
  the full assignment (:func:`expected_sojourn_heterogeneous`) is kept
  on the policy as ``predicted_sojourn`` for reports and tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, MutableMapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.model.performance import PerformanceModel
from repro.scheduler.allocation import Allocation
from repro.scheduler.heterogeneous import (
    ProcessorClass,
    assign_heterogeneous,
    expected_sojourn_heterogeneous,
)
from repro.topology.graph import Topology


class PlacementPolicy:
    """Abstract placement policy.

    ``place`` returns, for every operator, a machine-index tuple whose
    length equals the operator's allocated parallelism.  ``to_dict()``
    must round-trip through :func:`create_placement`; the campaign
    layer relies on it for content addressing.
    """

    #: Registry kind, set by :func:`register_placement`.
    kind: str = ""

    def place(
        self,
        topology: Topology,
        allocation: Allocation,
        machines: Tuple,
    ) -> Dict[str, Tuple[int, ...]]:
        """Machine index per executor, keyed by operator name."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready parameters, including the ``kind`` key."""
        raise NotImplementedError


PlacementFactory = Callable[[MutableMapping[str, Any]], PlacementPolicy]


class _Entry:
    __slots__ = ("factory", "description")

    def __init__(self, factory: PlacementFactory, description: str):
        self.factory = factory
        self.description = description


_REGISTRY: Dict[str, _Entry] = {}


def register_placement(
    name: str, description: str
) -> Callable[[PlacementFactory], PlacementFactory]:
    """Decorator registering a placement factory under ``name``."""

    def decorate(factory: PlacementFactory) -> PlacementFactory:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"placement policy {name!r} is already registered"
            )
        _REGISTRY[name] = _Entry(factory=factory, description=description)
        return factory

    return decorate


def available_placements() -> Dict[str, str]:
    """``{kind: one-line description}`` of every registered placement."""
    return {
        name: entry.description for name, entry in sorted(_REGISTRY.items())
    }


def create_placement(spec: Optional[Dict[str, Any]]) -> PlacementPolicy:
    """Build the placement a platform block names (default: colocated).

    Mirrors :func:`repro.workloads.models.create_arrival_model`: the
    factory consumes a mutable copy of the parameters and leftovers are
    rejected.
    """
    if spec is None:
        spec = {"kind": "colocated"}
    if not isinstance(spec, dict) and not hasattr(spec, "items"):
        raise ConfigurationError(
            f"placement must be a mapping with a 'kind' key, got {spec!r}"
        )
    params = dict(spec)
    kind = params.pop("kind", None)
    if not kind:
        raise ConfigurationError(
            "placement spec needs a 'kind' key; available:"
            f" {sorted(_REGISTRY)}"
        )
    entry = _REGISTRY.get(kind)
    if entry is None:
        raise ConfigurationError(
            f"unknown placement {kind!r}; available: {sorted(_REGISTRY)}"
        )
    policy = entry.factory(params)
    if params:
        raise ConfigurationError(
            f"placement {kind!r} got unknown parameters: {sorted(params)}"
        )
    return policy


# ----------------------------------------------------------------------
# built-in policies
# ----------------------------------------------------------------------
class ColocatedPlacement(PlacementPolicy):
    """Everything on one machine: all transfers are free."""

    kind = "colocated"

    def __init__(self, machine: Optional[str] = None):
        self.machine = machine

    def place(self, topology, allocation, machines):
        index = 0
        if self.machine is not None:
            names = [m.name for m in machines]
            if self.machine not in names:
                raise ConfigurationError(
                    f"colocated placement names unknown machine"
                    f" {self.machine!r}; machines: {names}"
                )
            index = names.index(self.machine)
        return {
            name: (index,) * allocation[name]
            for name in topology.operator_names
        }

    def to_dict(self):
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.machine is not None:
            payload["machine"] = self.machine
        return payload


class RoundRobinPlacement(PlacementPolicy):
    """Rotate executors across machines in declaration order."""

    kind = "round_robin"

    def place(self, topology, allocation, machines):
        count = len(machines)
        patterns: Dict[str, Tuple[int, ...]] = {}
        cursor = 0
        for name in topology.operator_names:
            k = allocation[name]
            patterns[name] = tuple(
                (cursor + i) % count for i in range(k)
            )
            cursor += k
        return patterns

    def to_dict(self):
        return {"kind": self.kind}


class HeterogeneousPlacement(PlacementPolicy):
    """Speed-aware placement driven by the paper's heterogeneous solver.

    Machines are grouped into :class:`ProcessorClass` pools by speed
    (``count`` = the pooled slots), ``assign_heterogeneous`` decides
    each operator's class mix from the topology's queueing model, and
    the mix is scaled to the actual allocation: executor ``i`` cycles
    through the machines of the classes the solver picked, fastest
    class first.
    """

    kind = "heterogeneous"

    def __init__(self) -> None:
        #: Model-predicted E[T] of the full heterogeneous assignment,
        #: set by :meth:`place` (``expected_sojourn_heterogeneous``).
        self.predicted_sojourn: Optional[float] = None

    def place(self, topology, allocation, machines):
        if not machines:
            raise ConfigurationError(
                "heterogeneous placement needs at least one machine"
            )
        # One processor class per distinct speed; members keep
        # declaration order so the expansion below is deterministic.
        by_speed: Dict[float, List[int]] = {}
        for index, machine in enumerate(machines):
            by_speed.setdefault(machine.speed, []).append(index)
        classes = tuple(
            ProcessorClass(
                name=f"speed={speed!r}",
                speed=speed,
                count=sum(machines[i].slots for i in members),
            )
            for speed, members in sorted(by_speed.items(), reverse=True)
        )
        model = PerformanceModel.from_topology(topology)
        assignment = assign_heterogeneous(model, classes)
        self.predicted_sojourn = expected_sojourn_heterogeneous(
            model, assignment
        )
        class_members = {
            f"speed={speed!r}": members
            for speed, members in by_speed.items()
        }
        fastest = max(range(len(machines)), key=lambda i: machines[i].speed)
        patterns: Dict[str, Tuple[int, ...]] = {}
        for name in topology.operator_names:
            mix = assignment.counts(name)
            sequence: List[int] = []
            for cls in classes:  # fastest class first
                members = class_members[cls.name]
                for j in range(mix.get(cls.name, 0)):
                    sequence.append(members[j % len(members)])
            if not sequence:
                sequence = [fastest]
            k = allocation[name]
            patterns[name] = tuple(sequence[i % len(sequence)] for i in range(k))
        return patterns

    def to_dict(self):
        return {"kind": self.kind}


@register_placement(
    "colocated",
    "every executor on one machine; all transfers intra-machine (free)",
)
def _make_colocated(params: MutableMapping[str, Any]) -> PlacementPolicy:
    machine = params.pop("machine", None)
    if machine is not None and not isinstance(machine, str):
        raise ConfigurationError(
            f"colocated 'machine' must be a machine name, got {machine!r}"
        )
    return ColocatedPlacement(machine=machine)


@register_placement(
    "round_robin",
    "rotate executors across machines in declaration order",
)
def _make_round_robin(params: MutableMapping[str, Any]) -> PlacementPolicy:
    return RoundRobinPlacement()


@register_placement(
    "heterogeneous",
    "speed-aware placement via assign_heterogeneous (Sec. III-A greedy)",
)
def _make_heterogeneous(params: MutableMapping[str, Any]) -> PlacementPolicy:
    return HeterogeneousPlacement()
