"""Failure models: the node churn process of a platform.

A failure model decides when machines go down and come back up.  The
runtime turns those transitions into typed ``node_down`` / ``node_up``
events that kill and restore the executors placed on the machine —
queued tuples are redelivered to survivors (or dropped by the normal
queue-limit machinery), tuples in service on a dying machine are lost.

Models are registered under string kinds, mirroring the arrival-model
registry::

    {"failure": {"kind": "exponential", "mean_up": 120.0,
                 "mean_down": 10.0, "machines": ["m2"]}}

Built-in kinds
--------------
- ``none`` — no churn (the default).
- ``exponential`` — the classic alternating-renewal up/down process:
  each affected machine stays up ``Exp(mean_up)`` seconds, down
  ``Exp(mean_down)`` seconds, independently, forever.
- ``trace`` — replay an explicit list of ``{"time", "machine",
  "state"}`` transitions (state ``"down"`` or ``"up"``), for
  reproducing a recorded outage.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import ConfigurationError


class FailureModel:
    """Abstract churn process.

    ``initial_events`` seeds the event calendar at runtime start;
    ``next_delay`` is asked after each transition fires for the delay
    to the machine's *opposite* transition (``None`` ends the process).
    ``to_dict()`` must round-trip through :func:`create_failure_model`.
    """

    #: Registry kind, set by :func:`register_failure_model`.
    kind: str = ""

    def initial_events(
        self, machine_names: Sequence[str], rng
    ) -> List[Tuple[float, int, bool]]:
        """``(delay, machine_index, goes_down)`` transitions to seed."""
        raise NotImplementedError

    def next_delay(self, machine: int, went_down: bool, rng) -> Optional[float]:
        """Delay until ``machine`` flips back (``None``: no more events)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready parameters, including the ``kind`` key."""
        raise NotImplementedError


FailureFactory = Callable[[MutableMapping[str, Any]], FailureModel]


class _Entry:
    __slots__ = ("factory", "description")

    def __init__(self, factory: FailureFactory, description: str):
        self.factory = factory
        self.description = description


_REGISTRY: Dict[str, _Entry] = {}


def register_failure_model(
    name: str, description: str
) -> Callable[[FailureFactory], FailureFactory]:
    """Decorator registering a failure-model factory under ``name``."""

    def decorate(factory: FailureFactory) -> FailureFactory:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"failure model {name!r} is already registered"
            )
        _REGISTRY[name] = _Entry(factory=factory, description=description)
        return factory

    return decorate


def available_failure_models() -> Dict[str, str]:
    """``{kind: one-line description}`` of every registered model."""
    return {
        name: entry.description for name, entry in sorted(_REGISTRY.items())
    }


def create_failure_model(spec: Optional[Dict[str, Any]]) -> FailureModel:
    """Build the failure model a platform block names (default: none)."""
    if spec is None:
        spec = {"kind": "none"}
    if not isinstance(spec, dict) and not hasattr(spec, "items"):
        raise ConfigurationError(
            f"failure must be a mapping with a 'kind' key, got {spec!r}"
        )
    params = dict(spec)
    kind = params.pop("kind", None)
    if not kind:
        raise ConfigurationError(
            "failure spec needs a 'kind' key; available:"
            f" {sorted(_REGISTRY)}"
        )
    entry = _REGISTRY.get(kind)
    if entry is None:
        raise ConfigurationError(
            f"unknown failure model {kind!r}; available: {sorted(_REGISTRY)}"
        )
    model = entry.factory(params)
    if params:
        raise ConfigurationError(
            f"failure model {kind!r} got unknown parameters: {sorted(params)}"
        )
    return model


def _positive(params: MutableMapping[str, Any], key: str, kind: str) -> float:
    try:
        value = float(params.pop(key))
    except KeyError:
        raise ConfigurationError(
            f"failure model {kind!r} requires {key!r}"
        ) from None
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"failure model {kind!r}: {key!r} must be a number"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"failure model {kind!r}: {key!r} must be > 0, got {value}"
        )
    return value


def _resolve(
    names: Optional[Tuple[str, ...]], machine_names: Sequence[str], kind: str
) -> List[int]:
    """Affected machine indices (all when ``names`` is ``None``)."""
    if names is None:
        return list(range(len(machine_names)))
    indices = []
    for name in names:
        if name not in machine_names:
            raise ConfigurationError(
                f"failure model {kind!r} names unknown machine {name!r};"
                f" machines: {list(machine_names)}"
            )
        indices.append(machine_names.index(name))
    return indices


# ----------------------------------------------------------------------
# built-in models
# ----------------------------------------------------------------------
class NoFailure(FailureModel):
    """No churn: machines never go down."""

    kind = "none"

    def initial_events(self, machine_names, rng):
        return []

    def next_delay(self, machine, went_down, rng):
        return None

    def to_dict(self):
        return {"kind": self.kind}


class ExponentialChurn(FailureModel):
    """Alternating-renewal churn: Exp(mean_up) up, Exp(mean_down) down."""

    kind = "exponential"

    def __init__(
        self,
        mean_up: float,
        mean_down: float,
        machines: Optional[Tuple[str, ...]] = None,
    ):
        self.mean_up = mean_up
        self.mean_down = mean_down
        self.machines = machines

    def initial_events(self, machine_names, rng):
        up_rate = 1.0 / self.mean_up
        return [
            (rng.expovariate(up_rate), index, True)
            for index in _resolve(self.machines, machine_names, self.kind)
        ]

    def next_delay(self, machine, went_down, rng):
        mean = self.mean_down if went_down else self.mean_up
        return rng.expovariate(1.0 / mean)

    def to_dict(self):
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "mean_up": self.mean_up,
            "mean_down": self.mean_down,
        }
        if self.machines is not None:
            payload["machines"] = list(self.machines)
        return payload


class TraceChurn(FailureModel):
    """Replay explicit ``(time, machine, state)`` transitions."""

    kind = "trace"

    def __init__(self, events: Tuple[Tuple[float, str, str], ...]):
        self.events = events

    def initial_events(self, machine_names, rng):
        seeded = []
        for time, machine, state in self.events:
            if machine not in machine_names:
                raise ConfigurationError(
                    f"failure trace names unknown machine {machine!r};"
                    f" machines: {list(machine_names)}"
                )
            seeded.append(
                (time, machine_names.index(machine), state == "down")
            )
        return seeded

    def next_delay(self, machine, went_down, rng):
        return None

    def to_dict(self):
        return {
            "kind": self.kind,
            "events": [
                {"time": time, "machine": machine, "state": state}
                for time, machine, state in self.events
            ],
        }


@register_failure_model("none", "no churn: machines never fail (default)")
def _make_none(params: MutableMapping[str, Any]) -> FailureModel:
    return NoFailure()


@register_failure_model(
    "exponential",
    "alternating-renewal churn: Exp(mean_up) up, Exp(mean_down) down",
)
def _make_exponential(params: MutableMapping[str, Any]) -> FailureModel:
    mean_up = _positive(params, "mean_up", "exponential")
    mean_down = _positive(params, "mean_down", "exponential")
    machines = params.pop("machines", None)
    if machines is not None:
        if not isinstance(machines, (list, tuple)) or not machines:
            raise ConfigurationError(
                "failure model 'exponential': 'machines' must be a"
                f" non-empty list of machine names, got {machines!r}"
            )
        machines = tuple(str(m) for m in machines)
    return ExponentialChurn(mean_up, mean_down, machines)


@register_failure_model(
    "trace", "replay explicit {time, machine, state} transitions"
)
def _make_trace(params: MutableMapping[str, Any]) -> FailureModel:
    raw = params.pop("events", None)
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ConfigurationError(
            "failure model 'trace' requires a non-empty 'events' list of"
            " {time, machine, state} objects"
        )
    events = []
    for entry in raw:
        if not hasattr(entry, "keys"):
            raise ConfigurationError(
                f"trace event must be an object, got {entry!r}"
            )
        unknown = set(entry) - {"time", "machine", "state"}
        if unknown:
            raise ConfigurationError(
                f"unknown trace-event keys: {sorted(unknown)}"
            )
        try:
            time = float(entry["time"])
            machine = str(entry["machine"])
            state = str(entry["state"])
        except KeyError as exc:
            raise ConfigurationError(
                f"trace event missing key {exc.args[0]!r}"
            ) from None
        if time < 0:
            raise ConfigurationError("trace event time must be >= 0")
        if state not in ("down", "up"):
            raise ConfigurationError(
                f"trace event state must be 'down' or 'up', got {state!r}"
            )
        events.append((time, machine, state))
    events.sort(key=lambda e: e[0])
    return TraceChurn(tuple(events))
