"""Descriptive statistics used when summarising experiment output."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.utils.math_helpers import percentile


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float


def summarise(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` for a non-empty sample."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n
    return SummaryStats(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        p50=percentile(ordered, 50.0),
        p95=percentile(ordered, 95.0),
        p99=percentile(ordered, 99.0),
        maximum=ordered[-1],
    )


def confidence_interval_mean(
    values: Sequence[float], *, confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the sample mean.

    Adequate for the thousands of sojourn samples the simulator
    produces; not meant for tiny samples.
    """
    if len(values) < 2:
        raise ValueError("need at least two samples for an interval")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    # Inverse-normal quantile via Acklam's rational approximation is
    # overkill here; the experiments only use 90/95/99%.
    z_table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    z = z_table.get(round(confidence, 2))
    if z is None:
        raise ValueError(
            f"unsupported confidence {confidence}; use one of"
            f" {sorted(z_table)}"
        )
    half_width = z * math.sqrt(variance / n)
    return mean - half_width, mean + half_width


def relative_error(measured: float, expected: float) -> float:
    """``|measured - expected| / |expected|`` (inf-safe)."""
    if expected == 0:
        return math.inf if measured != 0 else 0.0
    if math.isinf(expected):
        return 0.0 if math.isinf(measured) else math.inf
    return abs(measured - expected) / abs(expected)
