"""Rank and linear correlation, for the Fig. 7 monotonicity analysis."""

from __future__ import annotations

import math
from typing import List, Sequence


def _check_paired(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} != {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points")


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson linear correlation coefficient."""
    _check_paired(xs, ys)
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise ValueError("correlation undefined for a constant sequence")
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: Sequence[float]) -> List[float]:
    """Fractional ranks (ties get the average of their positions)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for position in range(i, j + 1):
            ranks[order[position]] = average
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson on fractional ranks)."""
    _check_paired(xs, ys)
    return pearson(_ranks(xs), _ranks(ys))


def kendall_tau(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Kendall's tau-a: concordant minus discordant pair fraction."""
    _check_paired(xs, ys)
    n = len(xs)
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            product = dx * dy
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total_pairs = n * (n - 1) // 2
    return (concordant - discordant) / total_pairs
