"""Statistics helpers for experiment analysis and validation."""

from repro.analysis.stats import (
    summarise,
    SummaryStats,
    confidence_interval_mean,
    relative_error,
)
from repro.analysis.correlation import pearson, spearman, kendall_tau

__all__ = [
    "summarise",
    "SummaryStats",
    "confidence_interval_mean",
    "relative_error",
    "pearson",
    "spearman",
    "kendall_tau",
]
