"""A Storm-like programming facade over the DRS measurement layer.

The paper integrates DRS into Apache Storm; this package provides the
equivalent integration surface for Python code: users write spouts and
bolts (:class:`Spout` / :class:`Bolt`), wire them with
:class:`StormTopologyBuilder`, and run them on :class:`LocalCluster` —
a single-process executor that measures *real* per-tuple service times
and arrival rates through the DRS measurer, so the DRS optimiser can
recommend executor allocations for genuine workloads (see
``examples/frequent_pattern_detection.py``).

This is the "CSP layer" counterpart of the MeasurableSpout /
MeasurableBolt wrappers described in paper Appendix C.
"""

from repro.storm.api import (
    Spout,
    Bolt,
    OutputCollector,
    TopologyContext,
    StormTopologyBuilder,
    LocalCluster,
    ClusterResult,
)

__all__ = [
    "Spout",
    "Bolt",
    "OutputCollector",
    "TopologyContext",
    "StormTopologyBuilder",
    "LocalCluster",
    "ClusterResult",
]
